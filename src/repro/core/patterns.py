"""Parameterised, typed GSN argument patterns.

Matsuno & Taguchi give GSN patterns a formal syntax and 'a formal
mechanism for replacing placeholder text' (§III.L): parameters may be
integers, strings, or user-defined sets; further limits may be placed on
values (their example restricts a claimed CPU utilisation to 0–100%); and
partial instantiations are annotated ``[2/x, /y, "hello"/z]`` — x and z
instantiated, y not.  Denney & Pai similarly claim formal syntax enables
'automated instantiation, composition, and transformation-based
manipulation' (§III.I).

This module implements the full mechanism:

* :class:`ParameterSort` — Int / String / Float / Bool, user-defined sets,
  numeric range restrictions, and list sorts for multiplicity;
* :class:`Pattern` — a GSN graph whose node texts contain ``{param}``
  placeholders, with per-link multiplicity (expand a subtree over a list
  parameter) and optionality;
* :class:`Binding` — a (possibly partial) parameter assignment, rendered
  in Matsuno's ``[v/x, /y]`` annotation style;
* :meth:`Pattern.instantiate` — type-checked expansion into a concrete
  :class:`~repro.core.argument.Argument`, raising
  :class:`InstantiationError` on the misuses type checking is claimed to
  prevent (§III.L: instantiating 'System X' with 'Railway hazards').

What type checking *cannot* do — notice that a well-typed value is
meaningless in context — is demonstrated in the tests and drives the
§VI.D experiment.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Any, Iterable, Mapping, Sequence

from .argument import Argument, LinkKind
from .nodes import Node, NodeType

__all__ = [
    "BaseSort",
    "SetSort",
    "RangeSort",
    "ListSort",
    "ParameterSort",
    "Parameter",
    "Binding",
    "PatternElement",
    "PatternLink",
    "Pattern",
    "InstantiationError",
    "hazard_avoidance_pattern",
]


class BaseSort(enum.Enum):
    """Built-in parameter sorts."""

    INT = "Int"
    STRING = "String"
    FLOAT = "Float"
    BOOL = "Bool"

    def accepts(self, value: Any) -> bool:
        if self is BaseSort.INT:
            return isinstance(value, int) and not isinstance(value, bool)
        if self is BaseSort.STRING:
            return isinstance(value, str)
        if self is BaseSort.FLOAT:
            return isinstance(value, (int, float)) and not isinstance(
                value, bool
            )
        return isinstance(value, bool)

    def describe(self) -> str:
        return self.value


@dataclass(frozen=True)
class SetSort:
    """A user-defined finite set sort, e.g. subsystems of an aircraft."""

    name: str
    members: frozenset[str]

    def accepts(self, value: Any) -> bool:
        return isinstance(value, str) and value in self.members

    def describe(self) -> str:
        return f"{self.name}{{{', '.join(sorted(self.members))}}}"


@dataclass(frozen=True)
class RangeSort:
    """A numeric sort with inclusive bounds — Matsuno's 0–100% example."""

    name: str
    low: float
    high: float
    integral: bool = False

    def accepts(self, value: Any) -> bool:
        if isinstance(value, bool):
            return False
        if self.integral and not isinstance(value, int):
            return False
        if not isinstance(value, (int, float)):
            return False
        return self.low <= value <= self.high

    def describe(self) -> str:
        return f"{self.name}[{self.low}..{self.high}]"


@dataclass(frozen=True)
class ListSort:
    """A list of values of an element sort, for multiplicity expansion."""

    element: "ParameterSort"

    def accepts(self, value: Any) -> bool:
        return isinstance(value, (list, tuple)) and all(
            self.element.accepts(v) for v in value
        )

    def describe(self) -> str:
        return f"List[{self.element.describe()}]"


ParameterSort = BaseSort | SetSort | RangeSort | ListSort


@dataclass(frozen=True)
class Parameter:
    """A declared pattern parameter."""

    name: str
    sort: ParameterSort
    description: str = ""

    def __str__(self) -> str:
        return f"{self.name}: {self.sort.describe()}"


class InstantiationError(ValueError):
    """Raised when an instantiation violates the pattern's typing rules."""


@dataclass(frozen=True)
class Binding:
    """A (possibly partial) assignment of values to parameter names."""

    values: tuple[tuple[str, Any], ...] = ()

    @classmethod
    def of(cls, **values: Any) -> "Binding":
        return cls(tuple(sorted(values.items())))

    def as_dict(self) -> dict[str, Any]:
        return dict(self.values)

    def get(self, name: str) -> Any | None:
        return self.as_dict().get(name)

    def bound_names(self) -> frozenset[str]:
        return frozenset(name for name, _ in self.values)

    def render(self, parameters: Sequence[Parameter]) -> str:
        """Matsuno's annotation: ``[2/x, /y, "hello"/z]`` (§III.L).

        Bound parameters show ``value/name``; unbound show ``/name``.
        """
        assigned = self.as_dict()
        parts = []
        for parameter in parameters:
            if parameter.name in assigned:
                value = assigned[parameter.name]
                shown = f'"{value}"' if isinstance(value, str) else str(value)
                parts.append(f"{shown}/{parameter.name}")
            else:
                parts.append(f"/{parameter.name}")
        return f"[{', '.join(parts)}]"


@dataclass(frozen=True)
class PatternElement:
    """A pattern node whose text may contain ``{param}`` placeholders."""

    identifier: str
    node_type: NodeType
    template: str
    undeveloped: bool = False

    def placeholders(self) -> frozenset[str]:
        """Parameter names referenced by the template."""
        import string

        names = set()
        for literal, field_name, _, _ in string.Formatter().parse(
            self.template
        ):
            if field_name:
                names.add(field_name)
        return frozenset(names)

    def render(self, values: Mapping[str, Any]) -> str:
        """Fill the template; missing placeholders raise KeyError."""
        return self.template.format(**values)


@dataclass(frozen=True)
class PatternLink:
    """A pattern connector.

    ``expand_over`` names a list-sorted parameter: the target element (and
    its entire sub-structure) is replicated once per list member, with the
    ``loop_var`` parameter bound to each member in turn — GSN pattern
    multiplicity.  ``optional`` marks GSN pattern optionality: the link
    (and the target subtree, if orphaned) is dropped when
    ``Binding`` maps ``include_<target>`` to False.
    """

    source: str
    target: str
    kind: LinkKind
    expand_over: str | None = None
    loop_var: str | None = None
    optional: bool = False

    def __post_init__(self) -> None:
        if (self.expand_over is None) != (self.loop_var is None):
            raise InstantiationError(
                "expand_over and loop_var must be given together"
            )


@dataclass
class Pattern:
    """A reusable argument pattern: typed parameters + template graph."""

    name: str
    parameters: list[Parameter] = field(default_factory=list)
    elements: list[PatternElement] = field(default_factory=list)
    links: list[PatternLink] = field(default_factory=list)

    def parameter(self, name: str) -> Parameter:
        for parameter in self.parameters:
            if parameter.name == name:
                return parameter
        raise InstantiationError(
            f"pattern {self.name!r} has no parameter {name!r}"
        )

    def element(self, identifier: str) -> PatternElement:
        for element in self.elements:
            if element.identifier == identifier:
                return element
        raise InstantiationError(
            f"pattern {self.name!r} has no element {identifier!r}"
        )

    def validate(self) -> list[str]:
        """Structural problems with the pattern itself (empty = ok)."""
        problems: list[str] = []
        declared = {p.name for p in self.parameters}
        loop_vars = {
            link.loop_var for link in self.links if link.loop_var
        }
        for element in self.elements:
            for placeholder in element.placeholders():
                if placeholder not in declared and placeholder not in \
                        loop_vars:
                    problems.append(
                        f"element {element.identifier!r} references "
                        f"undeclared parameter {placeholder!r}"
                    )
        identifiers = {e.identifier for e in self.elements}
        if len(identifiers) != len(self.elements):
            problems.append("duplicate element identifiers")
        for link in self.links:
            if link.source not in identifiers:
                problems.append(f"link source {link.source!r} unknown")
            if link.target not in identifiers:
                problems.append(f"link target {link.target!r} unknown")
            if link.expand_over is not None:
                if link.expand_over not in declared:
                    problems.append(
                        f"multiplicity parameter {link.expand_over!r} "
                        "undeclared"
                    )
                else:
                    sort = self.parameter(link.expand_over).sort
                    if not isinstance(sort, ListSort):
                        problems.append(
                            f"multiplicity parameter {link.expand_over!r} "
                            "must have a List sort"
                        )
        return problems

    def type_check(self, binding: Binding) -> list[str]:
        """Typing problems with a binding (empty = well-typed).

        Checks every bound value against its declared sort and flags
        bindings for undeclared parameters.  Partial bindings are allowed
        here; :meth:`instantiate` additionally requires totality.
        """
        problems: list[str] = []
        declared = {p.name: p for p in self.parameters}
        for name, value in binding.values:
            if name.startswith("include_"):
                if not isinstance(value, bool):
                    problems.append(
                        f"optionality flag {name!r} must be Bool"
                    )
                continue
            parameter = declared.get(name)
            if parameter is None:
                problems.append(f"binding for undeclared parameter {name!r}")
                continue
            if not parameter.sort.accepts(value):
                problems.append(
                    f"value {value!r} for parameter {name!r} is not a "
                    f"valid {parameter.sort.describe()}"
                )
        return problems

    def unbound(self, binding: Binding) -> list[str]:
        """Declared parameters the binding leaves uninstantiated."""
        bound = binding.bound_names()
        return [p.name for p in self.parameters if p.name not in bound]

    def instantiate(
        self, binding: Binding, argument_name: str | None = None
    ) -> Argument:
        """Expand the pattern into a concrete argument.

        Raises :class:`InstantiationError` when the binding is ill-typed
        or partial (Matsuno's type checking), or when an expansion list is
        empty for a required multiplicity.
        """
        structural = self.validate()
        if structural:
            raise InstantiationError(
                f"pattern {self.name!r} is malformed: "
                + "; ".join(structural)
            )
        typing_problems = self.type_check(binding)
        if typing_problems:
            raise InstantiationError("; ".join(typing_problems))
        missing = self.unbound(binding)
        if missing:
            annotation = binding.render(self.parameters)
            raise InstantiationError(
                f"partial instantiation {annotation}: "
                f"unbound parameter(s) {', '.join(missing)}"
            )
        values = binding.as_dict()
        argument = Argument(
            name=argument_name or f"{self.name}-instance"
        )
        # Identify the elements replicated by multiplicity links.
        expanded_roots = {
            link.target: link for link in self.links if link.expand_over
        }
        # Dropped optional subtrees.
        dropped: set[str] = {
            link.target
            for link in self.links
            if link.optional and values.get(f"include_{link.target}") is False
        }
        dropped = self._closure_under_links(dropped)

        replicated = self._closure_under_links(set(expanded_roots))

        # Instantiate the non-replicated, non-dropped elements.
        for element in self.elements:
            if element.identifier in replicated or \
                    element.identifier in dropped:
                continue
            argument.add_node(self._make_node(element, values))
        for link in self.links:
            if link.expand_over is not None:
                continue
            if link.source in replicated or link.target in replicated:
                continue
            if link.source in dropped or link.target in dropped:
                continue
            argument.add_link(link.source, link.target, link.kind)

        # Expand multiplicities: clone the target subtree per list member.
        for target, link in expanded_roots.items():
            members = values[link.expand_over]
            if not isinstance(members, (list, tuple)):
                raise InstantiationError(
                    f"multiplicity parameter {link.expand_over!r} must be "
                    "bound to a list"
                )
            if not members:
                raise InstantiationError(
                    f"multiplicity over {link.expand_over!r} requires a "
                    "non-empty list"
                )
            subtree = self._subtree(target)
            for index, member in enumerate(members, start=1):
                loop_values = dict(values)
                loop_values[link.loop_var] = member
                rename = {
                    identifier: f"{identifier}_{index}"
                    for identifier in subtree
                }
                for element_id in subtree:
                    element = self.element(element_id)
                    clone = PatternElement(
                        rename[element_id],
                        element.node_type,
                        element.template,
                        element.undeveloped,
                    )
                    argument.add_node(self._make_node(clone, loop_values))
                argument.add_link(
                    link.source, rename[target], link.kind
                )
                for inner in self.links:
                    if inner.source in subtree and inner.target in subtree:
                        argument.add_link(
                            rename[inner.source],
                            rename[inner.target],
                            inner.kind,
                        )
        return argument

    def _make_node(
        self, element: PatternElement, values: Mapping[str, Any]
    ) -> Node:
        try:
            text = element.render(values)
        except KeyError as missing:
            raise InstantiationError(
                f"element {element.identifier!r} needs parameter {missing}"
            ) from None
        return Node(
            identifier=element.identifier,
            node_type=element.node_type,
            text=text,
            undeveloped=element.undeveloped,
        )

    def _subtree(self, root: str) -> set[str]:
        """Element identifiers reachable from ``root`` via pattern links."""
        members = {root}
        frontier = [root]
        while frontier:
            current = frontier.pop()
            for link in self.links:
                if link.source == current and link.target not in members:
                    members.add(link.target)
                    frontier.append(link.target)
        return members

    def _closure_under_links(self, roots: set[str]) -> set[str]:
        closed: set[str] = set()
        for root in roots:
            closed.update(self._subtree(root))
        return closed


def hazard_avoidance_pattern() -> Pattern:
    """The classic 'argument over all identified hazards' GSN pattern.

    Parameters: the system name, the hazard list (multiplicity), and the
    claimed residual risk bound as a :class:`RangeSort` percentage —
    Matsuno's 0–100 restriction example.
    """
    percent = RangeSort("Percent", 0, 100)
    pattern = Pattern(
        name="hazard-avoidance",
        parameters=[
            Parameter("system", BaseSort.STRING, "the system under argument"),
            Parameter(
                "hazards", ListSort(BaseSort.STRING),
                "the identified hazards",
            ),
            Parameter(
                "residual_risk", percent,
                "claimed residual risk bound (percent of budget)",
            ),
        ],
        elements=[
            PatternElement(
                "G_top", NodeType.GOAL,
                "{system} is acceptably safe: residual risk is within "
                "{residual_risk}% of the risk budget",
            ),
            PatternElement(
                "C_hazards", NodeType.CONTEXT,
                "Hazards identified for {system}",
            ),
            PatternElement(
                "S_each", NodeType.STRATEGY,
                "Argument over each identified hazard of {system}",
            ),
            PatternElement(
                "J_complete", NodeType.JUSTIFICATION,
                "Hazard identification for {system} was performed to the "
                "applicable standard",
            ),
            PatternElement(
                "G_hazard", NodeType.GOAL,
                "Hazard '{hazard}' is acceptably managed in {system}",
            ),
            PatternElement(
                "Sn_hazard", NodeType.SOLUTION,
                "Mitigation evidence for hazard '{hazard}'",
            ),
        ],
        links=[
            PatternLink("G_top", "C_hazards", LinkKind.IN_CONTEXT_OF),
            PatternLink("G_top", "S_each", LinkKind.SUPPORTED_BY),
            PatternLink("S_each", "J_complete", LinkKind.IN_CONTEXT_OF),
            PatternLink(
                "S_each", "G_hazard", LinkKind.SUPPORTED_BY,
                expand_over="hazards", loop_var="hazard",
            ),
            PatternLink("G_hazard", "Sn_hazard", LinkKind.SUPPORTED_BY),
        ],
    )
    return pattern
