"""The assurance-case model: arguments, evidence, cases, patterns, views.

This package implements the argumentation substrate every surveyed
proposal builds on — GSN structures per the Community Standard [30], the
Toulmin model [33], evidence registries per Def Stan 00-56 [1] — plus the
formal-syntax technologies the survey characterises: well-formedness rule
sets (§III.I), typed parameterised patterns (§III.L), metadata annotation
and querying (§III.H), and hierarchical views (§III.I).
"""

from .analysis import (
    IncrementalChecker,
    RuleContext,
    Scope,
    ScopedRule,
    global_rule,
    per_link,
    per_node,
    run_rules,
)
from .argument import Argument, ArgumentError, Link, LinkKind, MutationDelta
from .builder import ArgumentBuilder, BuildError
from .case import (
    AssuranceCase,
    LifecycleEvent,
    LifecycleEventKind,
    SafetyCriterion,
)
from .confidence import (
    claim_confidence,
    confidence_network,
    confidence_report,
)
from .diff import ArgumentDiff, diff_arguments, render_diff
from .evidence import EvidenceItem, EvidenceKind, EvidenceRegistry
from .modules import (
    ModuleRegistry,
    check_away_references,
    composition_order,
    system_argument,
)
from .nodes import Node, NodeType, looks_propositional
from .patterns import (
    BaseSort,
    Binding,
    InstantiationError,
    ListSort,
    Parameter,
    Pattern,
    PatternElement,
    PatternLink,
    RangeSort,
    SetSort,
    hazard_avoidance_pattern,
)
from .wellformed import (
    DENNEY_PAI_RULES,
    GSN_STANDARD_RULES,
    Rule,
    RuleSet,
    Violation,
    check,
    is_well_formed,
    scoped_from_legacy,
)

__all__ = [
    "IncrementalChecker",
    "RuleContext",
    "Scope",
    "ScopedRule",
    "global_rule",
    "per_link",
    "per_node",
    "run_rules",
    "Argument",
    "ArgumentError",
    "Link",
    "LinkKind",
    "MutationDelta",
    "ArgumentBuilder",
    "BuildError",
    "AssuranceCase",
    "LifecycleEvent",
    "LifecycleEventKind",
    "SafetyCriterion",
    "claim_confidence",
    "confidence_network",
    "confidence_report",
    "ArgumentDiff",
    "diff_arguments",
    "render_diff",
    "ModuleRegistry",
    "check_away_references",
    "composition_order",
    "system_argument",
    "EvidenceItem",
    "EvidenceKind",
    "EvidenceRegistry",
    "Node",
    "NodeType",
    "looks_propositional",
    "BaseSort",
    "Binding",
    "InstantiationError",
    "ListSort",
    "Parameter",
    "Pattern",
    "PatternElement",
    "PatternLink",
    "RangeSort",
    "SetSort",
    "hazard_avoidance_pattern",
    "DENNEY_PAI_RULES",
    "GSN_STANDARD_RULES",
    "Rule",
    "RuleSet",
    "Violation",
    "check",
    "is_well_formed",
    "scoped_from_legacy",
]
