"""Change-impact tracing across an assurance case.

Assurance arguments are 'a tool for managing safety through the life of a
system' (§I): when evidence is withdrawn, an assumption falls, or a
component changes, maintainers must find every claim whose support is now
suspect.  Graphical notations are 'thought to ease this task by reducing
it to tracing a path in a graph' (§VI.E) — this module is that tracing,
made mechanical:

* :func:`claims_affected_by` — all claims upstream of a changed node;
* :func:`evidence_impact` — for an evidence item in a case, the solutions
  citing it and every goal those solutions transitively support;
* :func:`assumption_scope` — goals whose support rests on an assumption;
* :class:`ImpactReport` — a summary suitable for a change review board.

The §VI.E experiment compares assessors using this graph tracing against
assessors using Rushby-style proof probing
(:func:`repro.logic.entailment.premises_used`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from .argument import Argument, LinkKind
from .case import AssuranceCase
from .nodes import Node, NodeType

__all__ = [
    "ImpactReport",
    "claims_affected_by",
    "evidence_impact",
    "assumption_scope",
]


@dataclass(frozen=True)
class ImpactReport:
    """The blast radius of one change."""

    changed: str
    affected_claims: tuple[str, ...]
    affected_solutions: tuple[str, ...]
    root_reached: bool

    @property
    def breadth(self) -> int:
        """Number of claims whose support is touched."""
        return len(self.affected_claims)

    def summary(self) -> str:
        root = " (reaches the top-level claim)" if self.root_reached else ""
        return (
            f"change to {self.changed!r} affects "
            f"{len(self.affected_claims)} claim(s){root}"
        )


def claims_affected_by(argument: Argument, identifier: str) -> list[Node]:
    """Every goal on a SupportedBy path from ``identifier`` to a root.

    These are the claims whose justification includes the changed node —
    exactly the set a maintainer must re-examine.  Computed by reverse
    reachability (O(V + E)); enumerating the paths themselves is
    exponential on dense DAGs.
    """
    ancestors = argument.ancestors(identifier, LinkKind.SUPPORTED_BY)
    return [
        node
        for node in argument.nodes
        if node.identifier in ancestors
        and node.node_type.is_claim_like
        and node.identifier != identifier
    ]


def evidence_impact(case: AssuranceCase, evidence_id: str) -> ImpactReport:
    """Impact of withdrawing (or doubting) one evidence item."""
    case.evidence.get(evidence_id)
    solutions = case.citing_solutions(evidence_id)
    claims: dict[str, Node] = {}
    root_ids = {r.identifier for r in case.argument.roots()}
    root_reached = False
    for solution in solutions:
        for node in claims_affected_by(case.argument, solution):
            claims[node.identifier] = node
            if node.identifier in root_ids:
                root_reached = True
    return ImpactReport(
        changed=evidence_id,
        affected_claims=tuple(sorted(claims)),
        affected_solutions=tuple(sorted(solutions)),
        root_reached=root_reached,
    )


def assumption_scope(argument: Argument, assumption_id: str) -> list[Node]:
    """Goals that (transitively) rest on an assumption.

    The assumption attaches to some node via InContextOf; every claim that
    the attachment point supports — i.e. upstream of it — inherits the
    assumption, as does the attachment point's own support subtree (the
    assumption was in scope when that support was constructed).
    """
    node = argument.node(assumption_id)
    if node.node_type is not NodeType.ASSUMPTION:
        raise ValueError(
            f"{assumption_id!r} is a {node.node_type.value}, not an "
            "assumption"
        )
    attachment_points = [
        link.source
        for link in argument.links
        if link.kind is LinkKind.IN_CONTEXT_OF
        and link.target == assumption_id
    ]
    in_scope: dict[str, Node] = {}
    for point in attachment_points:
        point_node = argument.node(point)
        if point_node.node_type.is_claim_like:
            in_scope[point] = point_node
        for upstream in claims_affected_by(argument, point):
            in_scope[upstream.identifier] = upstream
        for downstream in argument.walk(point, LinkKind.SUPPORTED_BY):
            if downstream.node_type.is_claim_like:
                in_scope[downstream.identifier] = downstream
    return list(in_scope.values())
