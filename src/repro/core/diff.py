"""Argument diffing across versions — the maintenance view.

Def Stan 00-56 requires the safety case to be maintained 'through the
life of the contract' (§II.A); the readers the paper enumerates include
'developers making changes to existing systems' and 'operators changing
operating procedures'.  Their question is always the same: *what changed
in the argument, and which claims should we re-review?*

This module answers it mechanically:

* :func:`diff_arguments` — structural diff between two argument
  versions: added/removed/retexted nodes, added/removed links, fold
  state ignored;
* :class:`ArgumentDiff.review_set` — the claims a reviewer must
  re-examine: every changed node plus everything upstream of a change
  (computed with the same path tracing §VI.E's graph condition uses);
* :func:`render_diff` — a human-readable change summary for the change
  board minutes the standard wants recorded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from .argument import Argument, Link
from .impact import claims_affected_by
from .nodes import Node

__all__ = ["NodeChange", "ArgumentDiff", "diff_arguments", "render_diff"]


@dataclass(frozen=True)
class NodeChange:
    """One modified node: same identifier, different content."""

    identifier: str
    before: Node
    after: Node

    @property
    def text_changed(self) -> bool:
        return self.before.text != self.after.text

    @property
    def kind_changed(self) -> bool:
        return self.before.node_type is not self.after.node_type

    def __str__(self) -> str:
        parts = []
        if self.kind_changed:
            parts.append(
                f"kind {self.before.node_type.value} -> "
                f"{self.after.node_type.value}"
            )
        if self.text_changed:
            parts.append(
                f"text {self.before.text!r} -> {self.after.text!r}"
            )
        if self.before.undeveloped != self.after.undeveloped:
            parts.append(
                "now undeveloped" if self.after.undeveloped
                else "now developed"
            )
        if self.before.metadata != self.after.metadata:
            parts.append("metadata changed")
        return f"{self.identifier}: {'; '.join(parts) or 'unchanged?'}"


@dataclass(frozen=True)
class ArgumentDiff:
    """The full structural difference between two versions."""

    added_nodes: tuple[Node, ...]
    removed_nodes: tuple[Node, ...]
    changed_nodes: tuple[NodeChange, ...]
    added_links: tuple[Link, ...]
    removed_links: tuple[Link, ...]

    @property
    def is_empty(self) -> bool:
        return not (
            self.added_nodes or self.removed_nodes or self.changed_nodes
            or self.added_links or self.removed_links
        )

    def touched_identifiers(self) -> set[str]:
        """Every node identifier involved in some change."""
        touched: set[str] = set()
        touched.update(n.identifier for n in self.added_nodes)
        touched.update(n.identifier for n in self.removed_nodes)
        touched.update(c.identifier for c in self.changed_nodes)
        for link in self.added_links + self.removed_links:
            touched.add(link.source)
            touched.add(link.target)
        return touched

    def review_set(self, after: Argument) -> set[str]:
        """Claims a reviewer must re-examine in the new version.

        Every touched node still present, plus every claim upstream of a
        touched node — the support of those claims is not what it was
        when they were last reviewed.
        """
        review: set[str] = set()
        for identifier in self.touched_identifiers():
            if identifier not in after:
                continue
            node = after.node(identifier)
            if node.node_type.is_claim_like:
                review.add(identifier)
            for claim in claims_affected_by(after, identifier):
                review.add(claim.identifier)
        return review


def diff_arguments(before: Argument, after: Argument) -> ArgumentDiff:
    """Structural diff from ``before`` to ``after``."""
    before_nodes = {n.identifier: n for n in before.nodes}
    after_nodes = {n.identifier: n for n in after.nodes}
    added = tuple(
        after_nodes[i] for i in sorted(
            set(after_nodes) - set(before_nodes)
        )
    )
    removed = tuple(
        before_nodes[i] for i in sorted(
            set(before_nodes) - set(after_nodes)
        )
    )
    changed = tuple(
        NodeChange(i, before_nodes[i], after_nodes[i])
        for i in sorted(set(before_nodes) & set(after_nodes))
        if before_nodes[i] != after_nodes[i]
    )
    before_links = set(before.links)
    after_links = set(after.links)
    added_links = tuple(sorted(
        after_links - before_links, key=str
    ))
    removed_links = tuple(sorted(
        before_links - after_links, key=str
    ))
    return ArgumentDiff(added, removed, changed, added_links,
                        removed_links)


def render_diff(diff: ArgumentDiff, after: Argument) -> str:
    """A change-board-ready summary of the diff."""
    if diff.is_empty:
        return "No structural changes.\n"
    lines: list[str] = ["ARGUMENT CHANGES", ""]
    if diff.added_nodes:
        lines.append("Added nodes:")
        lines.extend(f"  + {node}" for node in diff.added_nodes)
    if diff.removed_nodes:
        lines.append("Removed nodes:")
        lines.extend(f"  - {node}" for node in diff.removed_nodes)
    if diff.changed_nodes:
        lines.append("Modified nodes:")
        lines.extend(f"  ~ {change}" for change in diff.changed_nodes)
    if diff.added_links:
        lines.append("Added links:")
        lines.extend(f"  + {link}" for link in diff.added_links)
    if diff.removed_links:
        lines.append("Removed links:")
        lines.extend(f"  - {link}" for link in diff.removed_links)
    review = sorted(diff.review_set(after))
    lines.append("")
    lines.append(
        f"Claims to re-review ({len(review)}): {', '.join(review)}"
    )
    return "\n".join(lines) + "\n"
