"""Scoped streaming rule analysis over arguments and stored arguments.

The well-formedness layer used to be a stack of whole-argument functions:
every rule received a fully hydrated :class:`~repro.core.argument.Argument`
and scanned whatever it liked.  That shape forces
:class:`~repro.store.StoredArgument` handles through full hydration before
the first rule runs and leaves no seam for parallel or incremental
execution.  This module replaces it with **scoped rules** and one engine
that can run the same rule set four ways.

The scoped-rule contract
========================

A :class:`ScopedRule` declares *how much of the graph it needs* via its
:class:`Scope`:

``Scope.NODE`` (:func:`per_node`)
    ``fn(node, ctx) -> list[Violation]``.  The rule sees one
    :class:`~repro.core.nodes.Node` at a time.  Beyond the node itself it
    may ask the context only :meth:`RuleContext.cites_support` *about
    that node* — whether the node is the source of at least one
    SupportedBy link.  It must not reach for other nodes or links.

``Scope.LINK`` (:func:`per_link`)
    ``fn(link, ctx) -> list[Violation]``.  The rule sees one
    :class:`~repro.core.argument.Link` and may ask the context only
    :meth:`RuleContext.node_type` *of the link's own endpoints*.

``Scope.GLOBAL`` (:func:`global_rule`)
    ``fn(ctx) -> list[Violation]``.  The rule needs whole-graph services:
    :meth:`RuleContext.roots`, :meth:`RuleContext.find_cycle`,
    :attr:`RuleContext.name` — or, as a last resort for legacy
    whole-argument callables, :meth:`RuleContext.argument`, which hydrates
    a stored case.  Full hydration is thereby the *fallback*, not the
    default.

The locality restrictions are what buy the execution modes: because a
node rule touches one node plus one bit of context and a link rule
touches one link plus two node types, any partition of the node and link
streams evaluates independently.

Execution modes (:func:`run_rules`)
===================================

``serial`` / ``streaming``
    One pass over link shards (accumulating the node-type sidecar's
    support and adjacency aggregates, buffering the lightweight link
    triples), one pass over node shards (building the sidecar and
    running node rules as records parse), then link rules over the
    buffer and the global rules.  A
    :class:`~repro.store.StoredArgument` is checked **without
    hydration**: every shard parses exactly once, sequentially (no heap
    merge), and memory stays O(sidecar + links) — node texts and
    metadata are never retained and no
    :class:`~repro.core.argument.Argument` is constructed.  Live
    arguments evaluate against their own indices in a single pass each.

``parallel``
    A **self-balancing work queue** over ``concurrent.futures`` worker
    processes, each given exactly the context slice the contract above
    permits (the support bits of a unit's nodes; the endpoint types of
    a unit's links).  For a stored argument the unit of work is **one
    node shard**: the parent pins its handle's
    :class:`~repro.store.StoreGeneration` and ships the token to every
    worker, which reopens the store *at that generation* (journal
    segments appended mid-check are rewound away; a base rotated by a
    concurrent compaction or a coalesced journal raises
    ``StoreConflictError`` naming both generations — never a silent
    mix of snapshots).  Each task parses its link shard — links shard
    by source id with the same hash as nodes, so one link shard yields
    exactly its node shard's support bits — then its node shard,
    running node rules as records parse, and ships both fragments back
    as flat value rows (far cheaper to pickle than Node/Link objects).
    The parent parses nothing: it rebuilds types, seq order, and the
    SupportedBy aggregates from the rows in completion order.  Shards
    are pulled from the pool's queue on demand, so one fat shard no
    longer idles every other worker.  Link rules run in the parent,
    grouped by (source shard, target shard) and judged the moment both
    endpoint type fragments land — link work overlaps the remaining
    shard scans, in the otherwise-idle parent.  Global rules run in
    the parent after the type merge.  For a live argument the
    units are list slices shipped from the parent, finer than the
    worker count so the queue balances, collected as completed.  A worker exception
    cancels every not-yet-started unit immediately
    (``cancel_futures``) and re-raises with the failing shard noted on
    the exception.  Worker start method: ``fork`` only while the
    parent is single-threaded, otherwise ``forkserver``/``spawn``
    (forking a threaded parent is undefined behaviour); the
    ``REPRO_MP_START`` environment variable overrides the choice.
    Output is identical to serial mode.  With fewer than two effective
    workers the engine degrades gracefully to the streaming path.

``full``
    Hydrate first, then run serially over the live argument — the
    pre-scoped behaviour, kept as the baseline the benchmarks compare
    against.

``incremental`` (:class:`IncrementalChecker`)
    A stateful checker that consumes the argument's mutation delta log
    (:meth:`~repro.core.argument.Argument.delta_since`).  Per-rule
    violation maps are cached keyed by subject (node identifier or link)
    and invalidated by subject id: after a mutation only the touched
    subjects re-evaluate, plus the global rules.  When the bounded log
    has rotated past the checker's sequence number it falls back to a
    full recompute.

``incremental over a store`` (:meth:`IncrementalChecker.from_store`)
    The same checker attached to a *persisted* case: it consumes the
    store's append-journal deltas (:mod:`repro.store.journal`) instead
    of a live argument's log, maintaining a node-type/support/adjacency
    sidecar (:class:`_StoreContext`) it patches per journal record — so
    a case saved with ``save(journal=True)`` re-checks after every edit
    session **without hydration**: single-node payloads come from lazy
    per-shard lookups, ``StoredArgument.hydrated`` stays ``False``, and
    a compaction or full rewrite (detected via the store's base-shard
    generation) triggers one streaming rebuild.

All modes produce the same violation list: rules in rule-set order, and
within one rule the violations in canonical ``(subject, detail)`` order —
so results are directly comparable across modes, processes, and storage.

The rule-authoring contract (statically enforced)
=================================================

Everything above holds **only if rules keep their scope promises** — the
serial/streaming/parallel/incremental equivalence is a theorem about
rules that read nothing beyond their declared context slice.  The
contract a rule author signs, and that the rule-scope auditor
(:mod:`repro.analysis_static`) verifies from the rule's AST at
definition time:

*What a scoped rule may read.*  A rule may read **its subject** (the
one node or link it was handed — any attribute) and **its context
surface** — exactly the :class:`RuleContext` attributes
:data:`SCOPE_SURFACE` lists for its scope:

========  ==========================================================
scope     stream-safe ``RuleContext`` surface
========  ==========================================================
node      ``name``, ``cites_support`` (about the subject node only)
link      ``name``, ``node_type`` (of the link's own endpoints only)
global    ``name``, ``node_type``, ``cites_support``, ``roots``,
          ``find_cycle``, ``has_support``, ``supported_walk``
========  ==========================================================

Everything on that table is *stream-safe*: each concrete context
answers it from sidecar aggregates without hydrating a stored case.
The shared module-level helpers :func:`iter_subject_nodes` /
:func:`iter_subject_links` are likewise stream-safe for whole-argument
scans.  :meth:`RuleContext.argument` is **not** — it is the documented
hydration fallback for legacy whole-argument rules, and the auditor
flags any other use as hydration-forcing.

*What a scoped rule may not do.*  Rules are pure functions of
``(subject, permitted context)``:

* **no undeclared context access** — asking the context anything
  outside the scope's surface breaks partitioning (a parallel worker's
  :class:`_ChunkContext` simply does not carry the answer);
* **no mutation** — assigning to, deleting from, or calling mutators on
  the subject or the context corrupts the shared sidecars other rules
  read;
* **no nondeterminism** — ``time``/``random``/``id()`` reads or
  iteration over sets feeding the violation output make the four modes
  (and journal replays) disagree.

*How to interpret auditor findings.*  The auditor emits structured
findings (``kind``, ``severity``, rule name, ``file:line``):
``undeclared-context-access`` and ``mutation`` are always errors;
``hydration-forcing`` is an error for node/link rules and a warning for
global rules (the documented legacy fallback); ``nondeterminism`` is an
error; ``unreadable-source`` is a warning (the auditor could not obtain
the callable's AST — C functions, interactively defined rules).
``RuleSet.audit()`` runs the auditor over a whole rule set, and
:mod:`repro.analysis_static.gate` re-audits everything the repo ships
at import time.

*Formal obligations.*  A rule may carry **formal proof work** — the
claim language (:mod:`repro.claims`) binds evidence nodes to SAT /
propositional-entailment / finite-domain-FOL / LTL problems — but only
inside the contract: obligations ride on the subject node's
``metadata`` (under :data:`repro.claims.obligations.OBLIGATION_KEY`),
so the shipped discharge rule is an ordinary **per-node** rule reading
nothing but its subject.  Discharge must be a *pure, total,
deterministic* function of the spec text: a malformed spec becomes a
deterministic violation, never an exception, and proof results may be
cached only under a content fingerprint of the spec (sha256 — never
:func:`hash`, which varies per process) so that parallel workers,
journal replays, and fresh processes agree byte-for-byte.  Under those
terms every execution mode discharges identically, and the incremental
checker's touched-node refresh re-proves exactly the obligations an
edit reached — the selective-re-proof property the claims benchmarks
measure.

This module is also the home of the shared storage duck-typing helpers
(:func:`is_stored_argument`, :func:`ensure_argument`,
:func:`iter_subject_nodes`, :func:`iter_subject_links`) that
:mod:`repro.core.wellformed` and :mod:`repro.core.query` previously each
reimplemented.  They stay duck-typed so this module never imports
:mod:`repro.store` (which imports it transitively).
"""

from __future__ import annotations

import enum
import os
import threading
from concurrent.futures import Future, ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Sequence

from .argument import Argument, Link, LinkKind
from .nodes import Node, NodeType

__all__ = [
    "Violation",
    "Scope",
    "ScopedRule",
    "SCOPE_SURFACE",
    "HYDRATING_CONTEXT",
    "per_node",
    "per_link",
    "global_rule",
    "RuleContext",
    "run_rules",
    "IncrementalChecker",
    "is_stored_argument",
    "ensure_argument",
    "iter_subject_nodes",
    "iter_subject_links",
]


@dataclass(frozen=True)
class Violation:
    """One rule violation found in an argument."""

    rule: str
    subject: str  # node identifier or link rendering
    detail: str

    def __str__(self) -> str:
        return f"[{self.rule}] {self.subject}: {self.detail}"


class Scope(enum.Enum):
    """How much of the graph a rule needs (see the module docstring)."""

    NODE = "node"
    LINK = "link"
    GLOBAL = "global"


#: The stream-safe :class:`RuleContext` surface per scope — the
#: rule-authoring contract's single source of truth, shared between this
#: module's documentation and the static rule-scope auditor
#: (:mod:`repro.analysis_static.auditor`).  Every attribute listed here
#: is answered from sidecar aggregates without hydrating a stored case.
SCOPE_SURFACE: "dict[Scope, frozenset[str]]" = {
    Scope.NODE: frozenset({"name", "cites_support"}),
    Scope.LINK: frozenset({"name", "node_type"}),
    Scope.GLOBAL: frozenset({
        "name", "node_type", "cites_support", "roots", "find_cycle",
        "has_support", "supported_walk",
    }),
}

#: :class:`RuleContext` attributes that force hydration of a stored
#: case — the documented legacy fallback, flagged by the auditor
#: everywhere except (as a warning) in global rules.
HYDRATING_CONTEXT: "frozenset[str]" = frozenset({"argument"})


@dataclass(frozen=True)
class ScopedRule:
    """A named well-formedness rule with a declared evaluation scope.

    ``fn`` takes ``(node, ctx)``, ``(link, ctx)``, or ``(ctx)`` depending
    on ``scope`` and returns a list of :class:`Violation`.  For parallel
    execution ``fn`` must be a module-level function (worker processes
    import it by qualified name); global rules always run in the parent
    process, so closures are fine there.

    ``node_types`` (node rules) and ``link_kind`` (link rules) are
    optional *dispatch filters*: the engine only invokes ``fn`` for
    subjects matching them, which on a 100k-element stream saves tens of
    thousands of no-op calls.  A filter is a promise, not a check — it
    must be consistent with ``fn`` (the rule can only ever fire on
    matching subjects); ``fn`` should still guard itself so direct calls
    stay correct.

    ``delta_fn`` (global rules only) is the optional *incremental hook*:
    ``delta_fn(ctx, records, previous)`` receives the mutation records
    since the last check and the rule's previous violations, and returns
    the new violations — or ``None`` to decline, in which case the
    checker falls back to the full ``fn``.  It must return exactly what
    ``fn`` would.
    """

    name: str
    description: str
    scope: Scope
    fn: Callable[..., "list[Violation]"]
    node_types: "frozenset[NodeType] | None" = None
    link_kind: "LinkKind | None" = None
    delta_fn: "Callable[..., list[Violation] | None] | None" = None


def per_node(
    name: str,
    description: str,
    fn: Callable[..., "list[Violation]"],
    *,
    node_types: "Iterable[NodeType] | None" = None,
) -> ScopedRule:
    """A rule evaluated once per node (see the scoped-rule contract)."""
    return ScopedRule(
        name, description, Scope.NODE, fn,
        node_types=None if node_types is None else frozenset(node_types),
    )


def per_link(
    name: str,
    description: str,
    fn: Callable[..., "list[Violation]"],
    *,
    kind: "LinkKind | None" = None,
) -> ScopedRule:
    """A rule evaluated once per link (see the scoped-rule contract)."""
    return ScopedRule(
        name, description, Scope.LINK, fn, link_kind=kind,
    )


def global_rule(
    name: str,
    description: str,
    fn: Callable[..., "list[Violation]"],
    *,
    delta_fn: "Callable[..., list[Violation] | None] | None" = None,
) -> ScopedRule:
    """A rule needing whole-graph services (roots, cycles, hydration)."""
    return ScopedRule(name, description, Scope.GLOBAL, fn, delta_fn=delta_fn)


# -- shared storage duck-typing helpers ------------------------------------


def is_stored_argument(subject: Any) -> bool:
    """True for duck-typed ``StoredArgument`` handles.

    Probes the store-specific streaming surface (``iter_nodes`` +
    ``iter_links`` + ``load``), not just a generic ``load`` attribute:
    ``AssuranceCase`` and arbitrary objects also have ``load`` methods
    and must *not* be mis-dispatched.
    """
    return (
        not isinstance(subject, Argument)
        and hasattr(subject, "iter_nodes")
        and hasattr(subject, "iter_links")
        and hasattr(subject, "load")
    )


def ensure_argument(subject: Any) -> Argument:
    """A live in-memory argument — the hydration *fallback*.

    Live arguments pass through; stored arguments hydrate via their
    shard-streaming ``load()``.  Anything else gets a clear TypeError.
    """
    if isinstance(subject, Argument):
        return subject
    if is_stored_argument(subject):
        return subject.load()
    raise TypeError(
        "expected an Argument or a StoredArgument, got "
        f"{type(subject).__name__}"
    )


def iter_subject_nodes(subject: Any) -> Iterator[Node]:
    """Stream nodes from a live or stored argument, insertion-ordered."""
    if isinstance(subject, Argument):
        return iter(subject.nodes)
    if is_stored_argument(subject):
        return subject.iter_nodes()
    raise TypeError(
        "expected an Argument or a StoredArgument, got "
        f"{type(subject).__name__}"
    )


def iter_subject_links(subject: Any) -> Iterator[Link]:
    """Stream links from a live or stored argument, insertion-ordered."""
    if isinstance(subject, Argument):
        return iter(subject.links)
    if is_stored_argument(subject):
        return subject.iter_links()
    raise TypeError(
        "expected an Argument or a StoredArgument, got "
        f"{type(subject).__name__}"
    )


# -- rule contexts ----------------------------------------------------------


class RuleContext:
    """What a scoped rule may ask about the graph around its subject.

    Concrete contexts back this protocol three ways: a live argument's
    indices (:class:`_LiveContext`), a streaming sidecar built from
    shards (:class:`_StreamContext`), or the per-work-unit slice shipped
    to a parallel worker (:class:`_ChunkContext`).
    """

    name: str = "argument"

    def node_type(self, identifier: str) -> NodeType:
        """The type of a node — for link rules, the link's endpoints."""
        raise NotImplementedError

    def cites_support(self, identifier: str) -> bool:
        """Does the node source at least one SupportedBy link?"""
        raise NotImplementedError

    def roots(self) -> list[str]:
        """Claim-like nodes with no incoming support (global rules only)."""
        raise NotImplementedError

    def find_cycle(self) -> "list[str] | None":
        """A SupportedBy cycle, if any (global rules only)."""
        raise NotImplementedError

    def has_support(self, source: str, target: str) -> bool:
        """Is there a SupportedBy link ``source -> target``?  (Global
        rules and their delta hooks only.)"""
        raise NotImplementedError

    def supported_walk(self, start: str) -> Iterator[str]:
        """Identifiers reachable from ``start`` over SupportedBy links,
        ``start`` included (global delta hooks only)."""
        raise NotImplementedError

    def argument(self) -> Argument:
        """A live argument — hydrates stored cases (legacy rules only)."""
        raise NotImplementedError


def _colouring_cycle(
    ordered: Iterable[str], adjacency: "dict[str, Any]"
) -> "list[str] | None":
    """One white/grey/black DFS over a SupportedBy adjacency map.

    Mirrors ``Argument._iter_supported_by_back_edges`` — same start
    order, same neighbour order — so a live check, a streaming check,
    and a store-backed incremental check of the same argument all
    report the identical cycle rendering.  ``adjacency`` values are any
    iterable of target identifiers.
    """
    colour: dict[str, int] = {}
    path: list[str] = []
    path_index: dict[str, int] = {}
    for start in ordered:
        if colour.get(start, 0):
            continue
        colour[start] = 1
        path_index[start] = len(path)
        path.append(start)
        stack: list[tuple[str, Iterator[str]]] = [
            (start, iter(adjacency.get(start, ())))
        ]
        while stack:
            identifier, targets = stack[-1]
            advanced = False
            for target in targets:
                state = colour.get(target, 0)
                if state == 1:
                    return path[path_index[target]:]
                if state == 0:
                    colour[target] = 1
                    path_index[target] = len(path)
                    path.append(target)
                    stack.append(
                        (target, iter(adjacency.get(target, ())))
                    )
                    advanced = True
                    break
            if not advanced:
                colour[identifier] = 2
                path.pop()
                del path_index[identifier]
                stack.pop()
    return None


def _adjacency_has(
    adjacency: "dict[str, Any]", source: str, target: str
) -> bool:
    """Membership test on a SupportedBy adjacency map."""
    return target in adjacency.get(source, ())


def _adjacency_walk(
    adjacency: "dict[str, Any]", start: str
) -> Iterator[str]:
    """Reachability over a SupportedBy adjacency map, ``start`` included."""
    seen = {start}
    stack = [start]
    while stack:
        identifier = stack.pop()
        yield identifier
        for target in adjacency.get(identifier, ()):
            if target not in seen:
                seen.add(target)
                stack.append(target)


class _LiveContext(RuleContext):
    """Context over a live argument: O(1) reads off maintained indices."""

    __slots__ = ("_argument",)

    def __init__(self, argument: Argument) -> None:
        self._argument = argument

    @property
    def name(self) -> str:
        return self._argument.name

    def node_type(self, identifier: str) -> NodeType:
        return self._argument.node(identifier).node_type

    def cites_support(self, identifier: str) -> bool:
        return self._argument.cites_support(identifier)

    def roots(self) -> list[str]:
        return [node.identifier for node in self._argument.roots()]

    def find_cycle(self) -> "list[str] | None":
        return self._argument.find_cycle()

    def has_support(self, source: str, target: str) -> bool:
        return self._argument.has_link(
            Link(source, target, LinkKind.SUPPORTED_BY)
        )

    def supported_walk(self, start: str) -> Iterator[str]:
        return (
            node.identifier
            for node in self._argument.walk(start, LinkKind.SUPPORTED_BY)
        )

    def argument(self) -> Argument:
        return self._argument


class _StreamContext(RuleContext):
    """The node-type sidecar built by streaming shards — no hydration.

    Holds the per-node aggregates the scoped contract needs (type map,
    support bits) plus the SupportedBy adjacency the global rules need
    for cycle detection.  Nodes register with their global sequence
    number so :meth:`roots` and :meth:`find_cycle` see exact insertion
    order even when shards were streamed out of order (the parallel
    path's per-shard work units).
    """

    __slots__ = (
        "name", "_stored", "_hydrated", "types", "out_support",
        "in_support", "adjacency", "_order", "ordered",
    )

    def __init__(self, name: str, stored: Any = None) -> None:
        self.name = name
        self._stored = stored
        self._hydrated: Argument | None = None
        self.types: dict[str, NodeType] = {}
        self.out_support: set[str] = set()
        self.in_support: set[str] = set()
        self.adjacency: dict[str, list[str]] = {}
        self._order: list[tuple[int, str]] = []
        self.ordered: list[str] = []

    def note_link(self, link: Link) -> None:
        if link.kind is LinkKind.SUPPORTED_BY:
            self.out_support.add(link.source)
            self.in_support.add(link.target)
            self.adjacency.setdefault(link.source, []).append(link.target)

    def note_node(self, position: int, node: Node) -> None:
        self.types[node.identifier] = node.node_type
        self._order.append((position, node.identifier))

    def finalise(self) -> None:
        self._order.sort()
        self.ordered = [identifier for _, identifier in self._order]

    def node_type(self, identifier: str) -> NodeType:
        return self.types[identifier]

    def cites_support(self, identifier: str) -> bool:
        return identifier in self.out_support

    def roots(self) -> list[str]:
        return [
            identifier
            for identifier in self.ordered
            if self.types[identifier].is_claim_like
            and identifier not in self.in_support
        ]

    def find_cycle(self) -> "list[str] | None":
        # Same colouring DFS as the live argument, in insertion order,
        # so live and streamed checks report the identical cycle.
        return _colouring_cycle(self.ordered, self.adjacency)

    def has_support(self, source: str, target: str) -> bool:
        return _adjacency_has(self.adjacency, source, target)

    def supported_walk(self, start: str) -> Iterator[str]:
        return _adjacency_walk(self.adjacency, start)

    def argument(self) -> Argument:
        if self._stored is None:
            raise TypeError(
                "this streaming context has no store handle to hydrate"
            )
        if self._hydrated is None:  # hydrate once, however many legacy
            self._hydrated = self._stored.load()  # rules ask
        return self._hydrated


class _ChunkContext(RuleContext):
    """The context slice a parallel work unit ships to its worker.

    Carries only what the scoped contract lets the unit's rules ask:
    endpoint types for its links, support bits for its nodes.  Global
    services are deliberately absent — global rules run in the parent.
    """

    __slots__ = ("_types", "_support")

    def __init__(
        self, types: dict[str, NodeType], support: frozenset[str]
    ) -> None:
        self._types = types
        self._support = support

    def node_type(self, identifier: str) -> NodeType:
        return self._types[identifier]

    def cites_support(self, identifier: str) -> bool:
        return identifier in self._support


class _StoreContext(RuleContext):
    """An incrementally-maintained sidecar over a stored argument.

    Where :class:`_StreamContext` is built once per one-shot streaming
    check, this context persists across checks and **patches itself**
    from the store's journal deltas: node types, insertion order,
    per-node support counts (counts, not bits — removing one of two
    support links must not clear the flag), the SupportedBy adjacency
    the global rules walk, and the full link index the incremental
    checker needs to invalidate by endpoint.  Memory is
    O(types + links) — node texts and metadata are never retained; the
    odd single node the checker must re-evaluate comes from the store's
    lazy per-shard lookup, so the case is never hydrated.
    """

    __slots__ = (
        "name", "_stored", "types", "order", "out_support", "in_support",
        "adjacency", "links", "out_links", "in_links",
    )

    def __init__(self, stored: Any) -> None:
        self._stored = stored
        self.name: str = stored.name
        self.types: dict[str, NodeType] = {}
        self.order: dict[str, None] = {}
        self.out_support: dict[str, int] = {}
        self.in_support: dict[str, int] = {}
        self.adjacency: dict[str, dict[str, None]] = {}
        self.links: dict[Link, None] = {}
        self.out_links: dict[str, dict[Link, None]] = {}
        self.in_links: dict[str, dict[Link, None]] = {}

    def reset(self) -> None:
        for slot in (
            self.types, self.order, self.out_support, self.in_support,
            self.adjacency, self.links, self.out_links, self.in_links,
        ):
            slot.clear()

    @staticmethod
    def _bump(counter: dict[str, int], key: str, delta: int) -> None:
        value = counter.get(key, 0) + delta
        if value:
            counter[key] = value
        else:
            counter.pop(key, None)

    def apply_op(self, op: str, payload: Any) -> None:
        """Patch the sidecar with one mutation record (delta order)."""
        if op == "add_node":
            identifier = payload.identifier
            self.types[identifier] = payload.node_type
            # A re-added identifier must order last, like a live
            # argument's insertion-ordered dict.
            self.order.pop(identifier, None)
            self.order[identifier] = None
        elif op == "remove_node":
            # Incident links were removed by earlier records of the
            # same delta (remove_node logs them first).
            identifier = payload.identifier
            self.types.pop(identifier, None)
            self.order.pop(identifier, None)
        elif op == "replace_node":
            _, new = payload
            self.types[new.identifier] = new.node_type
        elif op == "add_link":
            self.links[payload] = None
            self.out_links.setdefault(payload.source, {})[payload] = None
            self.in_links.setdefault(payload.target, {})[payload] = None
            if payload.kind is LinkKind.SUPPORTED_BY:
                self._bump(self.out_support, payload.source, 1)
                self._bump(self.in_support, payload.target, 1)
                self.adjacency.setdefault(
                    payload.source, {}
                )[payload.target] = None
        else:  # remove_link
            self.links.pop(payload, None)
            out = self.out_links.get(payload.source)
            if out is not None:
                out.pop(payload, None)
            incoming = self.in_links.get(payload.target)
            if incoming is not None:
                incoming.pop(payload, None)
            if payload.kind is LinkKind.SUPPORTED_BY:
                self._bump(self.out_support, payload.source, -1)
                self._bump(self.in_support, payload.target, -1)
                targets = self.adjacency.get(payload.source)
                if targets is not None:
                    targets.pop(payload.target, None)

    # -- the RuleContext protocol ---------------------------------------

    def node_type(self, identifier: str) -> NodeType:
        return self.types[identifier]

    def cites_support(self, identifier: str) -> bool:
        return identifier in self.out_support

    def roots(self) -> list[str]:
        return [
            identifier
            for identifier in self.order
            if self.types[identifier].is_claim_like
            and identifier not in self.in_support
        ]

    def find_cycle(self) -> "list[str] | None":
        return _colouring_cycle(self.order, self.adjacency)

    def has_support(self, source: str, target: str) -> bool:
        return _adjacency_has(self.adjacency, source, target)

    def supported_walk(self, start: str) -> Iterator[str]:
        return _adjacency_walk(self.adjacency, start)

    def argument(self) -> Argument:
        raise TypeError(
            "store-backed incremental checking never hydrates; legacy "
            "whole-argument rules are not supported by "
            "IncrementalChecker.from_store (run them via "
            "run_rules(..., mode='full') instead)"
        )


# -- the engine -------------------------------------------------------------


_MODES = ("auto", "serial", "streaming", "parallel", "full")

_IndexedRules = list[tuple[int, ScopedRule]]


def _split_rules(
    rules: Sequence[ScopedRule],
) -> tuple[_IndexedRules, _IndexedRules, _IndexedRules]:
    node_rules: _IndexedRules = []
    link_rules: _IndexedRules = []
    global_rules: _IndexedRules = []
    for index, rule in enumerate(rules):
        if rule.scope is Scope.NODE:
            node_rules.append((index, rule))
        elif rule.scope is Scope.LINK:
            link_rules.append((index, rule))
        else:
            global_rules.append((index, rule))
    return node_rules, link_rules, global_rules


def _node_dispatch(
    node_rules: _IndexedRules,
) -> "dict[NodeType, _IndexedRules]":
    """Node rules applicable per node type (the dispatch-filter table)."""
    return {
        node_type: [
            (index, rule)
            for index, rule in node_rules
            if rule.node_types is None or node_type in rule.node_types
        ]
        for node_type in NodeType
    }


def _link_dispatch(
    link_rules: _IndexedRules,
) -> "dict[LinkKind, _IndexedRules]":
    """Link rules applicable per link kind (the dispatch-filter table)."""
    return {
        kind: [
            (index, rule)
            for index, rule in link_rules
            if rule.link_kind is None or rule.link_kind is kind
        ]
        for kind in LinkKind
    }


def _violation_key(violation: Violation) -> tuple[str, str]:
    return (violation.subject, violation.detail)


def _assemble(
    rules: Sequence[ScopedRule], buckets: list[list[Violation]]
) -> list[Violation]:
    """Rule-set order outside, canonical (subject, detail) order inside."""
    out: list[Violation] = []
    for bucket in buckets:
        bucket.sort(key=_violation_key)
        out.extend(bucket)
    return out


def run_rules(
    subject: Any,
    rules: Sequence[ScopedRule],
    *,
    mode: str = "auto",
    workers: int | None = None,
) -> list[Violation]:
    """Evaluate scoped rules over a live or stored argument.

    ``mode`` is one of ``auto`` (streaming for stored arguments, serial
    for live ones), ``serial``/``streaming`` (synonyms — one process, no
    hydration), ``parallel`` (a work queue over process workers;
    ``workers`` defaults to the CPU count, fewer than two effective
    workers degrades to the streaming path, stored subjects are checked
    at the handle's pinned generation, and ``REPRO_MP_START`` overrides
    the worker start method), or ``full`` (hydrate first — the legacy
    baseline).  Every mode returns the identical violation list.
    """
    if mode not in _MODES:
        raise ValueError(f"unknown analysis mode {mode!r} (not in {_MODES})")
    rules = tuple(rules)
    stored = is_stored_argument(subject)
    if not stored and not isinstance(subject, Argument):
        raise TypeError(
            "expected an Argument or a StoredArgument, got "
            f"{type(subject).__name__}"
        )
    if mode == "auto":
        mode = "streaming" if stored else "serial"
    if mode == "full":
        return _run_live(ensure_argument(subject), rules)
    if mode == "parallel":
        effective = workers if workers is not None else (os.cpu_count() or 1)
        if effective >= 2:
            return _run_parallel(subject, rules, effective)
        mode = "streaming"  # graceful degradation on one core
    if stored:
        return _run_stored_streaming(subject, rules)
    return _run_live(subject, rules)


def _run_live(argument: Argument, rules: tuple[ScopedRule, ...]) -> list[Violation]:
    node_rules, link_rules, global_rules = _split_rules(rules)
    ctx = _LiveContext(argument)
    buckets: list[list[Violation]] = [[] for _ in rules]
    if node_rules:
        dispatch = _node_dispatch(node_rules)
        for node in argument.nodes:
            for index, rule in dispatch[node.node_type]:
                found = rule.fn(node, ctx)
                if found:
                    buckets[index].extend(found)
    if link_rules:
        link_groups = _link_dispatch(link_rules)
        for link in argument.links:
            for index, rule in link_groups[link.kind]:
                found = rule.fn(link, ctx)
                if found:
                    buckets[index].extend(found)
    for index, rule in global_rules:
        buckets[index].extend(rule.fn(ctx))
    return _assemble(rules, buckets)


def _run_stored_streaming(
    stored: Any, rules: tuple[ScopedRule, ...]
) -> list[Violation]:
    """Check a stored argument without hydration.

    Shards stream *sequentially* (no heap merge — canonical output order
    makes per-record order irrelevant, and the aggregates that do need
    insertion order carry their ``seq``): one pass over link shards
    building the sidecar aggregates and buffering the lightweight
    :class:`~repro.core.argument.Link` triples, one pass over node shards
    running node rules as records parse, then link rules over the buffer
    and the global rules.  Each shard is parsed exactly once; memory is
    O(types sidecar + links), never the hydrated argument.
    """
    node_rules, link_rules, global_rules = _split_rules(rules)
    ctx = _StreamContext(stored.name, stored)
    links: list[Link] = []
    for index in range(stored.shard_count):  # pass 1: sidecar aggregates
        for _, link in stored.iter_shard_links(index):
            ctx.note_link(link)
            links.append(link)
    buckets: list[list[Violation]] = [[] for _ in rules]
    dispatch = _node_dispatch(node_rules)
    for index in range(stored.shard_count):  # pass 2: node rules
        for seq, node in stored.iter_shard_nodes(index):
            ctx.note_node(seq, node)
            for rule_index, rule in dispatch[node.node_type]:
                found = rule.fn(node, ctx)
                if found:
                    buckets[rule_index].extend(found)
    ctx.finalise()
    if link_rules:  # pass 3: types now complete; no re-parse
        link_groups = _link_dispatch(link_rules)
        for link in links:
            for rule_index, rule in link_groups[link.kind]:
                found = rule.fn(link, ctx)
                if found:
                    buckets[rule_index].extend(found)
    for rule_index, rule in global_rules:
        buckets[rule_index].extend(rule.fn(ctx))
    return _assemble(rules, buckets)


# -- parallel execution -----------------------------------------------------


def _node_unit_task(
    rules: tuple[ScopedRule, ...],
    nodes: list[Node],
    support: frozenset[str],
) -> list[list[Violation]]:
    """Worker body for one node work unit (module-level: picklable)."""
    ctx = _ChunkContext({}, support)
    buckets: list[list[Violation]] = [[] for _ in rules]
    dispatch = _node_dispatch(list(enumerate(rules)))
    for node in nodes:
        for index, rule in dispatch[node.node_type]:
            found = rule.fn(node, ctx)
            if found:
                buckets[index].extend(found)
    return buckets


def _link_unit_task(
    rules: tuple[ScopedRule, ...],
    links: list[Link],
    types: dict[str, NodeType],
) -> list[list[Violation]]:
    """Worker body for one link work unit (module-level: picklable)."""
    ctx = _ChunkContext(types, frozenset())
    buckets: list[list[Violation]] = [[] for _ in rules]
    dispatch = _link_dispatch(list(enumerate(rules)))
    for link in links:
        for index, rule in dispatch[link.kind]:
            found = rule.fn(link, ctx)
            if found:
                buckets[index].extend(found)
    return buckets


def _slices(items: list, pieces: int) -> list[list]:
    if not items:
        return []
    size = max(1, -(-len(items) // pieces))
    return [items[i:i + size] for i in range(0, len(items), size)]


def _mp_context() -> Any:
    """Pick the worker-pool start method the parent can afford.

    ``fork`` keeps worker start cheap and inherits ``sys.path`` and
    imports — but forking a multi-threaded parent is undefined
    behaviour (the child may inherit held locks mid-operation), and the
    asyncio service checks stores from executor threads.  So ``fork``
    is used only while the parent is single-threaded; any live helper
    thread switches to ``forkserver`` (POSIX) or ``spawn``.  Every
    worker task function and every shipped rule callable is
    module-level precisely so the spawn path can import them by
    qualified name.  The ``REPRO_MP_START`` environment variable
    overrides the selection (``fork`` / ``forkserver`` / ``spawn``; CI
    pins it to exercise each path) — an unknown name raises
    ``ValueError`` loudly rather than falling back.
    """
    import multiprocessing

    override = os.environ.get("REPRO_MP_START")
    if override:
        return multiprocessing.get_context(override)
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods and _foreign_thread_count() == 1:
        return multiprocessing.get_context("fork")
    for method in ("forkserver", "spawn"):
        if method in methods:
            return multiprocessing.get_context(method)
    return None  # pragma: no cover - no known platform lands here


#: Thread-name prefixes of the pool machinery this engine (and the
#: stdlib executor underneath it) runs itself.  ``ProcessPoolExecutor``
#: forks additional workers while its own manager and queue-feeder
#: threads are live, so these do not disqualify ``fork``; any *other*
#: live thread does.
_POOL_THREAD_PREFIXES = (
    "ExecutorManagerThread", "QueueFeederThread", "QueueManagerThread",
)


def _foreign_thread_count() -> int:
    """Live threads that are not the engine's own pool machinery."""
    return sum(
        1
        for thread in threading.enumerate()
        if not thread.name.startswith(_POOL_THREAD_PREFIXES)
    )


#: Idle worker pools kept warm between parallel checks, keyed by
#: ``(start method, max workers)``.  Spinning a pool up costs more than
#: checking a mid-sized store, so the engine checks a pool *out* for
#: the duration of one run and returns it afterwards — a "persistent"
#: pool in the work-queue sense: the same worker processes pull shard
#: tasks across however many checks the parent issues.  A pool that
#: saw a failure is shut down instead of returned (its queue was
#: cancelled mid-flight), and concurrent checks simply build a second
#: pool rather than share one.
_IDLE_POOLS: "dict[tuple[str, int], ProcessPoolExecutor]" = {}
_IDLE_POOLS_LOCK = threading.Lock()


def _acquire_pool(
    workers: int,
) -> "tuple[tuple[str, int], ProcessPoolExecutor]":
    context = _mp_context()
    method = context.get_start_method() if context is not None else "default"
    key = (method, workers)
    with _IDLE_POOLS_LOCK:
        pool = _IDLE_POOLS.pop(key, None)
    if pool is None:
        pool = ProcessPoolExecutor(max_workers=workers, mp_context=context)
    return key, pool


def _release_pool(key: "tuple[str, int]", pool: ProcessPoolExecutor) -> None:
    with _IDLE_POOLS_LOCK:
        if key not in _IDLE_POOLS:
            _IDLE_POOLS[key] = pool
            return
    # A concurrent check already parked a pool under this key: let the
    # spare wind down (idle workers exit; nothing is waited on).
    pool.shutdown(wait=False)


def shutdown_parallel_pools() -> None:
    """Shut down every cached idle worker pool (tests, service exit)."""
    with _IDLE_POOLS_LOCK:
        pools = list(_IDLE_POOLS.values())
        _IDLE_POOLS.clear()
    for pool in pools:
        pool.shutdown(wait=False)


def _note_failure(error: BaseException, detail: str) -> None:
    """Attach the failing work unit to the error (``add_note``, 3.11+)."""
    note = getattr(error, "add_note", None)
    if note is not None:
        note(detail)


#: Enum members keyed by wire value, for rebuilding shipped rows.
_NODE_TYPE_BY_VALUE = {member.value: member for member in NodeType}
_LINK_KIND_BY_VALUE = {member.value: member for member in LinkKind}

#: What one shard-scan task returns to the parent: node-rule buckets,
#: the node fragment as ``(seqs, ids, type values)`` columns, and the
#: link shard as ``(sources, targets, kind values)`` columns.  Flat
#: str/int columns pickle far cheaper than Node/Link objects (or even
#: per-record tuples), and the parent rebuilds its sidecar (types,
#: order, support aggregates, link-rule groups) from them while
#: workers keep scanning.
_ScanResult = tuple[
    "list[list[Violation]]",
    "tuple[list[int], list[str], list[Any]]",
    "tuple[list[str], list[str], list[Any]]",
]


#: The worker-process handle cache: one open ``StoredArgument`` keyed
#: by (directory, generation, torn-tail decision).  Pool workers are
#: persistent, so every scan task of a run — and of later runs over
#: the same snapshot — reuses one verified handle instead of re-reading
#: the manifest and re-parsing the journal overlay per task.  A cache
#: hit is a pinned reader that already verified its generation at open
#: time; content-addressed files keep serving it until an explicit gc,
#: exactly the PR 7 pinned-reader contract.
_SCAN_HANDLE: "tuple[tuple[str, str, bool], Any] | None" = None


def _scan_handle(
    directory: str, generation: Any, ignore_torn_tail: bool
) -> Any:
    global _SCAN_HANDLE
    # Runtime import: repro.store imports this module transitively.
    from ..store.reader import StoredArgument

    key = (directory, str(generation), ignore_torn_tail)
    if _SCAN_HANDLE is not None and _SCAN_HANDLE[0] == key:
        return _SCAN_HANDLE[1]
    handle = StoredArgument(
        directory, ignore_torn_tail=ignore_torn_tail, generation=generation
    )
    _SCAN_HANDLE = (key, handle)
    return handle


def _stored_scan_task(
    directory: str,
    index: int,
    node_rules: tuple[ScopedRule, ...],
    generation: Any = None,
    ignore_torn_tail: bool = False,
) -> _ScanResult:
    """One shard's scan — the work-queue unit of the parallel path.

    The worker opens the store **at the parent's pinned generation**
    (``generation`` is the parent's
    :class:`~repro.store.StoreGeneration`; opening verifies the token
    and rewinds any journal segments appended mid-check, so every
    worker parses the one committed snapshot the parent pinned — a
    rotated base raises ``StoreConflictError`` instead of silently
    mixing generations).  It then parses only shard ``index``: the
    link shard first — links shard by *source* id with the same hash
    as nodes, so the shard's outgoing-SupportedBy set covers exactly
    its own nodes' support bits — then the node shard, running node
    rules as records parse.  Node and link fragments return as flat
    value rows; the parent owns every cross-shard judgement.
    """
    stored = _scan_handle(directory, generation, ignore_torn_tail)
    out_support: set[str] = set()
    sources: list[str] = []
    targets: list[str] = []
    kinds: list[Any] = []
    supported_by = LinkKind.SUPPORTED_BY
    for _, link in stored.iter_shard_links(index):
        if link.kind is supported_by:
            out_support.add(link.source)
        sources.append(link.source)
        targets.append(link.target)
        kinds.append(link.kind.value)
    node_ctx = _ChunkContext({}, frozenset(out_support))
    node_buckets: list[list[Violation]] = [[] for _ in node_rules]
    dispatch = _node_dispatch(list(enumerate(node_rules)))
    seqs: list[int] = []
    identifiers: list[str] = []
    type_values: list[Any] = []
    for seq, node in stored.iter_shard_nodes(index):
        seqs.append(seq)
        identifiers.append(node.identifier)
        type_values.append(node.node_type.value)
        for rule_index, rule in dispatch[node.node_type]:
            found = rule.fn(node, node_ctx)
            if found:
                node_buckets[rule_index].extend(found)
    return (
        node_buckets,
        (seqs, identifiers, type_values),
        (sources, targets, kinds),
    )


def _run_parallel_stored(
    stored: Any, rules: tuple[ScopedRule, ...], workers: int
) -> list[Violation]:
    """Work-queue parallel check of a stored argument.

    One scan task per shard, pulled from the pool's queue on demand —
    a skewed shard occupies one worker while the rest keep draining
    the queue, instead of idling behind the old round-robin shard
    groups.  The parent pins the handle's generation and ships
    the token to every worker (snapshot isolation: concurrent appends
    rewind, concurrent compaction raises ``StoreConflictError``).

    The parent parses nothing.  Workers ship their node and link
    fragments back as flat value rows (cheap to pickle), and the
    parent rebuilds its sidecar from them in completion order: types,
    seq order, the SupportedBy aggregates, and link-rule groups keyed
    by (source shard, target shard).  A group is judged the moment
    both its endpoint shards' type fragments have arrived — link work
    overlaps the remaining shard scans, in the otherwise-idle parent.
    Global rules run in the parent after the type merge.  The first
    worker failure cancels every not-yet-started task and re-raises
    with the failing shard noted on the exception.
    """
    # Runtime import: repro.store imports this module transitively.
    from ..store.format import shard_of

    node_rules, link_rules, global_rules = _split_rules(rules)
    node_fns = tuple(rule for _, rule in node_rules)
    link_fns = tuple(rule for _, rule in link_rules)
    directory = str(stored.path)
    # Workers reopen the store themselves at the parent's pinned
    # generation; a torn-tail-recovered parent handle must also hand
    # its recovery decision down or the workers raise.
    torn_tail = bool(getattr(stored, "ignore_torn_tail", False))
    generation = stored.pin()
    shard_count = stored.shard_count
    buckets: list[list[Violation]] = [[] for _ in rules]
    ctx = _StreamContext(stored.name, stored)
    arrived: set[int] = set()
    #: Links grouped by (source shard, target shard); judgeable once
    #: both shards' type fragments have merged.
    pending: dict[tuple[int, int], list[Link]] = {}
    supported_by = LinkKind.SUPPORTED_BY

    def _judge(links: "list[Link]", pair: "tuple[int, int]") -> None:
        try:
            link_parts = _link_unit_task(link_fns, links, ctx.types)
        except BaseException as error:
            _note_failure(
                error,
                f"parallel check: link rules over shard {pair[0]} -> "
                f"shard {pair[1]} links failed (store {directory})",
            )
            raise
        for (rule_index, _), part in zip(link_rules, link_parts):
            buckets[rule_index].extend(part)

    pool_key, pool = _acquire_pool(workers)
    try:
        scans: "dict[Future[_ScanResult], int]" = {
            pool.submit(
                _stored_scan_task, directory, index, node_fns,
                generation, torn_tail,
            ): index
            for index in range(shard_count)
        }
        for job in as_completed(scans):
            index = scans[job]
            try:
                node_parts, node_cols, link_cols = job.result()
            except BaseException as error:
                _note_failure(
                    error,
                    f"parallel check: scan of shard {index} failed "
                    f"(store {directory})",
                )
                raise
            for (rule_index, _), part in zip(node_rules, node_parts):
                buckets[rule_index].extend(part)
            for seq, identifier, type_value in zip(*node_cols):
                ctx.types[identifier] = _NODE_TYPE_BY_VALUE[type_value]
                ctx._order.append((seq, identifier))
            # Sources are disjoint across link shards (sharded by
            # source id) and columns keep shard seq order, so appending
            # preserves per-source adjacency order.
            for source, target, kind_value in zip(*link_cols):
                kind = _LINK_KIND_BY_VALUE[kind_value]
                if kind is supported_by:
                    ctx.in_support.add(target)
                    ctx.adjacency.setdefault(source, []).append(target)
                if link_fns:
                    pending.setdefault(
                        (index, shard_of(target, shard_count)), []
                    ).append(Link(source, target, kind))
            arrived.add(index)
            # Link groups become judgeable the moment both endpoint
            # type fragments land: judge them now, in the parent,
            # overlapping the remaining shard scans.
            ready = [
                pair for pair in pending
                if pair[0] in arrived and pair[1] in arrived
            ]
            for pair in ready:
                _judge(pending.pop(pair), pair)
        for pair in sorted(pending):
            # Unreachable for in-range shards (every scan arrived);
            # kept so an out-of-contract store fails loudly here rather
            # than silently dropping links.
            _judge(pending.pop(pair), pair)
        ctx.finalise()
        for rule_index, rule in global_rules:
            buckets[rule_index].extend(rule.fn(ctx))
    except BaseException:
        # Surface the failure immediately: cancel every queued task and
        # retire this pool (its workers may still be draining cancelled
        # state) instead of running the backlog to completion.
        pool.shutdown(wait=False, cancel_futures=True)
        raise
    _release_pool(pool_key, pool)
    return _assemble(rules, buckets)


def _run_parallel(
    subject: Any, rules: tuple[ScopedRule, ...], workers: int
) -> list[Violation]:
    """Work-queue parallel check of a live argument (or stored: above).

    Units are list slices finer than the worker count, so the pool's
    queue self-balances; results merge in completion order (canonical
    output order makes collection order irrelevant).  Failure semantics
    match the stored path: first error cancels the queue and re-raises
    with the failing unit noted.
    """
    if is_stored_argument(subject):
        return _run_parallel_stored(subject, rules, workers)
    node_rules, link_rules, global_rules = _split_rules(rules)
    ctx = _LiveContext(subject)
    node_units = _slices(subject.nodes, workers * 4)
    link_units = _slices(subject.links, workers * 4)
    buckets: list[list[Violation]] = [[] for _ in rules]
    node_fns = tuple(rule for _, rule in node_rules)
    link_fns = tuple(rule for _, rule in link_rules)
    pool_key, pool = _acquire_pool(workers)
    try:
        jobs: "dict[Future[list[list[Violation]]], tuple[_IndexedRules, str]]"
        jobs = {}
        if node_fns:
            for unit_index, unit in enumerate(node_units):
                support = frozenset(
                    node.identifier
                    for node in unit
                    if ctx.cites_support(node.identifier)
                )
                jobs[
                    pool.submit(_node_unit_task, node_fns, unit, support)
                ] = (node_rules, f"node unit {unit_index}")
        if link_fns:
            for unit_index, unit in enumerate(link_units):
                types: dict[str, NodeType] = {}
                for link in unit:
                    types[link.source] = ctx.node_type(link.source)
                    types[link.target] = ctx.node_type(link.target)
                jobs[
                    pool.submit(_link_unit_task, link_fns, unit, types)
                ] = (link_rules, f"link unit {unit_index}")
        # Global rules overlap with the workers.
        for index, rule in global_rules:
            buckets[index].extend(rule.fn(ctx))
        for job in as_completed(jobs):
            indexed, label = jobs[job]
            try:
                parts = job.result()
            except BaseException as error:
                _note_failure(error, f"parallel check: {label} failed")
                raise
            for (index, _), part in zip(indexed, parts):
                buckets[index].extend(part)
    except BaseException:
        pool.shutdown(wait=False, cancel_futures=True)
        raise
    _release_pool(pool_key, pool)
    return _assemble(rules, buckets)


# -- incremental checking ---------------------------------------------------


class IncrementalChecker:
    """Re-check only what the mutation delta touched, plus global rules.

    Holds per-rule violation maps keyed by subject (node identifier for
    node rules, the :class:`~repro.core.argument.Link` itself for link
    rules), storing only non-empty entries.  :meth:`check` consumes
    :meth:`Argument.delta_since <repro.core.argument.Argument.delta_since>`
    to invalidate and re-evaluate exactly the touched subjects:

    * added nodes/links evaluate fresh; removed ones drop their entries;
    * a replaced node re-evaluates its node rules, and — when its *type*
      changed — the link rules of every link touching it;
    * any link mutation re-evaluates the node rules of both endpoints
      (support-dependent rules like ``undeveloped-unmarked`` read them).

    Global rules re-run on every :meth:`check` (they are whole-graph by
    declaration), and a rotated delta log forces a full recompute, so
    the result always equals a fresh full check.

    :meth:`from_store` attaches the same machinery to a **persisted**
    case instead of a live argument: the delta source becomes the
    store's append journal, the context becomes a
    :class:`_StoreContext` sidecar patched per journal record, and the
    case is never hydrated.
    """

    def __init__(
        self, argument: Argument, rules: Iterable[ScopedRule]
    ) -> None:
        if not isinstance(argument, Argument):
            raise TypeError(
                "IncrementalChecker needs a live Argument, got "
                f"{type(argument).__name__} (for a StoredArgument use "
                "IncrementalChecker.from_store)"
            )
        self._argument: "Argument | None" = argument
        self._stored: Any = None
        self._rules = tuple(rules)
        self._node_rules, self._link_rules, self._global_rules = \
            _split_rules(self._rules)
        self._ctx: RuleContext = _LiveContext(argument)
        self._node_hits: list[dict[str, tuple[Violation, ...]]] = [
            {} for _ in self._node_rules
        ]
        self._link_hits: list[dict[Link, tuple[Violation, ...]]] = [
            {} for _ in self._link_rules
        ]
        self._global_hits: list[tuple[Violation, ...]] = [
            () for _ in self._global_rules
        ]
        self._seq = -1
        self._rebuild()

    @classmethod
    def from_store(
        cls, stored: Any, rules: Iterable[ScopedRule]
    ) -> "IncrementalChecker":
        """A checker over a persisted case — no hydration, ever.

        Builds the violation maps with one streaming pass over the
        store's shards (journal replayed), then each :meth:`check`
        consumes only the journal records appended since — the deltas
        ``Argument.save(journal=True)`` persists — re-evaluating exactly
        the touched subjects.  ``stored.hydrated`` stays ``False``: the
        context is a type/support/adjacency sidecar, and single-node
        re-evaluation uses lazy per-shard lookups.  A compaction or
        full rewrite of the store (a new base-shard generation) triggers
        one streaming rebuild; legacy whole-argument rules are rejected
        because they would require hydration.
        """
        if not is_stored_argument(stored):
            raise TypeError(
                "from_store needs a StoredArgument, got "
                f"{type(stored).__name__}"
            )
        checker = cls.__new__(cls)
        checker._argument = None
        checker._stored = stored
        checker._rules = tuple(rules)
        checker._node_rules, checker._link_rules, checker._global_rules = \
            _split_rules(checker._rules)
        checker._ctx = _StoreContext(stored)
        checker._node_hits = [{} for _ in checker._node_rules]
        checker._link_hits = [{} for _ in checker._link_rules]
        checker._global_hits = [() for _ in checker._global_rules]
        checker._seq = -1
        checker._rebuild_store()
        return checker

    @property
    def argument(self) -> "Argument | None":
        """The live argument, or ``None`` for a store-backed checker."""
        return self._argument

    # -- graph accessors (live argument or store sidecar) -----------------

    def _graph_node(self, identifier: str) -> Node:
        if self._stored is None:
            return self._argument.node(identifier)
        return self._stored.node(identifier)

    def _graph_contains(self, identifier: str) -> bool:
        if self._stored is None:
            return identifier in self._argument
        return identifier in self._ctx.types

    def _graph_has_link(self, link: Link) -> bool:
        if self._stored is None:
            return self._argument.has_link(link)
        return link in self._ctx.links

    def _graph_links_of(self, identifier: str) -> list[Link]:
        if self._stored is None:
            return self._argument.links_of(identifier)
        return list(self._ctx.out_links.get(identifier, ())) + list(
            self._ctx.in_links.get(identifier, ())
        )

    def _rebuild(self) -> None:
        for hits in self._node_hits:
            hits.clear()
        for hits in self._link_hits:
            hits.clear()
        for node in self._argument.nodes:
            self._refresh_node(node)
        for link in self._argument.links:
            self._refresh_link(link)
        for slot, (_, rule) in enumerate(self._global_rules):
            self._global_hits[slot] = tuple(rule.fn(self._ctx))
        self._seq = self._argument.mutation_seq

    def _rebuild_store(self) -> None:
        """One streaming pass over the store: sidecar + violation maps.

        Links stream first (the sidecar aggregates node rules read),
        then nodes (evaluating node rules as records parse — node
        payloads are not retained), then link rules over the link index
        and the global rules over the completed sidecar.  No hydration:
        this is the streaming check's cost, paid once at attach and
        again only if the base shards are replaced underneath us.
        """
        ctx: _StoreContext = self._ctx
        ctx.reset()
        for hits in self._node_hits:
            hits.clear()
        for hits in self._link_hits:
            hits.clear()
        for link in self._stored.iter_links():
            ctx.apply_op("add_link", link)
        for node in self._stored.iter_nodes():
            ctx.types[node.identifier] = node.node_type
            ctx.order[node.identifier] = None
            self._refresh_node(node)
        for link in ctx.links:
            self._refresh_link(link)
        for slot, (_, rule) in enumerate(self._global_rules):
            self._global_hits[slot] = tuple(rule.fn(ctx))
        self._seq = len(self._stored.journal_ops())
        self._base_key = self._stored.base_key()
        self._journal_key = tuple(self._stored.journal_segments)

    def _refresh_node(self, node: Node) -> None:
        identifier = node.identifier
        for slot, (_, rule) in enumerate(self._node_rules):
            types = rule.node_types
            if types is not None and node.node_type not in types:
                # Dispatch filter: the rule cannot fire for this type —
                # clear any entry left from a pre-retype evaluation.
                self._node_hits[slot].pop(identifier, None)
                continue
            found = rule.fn(node, self._ctx)
            if found:
                self._node_hits[slot][identifier] = tuple(found)
            else:
                self._node_hits[slot].pop(identifier, None)

    def _refresh_link(self, link: Link) -> None:
        for slot, (_, rule) in enumerate(self._link_rules):
            kind = rule.link_kind
            if kind is not None and link.kind is not kind:
                continue  # a link never changes kind; nothing cached
            found = rule.fn(link, self._ctx)
            if found:
                self._link_hits[slot][link] = tuple(found)
            else:
                self._link_hits[slot].pop(link, None)

    def _drop_node(self, identifier: str) -> None:
        for hits in self._node_hits:
            hits.pop(identifier, None)

    def _drop_link(self, link: Link) -> None:
        for hits in self._link_hits:
            hits.pop(link, None)

    def _apply(self, records: tuple[tuple[str, Any], ...]) -> None:
        touched_nodes: set[str] = set()
        touched_links: set[Link] = set()
        for op, payload in records:
            if op == "add_node":
                touched_nodes.add(payload.identifier)
            elif op == "remove_node":
                self._drop_node(payload.identifier)
                touched_nodes.discard(payload.identifier)
            elif op == "replace_node":
                old, new = payload
                touched_nodes.add(new.identifier)
                if (
                    old.node_type is not new.node_type
                    and self._graph_contains(new.identifier)
                ):
                    # A retype can flip link-rule verdicts on every link
                    # touching the node.
                    touched_links.update(
                        self._graph_links_of(new.identifier)
                    )
            elif op == "add_link":
                touched_links.add(payload)
                touched_nodes.add(payload.source)
                touched_nodes.add(payload.target)
            elif op == "remove_link":
                self._drop_link(payload)
                touched_links.discard(payload)
                touched_nodes.add(payload.source)
                touched_nodes.add(payload.target)
        for identifier in touched_nodes:
            if self._graph_contains(identifier):
                self._refresh_node(self._graph_node(identifier))
            else:
                self._drop_node(identifier)
        for link in touched_links:
            if self._graph_has_link(link):
                self._refresh_link(link)
            else:
                self._drop_link(link)

    def _update_globals(
        self, records: tuple[tuple[str, Any], ...]
    ) -> None:
        """Refresh global rules, via their incremental hooks if offered."""
        for slot, (_, rule) in enumerate(self._global_rules):
            found: "list[Violation] | None" = None
            if rule.delta_fn is not None:
                found = rule.delta_fn(
                    self._ctx, records, self._global_hits[slot]
                )
            if found is None:  # no hook, or the hook declined
                found = rule.fn(self._ctx)
            self._global_hits[slot] = tuple(found)

    def _sync_store(self) -> None:
        """Catch up with the persisted journal before assembling.

        ``refresh()`` re-reads the manifest; anything but a pure journal
        extension forces one streaming rebuild, otherwise only the
        records appended since the last check patch the sidecar and
        re-evaluate their touched subjects.  A pure extension means the
        base shards are unchanged *and* the consumed segment names are
        a prefix of the current journal — position alone is not enough,
        because a compaction can reproduce identical base shards (the
        names are content-addressed) while resetting the journal, after
        which a regrown journal of the same length holds different
        records.
        """
        self._stored.refresh()
        segments = tuple(self._stored.journal_segments)
        if (
            self._stored.base_key() != self._base_key
            or segments[:len(self._journal_key)] != self._journal_key
        ):
            self._rebuild_store()
            return
        ops = self._stored.journal_ops()
        if len(ops) < self._seq:  # torn-tail recovery shrank the journal
            self._rebuild_store()
            return
        if len(ops) == self._seq:
            self._journal_key = segments
            return
        records = tuple(ops[self._seq:])
        for op, payload in records:
            self._ctx.apply_op(op, payload)
        self._apply(records)
        self._update_globals(records)
        self._seq = len(ops)
        self._journal_key = segments

    def check(self) -> list[Violation]:
        """Current violations; output identical to a fresh full check.

        With no mutations since the last call this is pure cache
        assembly; after mutations only touched subjects re-evaluate,
        global rules refresh through their incremental hooks (falling
        back to full evaluation), and a rotated delta log (or, for a
        store-backed checker, a replaced base-shard generation) forces
        a complete rebuild.
        """
        if self._stored is not None:
            self._sync_store()
            return self._assemble_hits()
        delta = self._argument.delta_since(self._seq)
        if delta is None:
            self._rebuild()  # the bounded log rotated past us
        elif delta:
            self._apply(delta.records)
            self._update_globals(delta.records)
            self._seq = self._argument.mutation_seq
        return self._assemble_hits()

    def _assemble_hits(self) -> list[Violation]:
        buckets: list[list[Violation]] = [[] for _ in self._rules]
        for slot, (index, _) in enumerate(self._node_rules):
            for found in self._node_hits[slot].values():
                buckets[index].extend(found)
        for slot, (index, _) in enumerate(self._link_rules):
            for found in self._link_hits[slot].values():
                buckets[index].extend(found)
        for slot, (index, _) in enumerate(self._global_rules):
            buckets[index].extend(self._global_hits[slot])
        return _assemble(self._rules, buckets)

    def is_well_formed(self) -> bool:
        return not self.check()
