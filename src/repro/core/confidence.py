"""Mechanical argument-confidence assessment via Bayesian networks.

Ref [34] of the paper ('Uncertainty and confidence in safety logic')
surveys mechanisms for quantifying argument confidence; §V.B warns that
if confidence is 'assessed mechanically (e.g., through BBN modelling)',
an asserted rule over an irrelevant premise 'would artificially raise
the assessed confidence'.

This module builds that assessor so the warning can be measured:

* :func:`confidence_network` — compile a GSN argument into a boolean
  Bayesian network: each solution becomes an evidence node whose prior
  reflects its registry attributes (coverage, tool trust, age); each
  supported claim becomes a noisy-OR/AND combination of its support;
* :func:`claim_confidence` — posterior confidence in any claim given
  which evidence is accepted;
* :func:`confidence_report` — per-claim posteriors for a whole case.

The semantics mirror :mod:`repro.formalise.translator`: sub-claims
combine conjunctively (a noisy-AND via De Morgan on noisy-OR), parallel
evidence under one claim combines disjunctively (noisy-OR) — redundant
evidence raises confidence, missing legs lower it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..logic.bbn import BayesNet, Cpt, noisy_or_cpt
from .argument import Argument
from .case import AssuranceCase
from .evidence import EvidenceItem
from .nodes import NodeType

__all__ = [
    "ConfidenceModel",
    "confidence_network",
    "claim_confidence",
    "confidence_report",
    "evidence_prior",
]

#: Probability a support step's inference itself is sound (the 'warrant
#: strength' default).  Deliberately below 1: inference steps carry
#: residual doubt even when every leg holds.
DEFAULT_STEP_STRENGTH = 0.95
#: Leak: confidence in a claim with no accepted support.
DEFAULT_LEAK = 0.02


def evidence_prior(item: EvidenceItem) -> float:
    """Prior that an evidence artefact actually establishes its point.

    Scales with coverage, discounts untrusted tools and stale data —
    the attributes Def Stan 00-56's sufficiency talk revolves around.
    """
    prior = 0.35 + 0.6 * item.coverage
    if not item.trusted_tool:
        prior *= 0.8
    if item.age_days > 365:
        prior *= 0.85
    return max(0.01, min(0.99, prior))


@dataclass
class ConfidenceModel:
    """A compiled confidence network for one argument/case."""

    network: BayesNet
    claim_variables: dict[str, str]     # node id -> BBN variable
    evidence_variables: dict[str, str]  # solution id -> BBN variable

    def confidence(
        self,
        node_id: str,
        accepted_evidence: Mapping[str, bool] | None = None,
    ) -> float:
        """Posterior confidence in a claim.

        ``accepted_evidence`` maps solution identifiers to acceptance;
        unmentioned evidence stays at its prior.
        """
        variable = self.claim_variables[node_id]
        evidence = {
            self.evidence_variables[solution_id]: value
            for solution_id, value in (accepted_evidence or {}).items()
        }
        return self.network.query(variable, evidence)


def _variable_name(prefix: str, identifier: str) -> str:
    return f"{prefix}_{identifier.lower().replace('-', '_')}"


def confidence_network(argument: Argument) -> ConfidenceModel:
    """Compile an argument into a confidence BBN.

    Claims are added in reverse-topological order (support first).  A
    claim with both sub-claims and evidence treats the sub-claims as
    jointly necessary and the evidence items as independent alternative
    boosts, matching the formalisation semantics.
    """
    network = BayesNet()
    claim_variables: dict[str, str] = {}
    evidence_variables: dict[str, str] = {}

    for node in argument.nodes:
        if node.node_type is NodeType.SOLUTION:
            variable = _variable_name("ev", node.identifier)
            evidence_variables[node.identifier] = variable
            network.add_prior(variable, 0.9)

    ordered: list[str] = []
    visited: set[str] = set()

    def post_order(identifier: str) -> None:
        if identifier in visited:
            return
        visited.add(identifier)
        for child in argument.supporters(identifier):
            post_order(child.identifier)
        node = argument.node(identifier)
        if node.node_type in (NodeType.GOAL, NodeType.STRATEGY,
                              NodeType.AWAY_GOAL):
            ordered.append(identifier)

    for root in argument.roots():
        post_order(root.identifier)
    # Cover claim nodes not reachable from a root (fragments).
    for node in argument.nodes:
        if node.node_type in (NodeType.GOAL, NodeType.STRATEGY,
                              NodeType.AWAY_GOAL):
            post_order(node.identifier)

    for identifier in ordered:
        variable = _variable_name("cl", identifier)
        claim_variables[identifier] = variable
        supporters = argument.supporters(identifier)
        claim_parents = [
            claim_variables[c.identifier]
            for c in supporters
            if c.identifier in claim_variables
        ]
        evidence_parents = [
            evidence_variables[c.identifier]
            for c in supporters
            if c.identifier in evidence_variables
        ]
        if not claim_parents and not evidence_parents:
            # Undeveloped claim: only the leak speaks for it.
            network.add_prior(variable, DEFAULT_LEAK)
            continue
        if claim_parents:
            # Noisy-AND over sub-claims (all legs needed), with evidence
            # folded in as additional required legs.
            parents = tuple(claim_parents + evidence_parents)
            table: dict[tuple[bool, ...], float] = {}
            import itertools

            for row in itertools.product((False, True),
                                         repeat=len(parents)):
                if all(row):
                    table[row] = DEFAULT_STEP_STRENGTH
                else:
                    missing = sum(1 for bit in row if not bit)
                    table[row] = max(
                        DEFAULT_LEAK,
                        DEFAULT_STEP_STRENGTH * (0.3 ** missing),
                    )
            network.add(Cpt(variable, parents, table))
        else:
            # Pure evidence: alternatives, noisy-OR.
            network.add(noisy_or_cpt(
                variable,
                tuple(evidence_parents),
                tuple(DEFAULT_STEP_STRENGTH
                      for _ in evidence_parents),
                leak=DEFAULT_LEAK,
            ))
    return ConfidenceModel(network, claim_variables, evidence_variables)


def _case_model(case: AssuranceCase) -> ConfidenceModel:
    """A model whose evidence priors come from the case's registry."""
    model = confidence_network(case.argument)
    # Rebuild with evidence priors from registry attributes; claim CPTs
    # carry over unchanged (BayesNet has no in-place update by design).
    network = BayesNet()
    for solution_id, variable in model.evidence_variables.items():
        items = case.citations(solution_id)
        if items:
            prior = max(evidence_prior(item) for item in items)
        else:
            prior = 0.3  # uncited solution: weak by default
        network.add_prior(variable, prior)
    for variable in model.network.variables:
        if variable.startswith("ev_"):
            continue
        network.add(model.network.cpt(variable))
    return ConfidenceModel(
        network, model.claim_variables, model.evidence_variables
    )


def claim_confidence(
    case: AssuranceCase,
    node_id: str,
    accepted_evidence: Mapping[str, bool] | None = None,
) -> float:
    """Posterior confidence in one claim of a case."""
    return _case_model(case).confidence(node_id, accepted_evidence)


def confidence_report(case: AssuranceCase) -> dict[str, float]:
    """Posterior confidence for every claim, keyed by node identifier."""
    model = _case_model(case)
    return {
        node_id: model.confidence(node_id)
        for node_id in model.claim_variables
    }
