"""GSN node types for assurance arguments.

The Goal Structuring Notation (GSN Community Standard v1, ref [30]) defines
six principal element kinds, matched exactly by Denney & Pai's formal
syntax ``{s, g, e, a, j, c}`` (§III.I): strategy, goal, evidence
(solution), assumption, justification, and context.  We also model the
standard's *undeveloped* and *away-goal* decorations because the paper's
discussion of module interfaces ('solutions cannot be in the context of an
away goal', §II.B) refers to them.

Nodes carry natural-language ``text``.  Per Kelly [2], a GSN goal must be a
*proposition* — a claim that can be true or false.  The paper points out
that Denney et al.'s generated goal 'Formal proof that Quat4::quat(NED,
Body) holds for Fc.cpp' is *not* a proposition; :func:`looks_propositional`
implements the shallow part-of-speech check a syntax formalisation can
perform, and the tests show it (correctly) cannot tell a meaningful claim
from a well-formed but vacuous one.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field, replace
from typing import Any, Mapping

__all__ = [
    "NodeType",
    "Node",
    "node_type_letter",
    "looks_propositional",
    "DEFAULT_PREFIXES",
]


class NodeType(enum.Enum):
    """The six principal GSN element kinds plus the away goal."""

    GOAL = "goal"
    STRATEGY = "strategy"
    SOLUTION = "solution"
    CONTEXT = "context"
    ASSUMPTION = "assumption"
    JUSTIFICATION = "justification"
    AWAY_GOAL = "away_goal"

    @property
    def letter(self) -> str:
        """Denney & Pai's single-letter code for the node type."""
        return node_type_letter(self)

    @property
    def is_claim_like(self) -> bool:
        """Goals and away goals state claims."""
        return self in (NodeType.GOAL, NodeType.AWAY_GOAL)

    @property
    def is_contextual(self) -> bool:
        """Context, assumptions and justifications attach via InContextOf."""
        return self in (
            NodeType.CONTEXT,
            NodeType.ASSUMPTION,
            NodeType.JUSTIFICATION,
        )


_LETTERS: dict[NodeType, str] = {
    NodeType.GOAL: "g",
    NodeType.STRATEGY: "s",
    NodeType.SOLUTION: "e",  # 'evidence' in Denney & Pai's formalism
    NodeType.CONTEXT: "c",
    NodeType.ASSUMPTION: "a",
    NodeType.JUSTIFICATION: "j",
    NodeType.AWAY_GOAL: "g",
}

#: Conventional identifier prefixes used by GSN practitioners and by our
#: builder when auto-numbering nodes (G1, S1, Sn1, C1, A1, J1).
DEFAULT_PREFIXES: dict[NodeType, str] = {
    NodeType.GOAL: "G",
    NodeType.STRATEGY: "S",
    NodeType.SOLUTION: "Sn",
    NodeType.CONTEXT: "C",
    NodeType.ASSUMPTION: "A",
    NodeType.JUSTIFICATION: "J",
    NodeType.AWAY_GOAL: "AG",
}


def node_type_letter(node_type: NodeType) -> str:
    """Map a node type to Denney & Pai's ``{s, g, e, a, j, c}`` letter."""
    return _LETTERS[node_type]


@dataclass(frozen=True)
class Node:
    """One GSN element.

    ``identifier`` must be unique within an argument.  ``undeveloped``
    marks a goal or strategy whose support is intentionally absent (the
    GSN diamond decoration).  ``module`` names the source module for away
    goals.  ``metadata`` carries the Denney–Naylor–Pai semantic
    annotations (see :mod:`repro.core.metadata`); it is kept as a plain
    tuple-of-pairs mapping so nodes stay hashable.
    """

    identifier: str
    node_type: NodeType
    text: str
    undeveloped: bool = False
    module: str | None = None
    metadata: tuple[tuple[str, tuple[Any, ...]], ...] = ()

    def __post_init__(self) -> None:
        if not self.identifier:
            raise ValueError("node identifier must be non-empty")
        if not self.text.strip():
            raise ValueError(
                f"node {self.identifier!r} must have non-empty text"
            )
        if self.node_type is NodeType.AWAY_GOAL and not self.module:
            raise ValueError(
                f"away goal {self.identifier!r} must name its module"
            )
        if self.undeveloped and self.node_type not in (
            NodeType.GOAL, NodeType.STRATEGY
        ):
            raise ValueError(
                "only goals and strategies can be undeveloped, not "
                f"{self.node_type.value}"
            )

    def with_text(self, text: str) -> "Node":
        """A copy of this node with different text."""
        return replace(self, text=text)

    def with_metadata(
        self, annotations: Mapping[str, tuple[Any, ...]]
    ) -> "Node":
        """A copy with the given metadata attributes merged in."""
        merged = dict(self.metadata)
        merged.update(annotations)
        return replace(self, metadata=tuple(sorted(merged.items())))

    def metadata_dict(self) -> dict[str, tuple[Any, ...]]:
        """Metadata as a plain dict (attribute name -> parameter tuple)."""
        return dict(self.metadata)

    def __str__(self) -> str:
        marker = " <undeveloped>" if self.undeveloped else ""
        return (
            f"{self.identifier} [{self.node_type.value}] "
            f"{self.text!r}{marker}"
        )


_PROPOSITION_SUBJECT = re.compile(r"^[A-Za-z0-9_'\"].*")
# Verbs whose presence suggests the text asserts something of a subject.
_COPULA_OR_VERB = re.compile(
    r"\b(is|are|was|were|has|have|holds?|meets?|satisf\w+|compl\w+|"
    r"operates?|ensures?|prevents?|mitigat\w+|maintain\w+|achiev\w+|"
    r"will|shall|does|do|can(?:not)?|inhibit\w*|remain\w*|exceed\w*|"
    r"tolerat\w+|detect\w+|manag\w+|support\w+|provid\w+|block\w*|"
    r"annunciat\w+|recover\w*|respond\w*|protect\w*|isolat\w+|"
    r"disabl\w+|enabl\w+|warn\w*|notif\w+|cover\w*|guarantee\w*|"
    r"avoid\w*|reduc\w+|control\w*|handl\w+|record\w*|establish\w+|"
    r"terminat\w+|trip\w*|trigger\w*|keep\w*|stop\w*|limit\w*|"
    r"bound\w*|lead\w*|deliver\w*|perform\w*|execut\w+|conform\w*|"
    r"fail\w*|switch\w+|raise\w*|alert\w*|arriv\w+|occur\w*|"
    r"includ\w+|contain\w*|appl\w+|receiv\w+|transmit\w*|grant\w*|"
    r"clos\w+|open\w*|shut\w*|engag\w+|disengag\w+|activat\w+|"
    r"deactivat\w+|start\w*|respond\w*|return\w*|enter\w*|reach\w*|"
    r"operat\w+|function\w*|behav\w+|act\w*|work\w*|run\w*)\b",
    re.IGNORECASE,
)
# Leading noun-phrase shapes that are labels, not claims: 'Formal proof
# that X holds', 'Argument over all hazards', 'Testing of module Y'.
_NOUN_PHRASE_OPENERS = re.compile(
    r"^(formal\s+proof|proof|argument|evidence|testing|analysis|review|"
    r"inspection|verification|validation|results?)\b[^.]*?\b"
    r"(that|of|over|for|from)\b",
    re.IGNORECASE,
)


def looks_propositional(text: str) -> bool:
    """Shallow check: could this text be a proposition (true-or-false claim)?

    This is deliberately the *syntactic* check a formalised notation can
    mechanise: sentence shape only.  It flags the noun-phrase goal style the
    paper criticises in Denney et al.'s generated arguments ('Formal proof
    that ... holds for Fc.cpp') while accepting subject-verb claims.  It
    cannot judge whether an accepted sentence is *meaningful* — that is an
    informal property, and the tests demonstrate the gap.
    """
    stripped = text.strip()
    if not stripped:
        return False
    if stripped.endswith("?"):
        return False
    if _NOUN_PHRASE_OPENERS.match(stripped):
        return False
    if not _PROPOSITION_SUBJECT.match(stripped):
        return False
    return bool(_COPULA_OR_VERB.search(stripped))
