"""GSN well-formedness checking — formalised syntax rules.

This module is the 'specification of syntax' sense of formality the paper
distinguishes (§II.B.1): rules about which elements may connect to which,
mechanically checkable without any notion of truth.

Two rule sets are provided:

* :data:`GSN_STANDARD_RULES` — the GSN Community Standard's connection
  rules as the paper describes them: goals *can* directly support other
  goals; solutions cannot be in the context of an away goal; contextual
  elements receive InContextOf links only; solutions do not cite further
  support; etc.
* :data:`DENNEY_PAI_RULES` — the variant from Denney & Pai's formalisation
  which (as the paper notes) asserts ``(n → m) ∧ [l(n) = g] ⇒ l(m) ∈ {s,
  e, a, j, c}`` — i.e. *goals cannot connect to other goals* — even though
  'GSN explicitly allows goals to support other goals [30]' (§III.I).  The
  ablation benchmark shows this formalisation rejecting valid
  standard-conformant arguments: an object lesson in how a formal rule can
  be precisely wrong.

Every rule is a **scoped rule** (see :mod:`repro.core.analysis`): it
declares whether it inspects one node, one link, or the whole graph, and
the analysis engine executes the set serially, streaming over a
:class:`~repro.store.StoredArgument`'s shards without hydration, in
parallel across process workers, or incrementally against the mutation
delta log — all with identical output.  A :class:`RuleSet` aggregates
rules; the legacy whole-argument :class:`Rule` form keeps working through
an adapter that runs it as a global rule (hydration as the fallback, not
the default).  This design lets the experiments count *which* rules a
checker catches and compare checkers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from .analysis import (
    IncrementalChecker,
    RuleContext,
    Scope,
    ScopedRule,
    Violation,
    global_rule,
    per_link,
    per_node,
    run_rules,
)
from .argument import Argument, Link, LinkKind
from .nodes import Node, NodeType, looks_propositional

__all__ = [
    "Violation",
    "Rule",
    "RuleSet",
    "scoped_from_legacy",
    "GSN_STANDARD_RULES",
    "DENNEY_PAI_RULES",
    "check",
    "is_well_formed",
]


CheckFunction = Callable[[Argument], "list[Violation]"]


@dataclass(frozen=True)
class Rule:
    """A legacy whole-argument rule (kept for backward compatibility).

    New rules should be scoped (:func:`~repro.core.analysis.per_node`,
    :func:`~repro.core.analysis.per_link`,
    :func:`~repro.core.analysis.global_rule`); a :class:`RuleSet` adapts
    legacy rules automatically via :func:`scoped_from_legacy`.
    """

    name: str
    description: str
    check: CheckFunction

    def __call__(self, argument: Argument) -> list[Violation]:
        return self.check(argument)


def scoped_from_legacy(rule: Rule) -> ScopedRule:
    """Adapt a whole-argument rule to the scoped engine.

    The adapted rule runs at global scope against
    :meth:`~repro.core.analysis.RuleContext.argument` — so checking a
    stored case with a legacy rule hydrates it (the fallback path), while
    fully-scoped rule sets never do.
    """

    def run(ctx: RuleContext) -> list[Violation]:
        return rule.check(ctx.argument())

    return ScopedRule(rule.name, rule.description, Scope.GLOBAL, run)


@dataclass(frozen=True)
class RuleSet:
    """An ordered collection of rules forming one notion of well-formed.

    Accepts scoped rules and legacy :class:`Rule` instances alike (the
    latter are adapted on construction), so existing code that filters
    or extends ``GSN_STANDARD_RULES.rules`` keeps working.
    """

    name: str
    rules: tuple[ScopedRule, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(
            rule if isinstance(rule, ScopedRule) else scoped_from_legacy(rule)
            for rule in self.rules
        ))

    def check(
        self,
        argument: Argument,
        *,
        mode: str = "auto",
        workers: int | None = None,
    ) -> list[Violation]:
        """All violations, rule-set order, canonical within each rule.

        Also accepts a :class:`repro.store.StoredArgument`: by default
        the stored case is checked by **streaming** its shards
        (checksum-verified) without hydrating an argument.  ``mode``
        selects ``serial``/``streaming``, ``parallel`` (``workers``
        processes), or ``full`` (hydrate first — the legacy behaviour);
        every mode produces the identical list, so loading never changes
        which violations a case has.

        .. deprecated::
            Prefer :func:`repro.check` — ``repro.check(argument,
            rules=this_set, mode=...)`` runs the same engine and
            returns a typed report instead of a bare list.
        """
        return run_rules(argument, self.rules, mode=mode, workers=workers)

    def is_well_formed(
        self,
        argument: Argument,
        *,
        mode: str = "auto",
        workers: int | None = None,
    ) -> bool:
        return not self.check(argument, mode=mode, workers=workers)

    def incremental(self, argument: Argument) -> IncrementalChecker:
        """A stateful checker that re-checks only what mutations touch.

        .. deprecated::
            Prefer ``repro.check(argument, rules=this_set,
            mode="incremental")`` — the facade keeps the stateful
            checker alive per (subject, rules) for you.
        """
        return IncrementalChecker(argument, self.rules)

    def incremental_from_store(self, stored: Any) -> IncrementalChecker:
        """A stateful checker over a persisted case — never hydrates.

        Consumes the store's append-journal deltas (written by
        ``Argument.save(journal=True)``); see
        :meth:`~repro.core.analysis.IncrementalChecker.from_store`.

        .. deprecated::
            Prefer ``repro.check(stored, rules=this_set,
            mode="incremental")`` — the facade detects stored handles
            and routes through ``from_store`` itself.
        """
        return IncrementalChecker.from_store(stored, self.rules)

    def audit(self) -> "list[Any]":
        """Statically audit every rule against the authoring contract.

        Runs the rule-scope auditor (see
        :mod:`repro.analysis_static.auditor`) over each rule's callable
        — AST analysis, closures and helpers resolved one level deep —
        and returns the :class:`~repro.analysis_static.auditor.
        AuditFinding` list: undeclared context access, hydration-forcing
        calls, mutation, and nondeterminism sources, each with severity
        and source location.  An empty list means the set keeps the
        locality contract that makes the four execution modes agree.
        """
        # Imported here: analysis_static imports this module's shipped
        # rule sets for its gate, so a top-level import would cycle.
        from ..analysis_static.auditor import audit_rule_set

        return audit_rule_set(self)


# -- individual rules ------------------------------------------------------
#
# All module-level functions (parallel workers import them by qualified
# name).  Per-link rules may ask the context only for their endpoints'
# types; per-node rules only whether their node cites support — the
# locality contract that makes streaming and partitioning sound.


_SUPPORT_TARGETS = frozenset({
    NodeType.GOAL, NodeType.STRATEGY, NodeType.SOLUTION, NodeType.AWAY_GOAL,
})

_SUPPORT_SOURCES = frozenset({NodeType.GOAL, NodeType.STRATEGY})

_CONTEXT_SOURCES = frozenset({
    NodeType.GOAL, NodeType.STRATEGY, NodeType.AWAY_GOAL,
})


def _rule_supported_by_targets(
    link: Link, ctx: RuleContext
) -> list[Violation]:
    """SupportedBy may only target goals, strategies, or solutions."""
    if link.kind is not LinkKind.SUPPORTED_BY:
        return []
    target = ctx.node_type(link.target)
    if target in _SUPPORT_TARGETS:
        return []
    return [Violation(
        "supported-by-target",
        str(link),
        f"SupportedBy cannot target a {target.value}",
    )]


def _rule_supported_by_sources(
    link: Link, ctx: RuleContext
) -> list[Violation]:
    """Only goals and strategies may cite support."""
    if link.kind is not LinkKind.SUPPORTED_BY:
        return []
    source = ctx.node_type(link.source)
    if source in _SUPPORT_SOURCES:
        return []
    return [Violation(
        "supported-by-source",
        str(link),
        f"a {source.value} cannot cite support",
    )]


def _rule_context_targets(link: Link, ctx: RuleContext) -> list[Violation]:
    """InContextOf may only target context, assumptions, justifications."""
    if link.kind is not LinkKind.IN_CONTEXT_OF:
        return []
    target = ctx.node_type(link.target)
    if target.is_contextual:
        return []
    return [Violation(
        "in-context-of-target",
        str(link),
        "InContextOf must target context, assumption, or "
        f"justification, not {target.value}",
    )]


def _rule_context_sources(link: Link, ctx: RuleContext) -> list[Violation]:
    """Only goals and strategies carry contextual attachments."""
    if link.kind is not LinkKind.IN_CONTEXT_OF:
        return []
    source = ctx.node_type(link.source)
    if source in _CONTEXT_SOURCES:
        return []
    return [Violation(
        "in-context-of-source",
        str(link),
        f"a {source.value} cannot attach context",
    )]


def _rule_away_goal_no_solution_context(
    link: Link, ctx: RuleContext
) -> list[Violation]:
    """'Solutions cannot be in the context of an away goal' (§II.B)."""
    if link.kind is not LinkKind.IN_CONTEXT_OF:
        return []
    if (
        ctx.node_type(link.source) is NodeType.AWAY_GOAL
        and ctx.node_type(link.target) is NodeType.SOLUTION
    ):
        return [Violation(
            "away-goal-solution-context",
            str(link),
            "solutions cannot be in the context of an away goal",
        )]
    return []


def _rule_solutions_are_leaves(
    link: Link, ctx: RuleContext
) -> list[Violation]:
    """Solutions terminate support chains; they cite nothing further."""
    if ctx.node_type(link.source) is not NodeType.SOLUTION:
        return []
    return [Violation(
        "solution-leaf",
        str(link),
        "a solution cannot be the source of any connector",
    )]


def _rule_single_root(ctx: RuleContext) -> list[Violation]:
    """A complete argument has exactly one root goal."""
    roots = ctx.roots()
    if len(roots) == 1:
        return []
    if not roots:
        return [Violation(
            "single-root", ctx.name, "argument has no root goal"
        )]
    names = ", ".join(roots)
    return [Violation(
        "single-root", ctx.name,
        f"argument has {len(roots)} root goals ({names})",
    )]


def _rule_acyclic(ctx: RuleContext) -> list[Violation]:
    """The support relation must be acyclic."""
    cycle = ctx.find_cycle()
    if cycle is None:
        return []
    return [Violation(
        "acyclic", " -> ".join(cycle),
        "support chain forms a cycle (circular reasoning)",
    )]


def _rule_acyclic_delta(
    ctx: RuleContext,
    records: tuple,
    previous: tuple[Violation, ...],
) -> "list[Violation] | None":
    """Incremental acyclicity: test only the added support edges.

    An acyclic graph stays acyclic under node additions, removals, and
    replacements; only an *added* SupportedBy edge ``s -> t`` can close
    a cycle, and it does so exactly when ``s`` is reachable from ``t``.
    So when the previous check was clean, reachability probes from each
    added edge (O(reachable subtree), tiny on tree-shaped arguments)
    replace the whole-graph DFS.  A previously cyclic argument declines
    to the full rule — removals may or may not have fixed it, and the
    canonical cycle rendering needs the full search anyway.  The probes
    go through the context's support surface (``has_support`` /
    ``supported_walk``), so the hook works identically for a live
    argument and for the no-hydration store-backed checker
    (:meth:`~repro.core.analysis.IncrementalChecker.from_store`).
    """
    if previous:
        return None
    added = [
        payload
        for op, payload in records
        if op == "add_link" and payload.kind is LinkKind.SUPPORTED_BY
    ]
    if not added:
        return []
    for link in added:
        if not ctx.has_support(link.source, link.target):
            continue  # removed again within the same delta
        for identifier in ctx.supported_walk(link.target):
            if identifier == link.source:
                return None  # a cycle appeared: render it canonically
    return []


def _rule_developed_or_marked(
    node: Node, ctx: RuleContext
) -> list[Violation]:
    """Every goal is supported, undeveloped-marked, or an away reference."""
    if node.node_type is not NodeType.GOAL:
        return []
    if node.undeveloped or ctx.cites_support(node.identifier):
        return []
    return [Violation(
        "undeveloped-unmarked",
        node.identifier,
        "goal has no support and is not marked undeveloped",
    )]


def _rule_strategies_supported(
    node: Node, ctx: RuleContext
) -> list[Violation]:
    """Every strategy leads to at least one sub-goal (or is undeveloped)."""
    if node.node_type is not NodeType.STRATEGY:
        return []
    if node.undeveloped or ctx.cites_support(node.identifier):
        return []
    return [Violation(
        "strategy-unsupported",
        node.identifier,
        "strategy has no sub-goals and is not marked undeveloped",
    )]


def _rule_goals_propositional(
    node: Node, ctx: RuleContext
) -> list[Violation]:
    """Goal text must read as a proposition (Kelly [2]).

    This is the shallow part-of-speech check §II.B.1 describes — it flags
    Denney-style 'Formal proof that X holds' noun phrases but cannot judge
    meaning.
    """
    if node.node_type not in (NodeType.GOAL, NodeType.AWAY_GOAL):
        return []
    if looks_propositional(node.text):
        return []
    return [Violation(
        "goal-not-proposition",
        node.identifier,
        f"goal text does not read as a proposition: {node.text!r}",
    )]


def _rule_no_goal_to_goal(link: Link, ctx: RuleContext) -> list[Violation]:
    """Denney & Pai's rule: goals cannot connect directly to other goals.

    The paper notes this *contradicts* the GSN standard, which explicitly
    allows goal-to-goal support.  Included only in
    :data:`DENNEY_PAI_RULES` so the ablation can quantify the damage.
    """
    if link.kind is not LinkKind.SUPPORTED_BY:
        return []
    if (
        ctx.node_type(link.source) is NodeType.GOAL
        and ctx.node_type(link.target) is NodeType.GOAL
    ):
        return [Violation(
            "denney-pai-no-goal-to-goal",
            str(link),
            "goal connects directly to another goal "
            "(rejected by the Denney-Pai formalisation; "
            "allowed by the GSN standard)",
        )]
    return []


_STANDARD_RULES: tuple[ScopedRule, ...] = (
    per_link("supported-by-target",
             "SupportedBy targets goals, strategies, or solutions",
             _rule_supported_by_targets,
             kind=LinkKind.SUPPORTED_BY),
    per_link("supported-by-source",
             "only goals and strategies cite support",
             _rule_supported_by_sources,
             kind=LinkKind.SUPPORTED_BY),
    per_link("in-context-of-target",
             "InContextOf targets contextual elements",
             _rule_context_targets,
             kind=LinkKind.IN_CONTEXT_OF),
    per_link("in-context-of-source",
             "only goals and strategies attach context",
             _rule_context_sources,
             kind=LinkKind.IN_CONTEXT_OF),
    per_link("away-goal-solution-context",
             "solutions cannot contextualise away goals",
             _rule_away_goal_no_solution_context,
             kind=LinkKind.IN_CONTEXT_OF),
    per_link("solution-leaf",
             "solutions are terminal",
             _rule_solutions_are_leaves),
    global_rule("single-root",
                "exactly one root goal",
                _rule_single_root),
    global_rule("acyclic",
                "no circular support",
                _rule_acyclic,
                delta_fn=_rule_acyclic_delta),
    per_node("undeveloped-unmarked",
             "unsupported goals must be marked undeveloped",
             _rule_developed_or_marked,
             node_types=(NodeType.GOAL,)),
    per_node("strategy-unsupported",
             "strategies must lead to sub-goals",
             _rule_strategies_supported,
             node_types=(NodeType.STRATEGY,)),
    per_node("goal-not-proposition",
             "goal text must be a proposition",
             _rule_goals_propositional,
             node_types=(NodeType.GOAL, NodeType.AWAY_GOAL)),
)

#: The GSN Community Standard rule set (as characterised in the paper).
GSN_STANDARD_RULES = RuleSet("gsn-standard", _STANDARD_RULES)

#: Denney & Pai's formalisation: the standard rules *plus* their
#: goal-to-goal prohibition that the paper flags as an error.
DENNEY_PAI_RULES = RuleSet(
    "denney-pai",
    _STANDARD_RULES + (
        per_link("denney-pai-no-goal-to-goal",
                 "goals cannot connect to other goals "
                 "(erroneous formalisation)",
                 _rule_no_goal_to_goal,
                 kind=LinkKind.SUPPORTED_BY),
    ),
)


def check(
    argument: Argument,
    rules: RuleSet = GSN_STANDARD_RULES,
    *,
    mode: str = "auto",
    workers: int | None = None,
) -> list[Violation]:
    """All violations of the given rule set (default: GSN standard).

    .. deprecated::
        Thin shim over the unified facade — prefer
        :func:`repro.check`, which accepts the same subjects and modes
        (plus ``"incremental"``) and returns a typed
        :class:`~repro.checking.CheckReport` carrying obligation
        outcomes and the mode actually used.  This wrapper keeps the
        legacy ``list[Violation]`` return type.
    """
    # Imported here: repro.checking imports this module's rule sets,
    # so a top-level import would cycle.
    from ..checking import check as _check

    return list(
        _check(argument, rules, mode=mode, workers=workers).violations
    )


def is_well_formed(
    argument: Argument,
    rules: RuleSet = GSN_STANDARD_RULES,
    *,
    mode: str = "auto",
    workers: int | None = None,
) -> bool:
    """True when the argument violates no rule of the set.

    .. deprecated::
        Prefer ``repro.check(...).well_formed`` — note that the
        facade's notion also reflects failed formal obligations, which
        surface as ``evidence-obligation`` violations here too.
    """
    return not check(argument, rules, mode=mode, workers=workers)
