"""GSN well-formedness checking — formalised syntax rules.

This module is the 'specification of syntax' sense of formality the paper
distinguishes (§II.B.1): rules about which elements may connect to which,
mechanically checkable without any notion of truth.

Two rule sets are provided:

* :data:`GSN_STANDARD_RULES` — the GSN Community Standard's connection
  rules as the paper describes them: goals *can* directly support other
  goals; solutions cannot be in the context of an away goal; contextual
  elements receive InContextOf links only; solutions do not cite further
  support; etc.
* :data:`DENNEY_PAI_RULES` — the variant from Denney & Pai's formalisation
  which (as the paper notes) asserts ``(n → m) ∧ [l(n) = g] ⇒ l(m) ∈ {s,
  e, a, j, c}`` — i.e. *goals cannot connect to other goals* — even though
  'GSN explicitly allows goals to support other goals [30]' (§III.I).  The
  ablation benchmark shows this formalisation rejecting valid
  standard-conformant arguments: an object lesson in how a formal rule can
  be precisely wrong.

Each rule is a small function returning violations; a :class:`RuleSet`
aggregates them.  This design lets the experiments count *which* rules a
checker catches and compare checkers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from .argument import Argument, Link, LinkKind
from .nodes import NodeType, looks_propositional

__all__ = [
    "Violation",
    "Rule",
    "RuleSet",
    "GSN_STANDARD_RULES",
    "DENNEY_PAI_RULES",
    "check",
    "is_well_formed",
]


@dataclass(frozen=True)
class Violation:
    """One rule violation found in an argument."""

    rule: str
    subject: str  # node identifier or link rendering
    detail: str

    def __str__(self) -> str:
        return f"[{self.rule}] {self.subject}: {self.detail}"


CheckFunction = Callable[[Argument], list[Violation]]


@dataclass(frozen=True)
class Rule:
    """A named well-formedness rule."""

    name: str
    description: str
    check: CheckFunction

    def __call__(self, argument: Argument) -> list[Violation]:
        return self.check(argument)


@dataclass(frozen=True)
class RuleSet:
    """An ordered collection of rules forming one notion of well-formed."""

    name: str
    rules: tuple[Rule, ...]

    def check(self, argument: Argument) -> list[Violation]:
        """All violations of all rules, in rule order.

        Also accepts a :class:`repro.store.StoredArgument`: the stored
        case is hydrated by iterating its shards (checksum-verified,
        insertion order preserved) and checked identically, so loading
        never changes which violations a case has.
        """
        argument = _hydrate(argument)
        out: list[Violation] = []
        for rule in self.rules:
            out.extend(rule(argument))
        return out

    def is_well_formed(self, argument: Argument) -> bool:
        return not self.check(argument)


def _hydrate(argument: Argument) -> Argument:
    """An in-memory argument for rule evaluation.

    Stored arguments expose ``load()`` (shard-streaming hydration);
    anything else must already be an :class:`Argument`.  Kept duck-typed
    so this module never imports :mod:`repro.store` (which imports it
    transitively).
    """
    if isinstance(argument, Argument):
        return argument
    # Probe the store-specific streaming surface, not just a generic
    # ``load`` attribute (AssuranceCase and arbitrary objects also have
    # ``load`` methods and must get the clear TypeError instead).
    if hasattr(argument, "iter_links") and hasattr(argument, "load"):
        return argument.load()
    raise TypeError(
        "expected an Argument or a StoredArgument, got "
        f"{type(argument).__name__}"
    )


# -- individual rules ------------------------------------------------------


def _rule_supported_by_targets(argument: Argument) -> list[Violation]:
    """SupportedBy may only target goals, strategies, or solutions."""
    allowed = {
        NodeType.GOAL, NodeType.STRATEGY, NodeType.SOLUTION,
        NodeType.AWAY_GOAL,
    }
    out = []
    for link in argument.links:
        if link.kind is not LinkKind.SUPPORTED_BY:
            continue
        target = argument.node(link.target)
        if target.node_type not in allowed:
            out.append(Violation(
                "supported-by-target",
                str(link),
                f"SupportedBy cannot target a {target.node_type.value}",
            ))
    return out


def _rule_supported_by_sources(argument: Argument) -> list[Violation]:
    """Only goals and strategies may cite support."""
    allowed = {NodeType.GOAL, NodeType.STRATEGY}
    out = []
    for link in argument.links:
        if link.kind is not LinkKind.SUPPORTED_BY:
            continue
        source = argument.node(link.source)
        if source.node_type not in allowed:
            out.append(Violation(
                "supported-by-source",
                str(link),
                f"a {source.node_type.value} cannot cite support",
            ))
    return out


def _rule_context_targets(argument: Argument) -> list[Violation]:
    """InContextOf may only target context, assumptions, justifications."""
    out = []
    for link in argument.links:
        if link.kind is not LinkKind.IN_CONTEXT_OF:
            continue
        target = argument.node(link.target)
        if not target.node_type.is_contextual:
            out.append(Violation(
                "in-context-of-target",
                str(link),
                "InContextOf must target context, assumption, or "
                f"justification, not {target.node_type.value}",
            ))
    return out


def _rule_context_sources(argument: Argument) -> list[Violation]:
    """Only goals and strategies carry contextual attachments."""
    allowed = {NodeType.GOAL, NodeType.STRATEGY, NodeType.AWAY_GOAL}
    out = []
    for link in argument.links:
        if link.kind is not LinkKind.IN_CONTEXT_OF:
            continue
        source = argument.node(link.source)
        if source.node_type not in allowed:
            out.append(Violation(
                "in-context-of-source",
                str(link),
                f"a {source.node_type.value} cannot attach context",
            ))
    return out


def _rule_away_goal_no_solution_context(argument: Argument) -> list[Violation]:
    """'Solutions cannot be in the context of an away goal' (§II.B)."""
    out = []
    for link in argument.links:
        if link.kind is not LinkKind.IN_CONTEXT_OF:
            continue
        source = argument.node(link.source)
        target = argument.node(link.target)
        if (
            source.node_type is NodeType.AWAY_GOAL
            and target.node_type is NodeType.SOLUTION
        ):
            out.append(Violation(
                "away-goal-solution-context",
                str(link),
                "solutions cannot be in the context of an away goal",
            ))
    return out


def _rule_solutions_are_leaves(argument: Argument) -> list[Violation]:
    """Solutions terminate support chains; they cite nothing further.

    Driven off the node-type index: O(solutions + their out-degree)
    instead of a node lookup per link in the argument.
    """
    out = []
    for solution in argument.nodes_of_type(NodeType.SOLUTION):
        for kind in LinkKind:
            for child in argument.children(solution.identifier, kind):
                link = Link(solution.identifier, child.identifier, kind)
                out.append(Violation(
                    "solution-leaf",
                    str(link),
                    "a solution cannot be the source of any connector",
                ))
    return out


def _rule_single_root(argument: Argument) -> list[Violation]:
    """A complete argument has exactly one root goal."""
    roots = argument.roots()
    if len(roots) == 1:
        return []
    if not roots:
        return [Violation(
            "single-root", argument.name, "argument has no root goal"
        )]
    names = ", ".join(r.identifier for r in roots)
    return [Violation(
        "single-root", argument.name,
        f"argument has {len(roots)} root goals ({names})",
    )]


def _rule_acyclic(argument: Argument) -> list[Violation]:
    """The support relation must be acyclic."""
    cycle = argument.find_cycle()
    if cycle is None:
        return []
    return [Violation(
        "acyclic", " -> ".join(cycle),
        "support chain forms a cycle (circular reasoning)",
    )]


def _rule_developed_or_marked(argument: Argument) -> list[Violation]:
    """Every goal is supported, undeveloped-marked, or an away reference."""
    out = []
    for node in argument.goals:
        if node.undeveloped:
            continue
        if argument.supporters(node.identifier):
            continue
        out.append(Violation(
            "undeveloped-unmarked",
            node.identifier,
            "goal has no support and is not marked undeveloped",
        ))
    return out


def _rule_strategies_supported(argument: Argument) -> list[Violation]:
    """Every strategy leads to at least one sub-goal (or is undeveloped)."""
    out = []
    for node in argument.strategies:
        if node.undeveloped:
            continue
        if argument.supporters(node.identifier):
            continue
        out.append(Violation(
            "strategy-unsupported",
            node.identifier,
            "strategy has no sub-goals and is not marked undeveloped",
        ))
    return out


def _rule_goals_propositional(argument: Argument) -> list[Violation]:
    """Goal text must read as a proposition (Kelly [2]).

    This is the shallow part-of-speech check §II.B.1 describes — it flags
    Denney-style 'Formal proof that X holds' noun phrases but cannot judge
    meaning.
    """
    out = []
    for node in argument.goals + argument.nodes_of_type(NodeType.AWAY_GOAL):
        if not looks_propositional(node.text):
            out.append(Violation(
                "goal-not-proposition",
                node.identifier,
                f"goal text does not read as a proposition: {node.text!r}",
            ))
    return out


def _rule_no_goal_to_goal(argument: Argument) -> list[Violation]:
    """Denney & Pai's rule: goals cannot connect directly to other goals.

    The paper notes this *contradicts* the GSN standard, which explicitly
    allows goal-to-goal support.  Included only in
    :data:`DENNEY_PAI_RULES` so the ablation can quantify the damage.
    """
    out = []
    for link in argument.links:
        if link.kind is not LinkKind.SUPPORTED_BY:
            continue
        source = argument.node(link.source)
        target = argument.node(link.target)
        if (
            source.node_type is NodeType.GOAL
            and target.node_type is NodeType.GOAL
        ):
            out.append(Violation(
                "denney-pai-no-goal-to-goal",
                str(link),
                "goal connects directly to another goal "
                "(rejected by the Denney-Pai formalisation; "
                "allowed by the GSN standard)",
            ))
    return out


_STANDARD_RULES: tuple[Rule, ...] = (
    Rule("supported-by-target",
         "SupportedBy targets goals, strategies, or solutions",
         _rule_supported_by_targets),
    Rule("supported-by-source",
         "only goals and strategies cite support",
         _rule_supported_by_sources),
    Rule("in-context-of-target",
         "InContextOf targets contextual elements",
         _rule_context_targets),
    Rule("in-context-of-source",
         "only goals and strategies attach context",
         _rule_context_sources),
    Rule("away-goal-solution-context",
         "solutions cannot contextualise away goals",
         _rule_away_goal_no_solution_context),
    Rule("solution-leaf",
         "solutions are terminal",
         _rule_solutions_are_leaves),
    Rule("single-root",
         "exactly one root goal",
         _rule_single_root),
    Rule("acyclic",
         "no circular support",
         _rule_acyclic),
    Rule("undeveloped-unmarked",
         "unsupported goals must be marked undeveloped",
         _rule_developed_or_marked),
    Rule("strategy-unsupported",
         "strategies must lead to sub-goals",
         _rule_strategies_supported),
    Rule("goal-not-proposition",
         "goal text must be a proposition",
         _rule_goals_propositional),
)

#: The GSN Community Standard rule set (as characterised in the paper).
GSN_STANDARD_RULES = RuleSet("gsn-standard", _STANDARD_RULES)

#: Denney & Pai's formalisation: the standard rules *plus* their
#: goal-to-goal prohibition that the paper flags as an error.
DENNEY_PAI_RULES = RuleSet(
    "denney-pai",
    _STANDARD_RULES + (
        Rule("denney-pai-no-goal-to-goal",
             "goals cannot connect to other goals (erroneous formalisation)",
             _rule_no_goal_to_goal),
    ),
)


def check(
    argument: Argument, rules: RuleSet = GSN_STANDARD_RULES
) -> list[Violation]:
    """All violations of the given rule set (default: GSN standard)."""
    return rules.check(argument)


def is_well_formed(
    argument: Argument, rules: RuleSet = GSN_STANDARD_RULES
) -> bool:
    """True when the argument violates no rule of the set."""
    return rules.is_well_formed(argument)
