"""Hierarchical safety cases ('hicases').

Denney, Pai & Whiteside's hicases let readers 'collapse or expand parts of
arguments on screen' (§III.I); the paper records that formalised syntax's
one uncontested benefit was 'that it enabled the creation of their display
and editing tools'.  This module provides that machinery:

* :class:`HiView` — a fold state over an argument: a set of folded node
  identifiers whose support subtrees are hidden;
* fold/unfold/toggle operations with well-formedness of the visible
  fragment preserved (folding replaces a subtree with a summary marker,
  never leaves dangling links);
* :meth:`HiView.visible_argument` — the abstracted argument a reader sees,
  with folded nodes marked undeveloped (the natural GSN rendering of
  'detail elided');
* :func:`auto_fold_to_depth` — the 'smaller, abstract argument structure'
  reviewers are claimed to prefer evaluating (§III.I), produced by folding
  everything below a depth threshold.

The audience experiment (§VI.C) uses views at several fold depths as its
reading-burden treatments.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable

from .argument import Argument, LinkKind
from .nodes import Node, NodeType

__all__ = ["HiView", "auto_fold_to_depth", "FoldError"]


class FoldError(ValueError):
    """Raised for fold operations on unknown or unfoldable nodes."""


class HiView:
    """A hierarchical view over an argument.

    The underlying argument is never modified; the view tracks which
    goal/strategy nodes are folded and materialises the visible fragment
    on demand.
    """

    def __init__(self, argument: Argument) -> None:
        self._argument = argument
        self._folded: set[str] = set()

    @property
    def argument(self) -> Argument:
        """The full underlying argument."""
        return self._argument

    @property
    def folded(self) -> frozenset[str]:
        """Currently folded node identifiers."""
        return frozenset(self._folded)

    def can_fold(self, identifier: str) -> bool:
        """Only goals and strategies with support can fold."""
        node = self._argument.node(identifier)
        if node.node_type not in (NodeType.GOAL, NodeType.STRATEGY):
            return False
        return bool(self._argument.supporters(identifier))

    def fold(self, identifier: str) -> None:
        """Hide the support subtree below a node."""
        if not self.can_fold(identifier):
            raise FoldError(
                f"node {identifier!r} cannot be folded"
            )
        self._folded.add(identifier)

    def unfold(self, identifier: str) -> None:
        """Reveal a previously folded subtree."""
        self._folded.discard(identifier)

    def toggle(self, identifier: str) -> bool:
        """Flip fold state; returns True when now folded."""
        if identifier in self._folded:
            self.unfold(identifier)
            return False
        self.fold(identifier)
        return True

    def unfold_all(self) -> None:
        """Reveal everything."""
        self._folded.clear()

    def hidden_nodes(self) -> set[str]:
        """Identifiers hidden by the current fold state.

        A node is hidden when every path from a root to it passes through
        the *support subtree* of a folded node (the folded node itself
        stays visible as the summary marker).  Context attached to hidden
        nodes is hidden with them.
        """
        hidden: set[str] = set()
        for folded_id in self._folded:
            for child in self._argument.supporters(folded_id):
                for node in self._argument.walk(child.identifier):
                    hidden.add(node.identifier)
        # Keep anything still reachable outside the folded subtrees.
        visible_roots = [
            r.identifier
            for r in self._argument.roots()
            if r.identifier not in hidden
        ]
        reachable: set[str] = set()
        for root in visible_roots:
            stack = [root]
            while stack:
                current = stack.pop()
                if current in reachable:
                    continue
                reachable.add(current)
                if current in self._folded:
                    # Context still shows on the folded node itself.
                    for ctx in self._argument.context_of(current):
                        reachable.add(ctx.identifier)
                    continue
                stack.extend(
                    child.identifier
                    for child in self._argument.children(current)
                )
        return {
            node.identifier
            for node in self._argument.nodes
            if node.identifier not in reachable
        }

    def visible_argument(self) -> Argument:
        """The abstracted argument the reader currently sees.

        Folded goals/strategies are re-marked ``undeveloped`` so the
        rendering shows the conventional 'detail elided' diamond.
        """
        hidden = self.hidden_nodes()
        view = Argument(name=f"{self._argument.name}(view)")
        with view.batch():
            for node in self._argument.nodes:
                if node.identifier in hidden:
                    continue
                if node.identifier in self._folded:
                    view.add_node(replace(node, undeveloped=True))
                else:
                    view.add_node(node)
            for link in self._argument.links:
                if link.source in hidden or link.target in hidden:
                    continue
                if link.source in self._folded and \
                        link.kind is LinkKind.SUPPORTED_BY:
                    continue
                view.add_link(link.source, link.target, link.kind)
        return view

    def visible_size(self) -> int:
        """Node count of the current view (a reading-burden proxy)."""
        return len(self._argument.nodes) - len(self.hidden_nodes())


def auto_fold_to_depth(argument: Argument, depth: int) -> HiView:
    """Fold every goal/strategy deeper than ``depth`` support levels.

    Depth 1 keeps only the root and its immediate support; larger depths
    reveal progressively more.  Returns the configured view.
    """
    if depth < 1:
        raise FoldError("depth must be at least 1")
    view = HiView(argument)
    levels: dict[str, int] = {}
    for root in argument.roots():
        stack = [(root.identifier, 1)]
        while stack:
            identifier, level = stack.pop()
            if identifier in levels and levels[identifier] <= level:
                continue
            levels[identifier] = level
            for child in argument.supporters(identifier):
                stack.append((child.identifier, level + 1))
    for identifier, level in levels.items():
        if level == depth and view.can_fold(identifier):
            view.fold(identifier)
    return view
