"""Ranked full-text search with query-biased case summaries.

The paper's §VI question — does rich querying over assurance arguments
pay its way against plain text search? — needs a *real* text-search
side to compare against.  This module provides it, modeled on Thomas et
al., "Towards Searching Amongst Tables": a search hit is not a bare
node id but a **query-biased summary** — a rendered slice of the case
(the matching claim plus its supporting neighbourhood via the adjacency
indices) with the snippet window chosen around the query terms.

Three layers:

* the **tokenizer** (:func:`tokenize` / :func:`trigrams`) — the one
  canonical text analysis shared by the live
  :class:`~repro.core.query.ArgumentIndex` text postings, the persisted
  store sidecar (:mod:`repro.store.search`), and every oracle test.
  :data:`TOKENIZER_VERSION` is recorded in persisted indexes so a
  future analyzer change invalidates them loudly instead of silently
  returning different candidates;
* **ranking** (:func:`search`) — terms resolve through token postings
  (exact token hits), terms matching no token fall back to trigram
  substring candidates at a discount, and candidates score by a
  tf–idf-shaped weight (rare terms dominate, repeated mentions help
  logarithmically).  Works over a live :class:`~repro.core.argument.
  Argument` (planner-index postings), a
  :class:`~repro.store.StoredArgument` (persisted sidecar when present,
  one streaming scan when not), or a corpus object exposing
  ``search_sources()`` (:class:`~repro.store.search.CaseCorpus`);
* **summaries** (:func:`query_biased_summary`, :class:`SearchHit`) —
  the snippet window slides to the densest cluster of query terms,
  matched terms are marked ``[like this]``, and up to ``neighbourhood``
  supporting children (terms-first) are rendered under the claim.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from .argument import Argument, LinkKind
from .nodes import Node

__all__ = [
    "TOKENIZER_VERSION",
    "tokenize",
    "trigrams",
    "SearchHit",
    "query_biased_summary",
    "search",
]

#: Bumped on any tokenizer/trigram semantics change; persisted search
#: sidecars record it and are treated as stale under any other version.
TOKENIZER_VERSION = 1

_TOKEN = re.compile(r"[0-9a-z]+")


def tokenize(text: str) -> list[str]:
    """Lowercased alphanumeric word tokens, in text order."""
    return _TOKEN.findall(text.lower())


def trigrams(text: str) -> set[str]:
    """Character trigrams of the lowered text (spaces included).

    Indexing the raw lowered text — not per-token grams — preserves the
    candidate-superset guarantee for substring needles that span token
    boundaries: if ``needle`` occurs in ``text`` (case-folded), every
    trigram of the lowered needle occurs in these grams.
    """
    lowered = text.lower()
    return {lowered[i : i + 3] for i in range(len(lowered) - 2)}


# -- query-biased summaries -------------------------------------------------


def _mark_terms(snippet: str, terms: "tuple[str, ...]") -> str:
    """Wrap every term occurrence in ``[...]``, case-insensitively."""
    if not terms:
        return snippet
    pattern = re.compile(
        "|".join(re.escape(term) for term in sorted(terms, key=len, reverse=True)),
        re.IGNORECASE,
    )
    return pattern.sub(lambda match: f"[{match.group(0)}]", snippet)


def query_biased_summary(
    text: str, terms: Iterable[str], *, width: int = 120
) -> str:
    """The slice of ``text`` densest in query terms, terms marked.

    The classic query-biased snippet: all term occurrences are located
    in the folded text, the ``width``-character window covering the
    most distinct terms (ties: the most occurrences, then the earliest)
    is chosen, and ellipses mark the cut edges.  With no occurrences —
    a hit can match only through its neighbourhood — the head of the
    text is returned unmarked.
    """
    terms = tuple(dict.fromkeys(t.lower() for t in terms if t))
    lowered = text.lower()
    occurrences: list[tuple[int, str]] = []
    for term in terms:
        start = lowered.find(term)
        while start != -1:
            occurrences.append((start, term))
            start = lowered.find(term, start + 1)
    if len(text) <= width:
        return _mark_terms(text, terms)
    if not occurrences:
        return text[: width - 1].rstrip() + "…"
    occurrences.sort()
    best_start, best_score = 0, (-1, -1)
    for index, (position, _) in enumerate(occurrences):
        window_end = position + width
        distinct: set[str] = set()
        count = 0
        for later, term in occurrences[index:]:
            if later >= window_end:
                break
            distinct.add(term)
            count += 1
        score = (len(distinct), count)
        if score > best_score:
            best_score = score
            best_start = position
    # Back the window up a little so the first match has left context.
    start = max(0, best_start - max(8, width // 8))
    end = min(len(text), start + width)
    snippet = _mark_terms(text[start:end].strip(), terms)
    prefix = "…" if start > 0 else ""
    suffix = "…" if end < len(text) else ""
    return f"{prefix}{snippet}{suffix}"


@dataclass(frozen=True)
class SearchHit:
    """One ranked search result: a query-biased slice of the case.

    ``snippet`` is the matching claim's biased summary; ``neighbourhood``
    renders its supporting children (``SUPPORTED_BY`` targets via the
    adjacency indices), terms-first.  ``store`` names the corpus store
    the hit came from (``None`` for single-subject searches).
    """

    identifier: str
    score: float
    node_type: str
    snippet: str
    matched_terms: "tuple[str, ...]"
    neighbourhood: "tuple[str, ...]" = ()
    store: "str | None" = None

    @property
    def summary(self) -> str:
        """The rendered slice: claim line plus supporting neighbourhood."""
        where = f"{self.store}:" if self.store else ""
        lines = [
            f"{where}{self.identifier} ({self.node_type}) {self.snippet}"
        ]
        lines.extend(f"  └─ {line}" for line in self.neighbourhood)
        return "\n".join(lines)


# -- subject adapters -------------------------------------------------------


@dataclass
class _Lookup:
    """The narrow search surface over one subject (live or stored)."""

    doc_count: int
    token_ids: Callable[[str], "frozenset[str] | set[str]"]
    substring_ids: Callable[[str], "set[str]"]
    node: Callable[[str], Node]
    supporters: Callable[[str], "list[Node]"]
    sort_key: Callable[[str], Any]
    index: Any = field(default=None)


class _ScanIndex:
    """Ephemeral postings for a stored argument with no sidecar.

    One verified streaming pass builds token postings and a text cache;
    search stays correct (and still one-pass) on unindexed stores — it
    just pays the scan the sidecar exists to avoid.
    """

    def __init__(self, nodes: Iterable[Node]) -> None:
        self.tokens: dict[str, set[str]] = {}
        self.lowered: dict[str, str] = {}
        self.order: dict[str, int] = {}
        for position, node in enumerate(nodes):
            identifier = node.identifier
            self.order[identifier] = position
            self.lowered[identifier] = node.text.lower()
            for token in set(tokenize(node.text)):
                self.tokens.setdefault(token, set()).add(identifier)

    def substring_ids(self, term: str) -> "set[str]":
        return {
            identifier
            for identifier, text in self.lowered.items()
            if term in text
        }


def _live_lookup(argument: Argument) -> _Lookup:
    from .query import argument_index  # deferred: query imports us

    index = argument_index(argument)
    postings = index.text_postings()
    return _Lookup(
        doc_count=len(index.order),
        token_ids=lambda term: postings.tokens.get(term, frozenset()),
        substring_ids=index.contains_candidates,
        node=argument.node,
        supporters=argument.supporters,
        sort_key=index.order.__getitem__,
    )


def _stored_supporters(stored: Any) -> Callable[[str], "list[Node]"]:
    def supporters(identifier: str) -> "list[Node]":
        out = sorted(stored._outgoing(identifier))
        return [
            stored.node(link.target)
            for _, link in out
            if link.kind is LinkKind.SUPPORTED_BY
        ]

    return supporters


def _stored_lookup(stored: Any) -> _Lookup:
    from ..store.search import load_search_index  # deferred: store imports core

    index = load_search_index(stored)
    if index is not None:
        return _Lookup(
            doc_count=index.doc_count,
            token_ids=lambda term: index.tokens.get(term, frozenset()),
            substring_ids=lambda term: index.contains_candidates(term)
            or set(),
            node=stored.node,
            supporters=_stored_supporters(stored),
            sort_key=lambda identifier: stored._node_entry(identifier)[0],
            index=index,
        )
    scan = _ScanIndex(stored.iter_nodes())
    return _Lookup(
        doc_count=len(scan.order),
        token_ids=lambda term: scan.tokens.get(term, frozenset()),
        substring_ids=scan.substring_ids,
        node=stored.node,
        supporters=_stored_supporters(stored),
        sort_key=scan.order.__getitem__,
    )


def _lookup(subject: Any) -> _Lookup:
    from .analysis import is_stored_argument

    if isinstance(subject, Argument):
        return _live_lookup(subject)
    if is_stored_argument(subject):
        return _stored_lookup(subject)
    raise TypeError(
        "search() wants an Argument, a StoredArgument, or a corpus with "
        f"search_sources(), got {type(subject).__name__}"
    )


# -- ranking ----------------------------------------------------------------

#: Weight discount for substring (trigram-candidate) matches of a term
#: that matched no whole token — present, but weaker evidence than an
#: exact token hit.
_SUBSTRING_DISCOUNT = 0.5


def _rank_subject(
    store: "str | None",
    subject: Any,
    terms: "tuple[str, ...]",
    neighbourhood: int,
) -> "list[SearchHit]":
    lookup = _lookup(subject)
    if not lookup.doc_count:
        return []
    scores: dict[str, float] = {}
    matched: dict[str, set[str]] = {}
    term_weight: dict[str, float] = {}
    substring_terms: set[str] = set()
    for term in terms:
        ids = lookup.token_ids(term)
        weight = 1.0
        if not ids and len(term) >= 3:
            # No whole-token hit: fall back to trigram substring
            # candidates (already verified by the lookup) at a discount.
            ids = lookup.substring_ids(term)
            weight = _SUBSTRING_DISCOUNT
            substring_terms.add(term)
        if not ids:
            continue
        idf = math.log1p(lookup.doc_count / (1 + len(ids)))
        term_weight[term] = weight * idf
        for identifier in ids:
            matched.setdefault(identifier, set()).add(term)
    for identifier, hit_terms in matched.items():
        node = lookup.node(identifier)
        tokens = tokenize(node.text)
        lowered = node.text.lower()
        score = 0.0
        for term in hit_terms:
            occurrences = (
                lowered.count(term)
                if term in substring_terms
                else tokens.count(term)
            )
            score += term_weight[term] * (1.0 + math.log1p(occurrences))
        scores[identifier] = score
    hits: "list[SearchHit]" = []
    for identifier, score in scores.items():
        node = lookup.node(identifier)
        hit_terms = tuple(sorted(matched[identifier]))
        rendered: "list[str]" = []
        if neighbourhood > 0:
            children = lookup.supporters(identifier)
            # Terms-first: supporting children that mention a query term
            # make the summary answer the query, not just decorate it.
            children.sort(
                key=lambda child: not any(
                    term in child.text.lower() for term in terms
                )
            )
            for child in children[:neighbourhood]:
                child_snippet = query_biased_summary(
                    child.text, terms, width=72
                )
                rendered.append(f"{child.identifier}: {child_snippet}")
        hits.append(
            SearchHit(
                identifier=identifier,
                score=round(score, 6),
                node_type=node.node_type.value,
                snippet=query_biased_summary(node.text, hit_terms),
                matched_terms=hit_terms,
                neighbourhood=tuple(rendered),
                store=store,
            )
        )
    hits.sort(
        key=lambda hit: (-hit.score, hit.store or "", hit.identifier)
    )
    return hits


def search(
    subject: Any,
    query_text: str,
    *,
    limit: int = 10,
    neighbourhood: int = 2,
) -> "list[SearchHit]":
    """Ranked, query-biased search over an argument, store, or corpus.

    ``subject`` is a live :class:`~repro.core.argument.Argument`, a
    :class:`~repro.store.StoredArgument` (the persisted sidecar resolves
    candidates when present; a streaming scan otherwise), or any corpus
    object exposing ``search_sources() -> Iterable[(name, subject)]``
    (:class:`~repro.store.search.CaseCorpus`).  Hits are ranked by a
    tf–idf-shaped score (idf per store for corpora) and rendered as
    query-biased summaries — the claim's densest-matching snippet plus
    up to ``neighbourhood`` supporting children.
    """
    terms = tuple(dict.fromkeys(tokenize(query_text)))
    if not terms or limit < 1:
        return []
    sources = getattr(subject, "search_sources", None)
    if sources is not None:
        pairs: "list[tuple[str | None, Any]]" = list(sources())
    else:
        pairs = [(None, subject)]
    hits: "list[SearchHit]" = []
    for store, source in pairs:
        hits.extend(_rank_subject(store, source, terms, neighbourhood))
    hits.sort(
        key=lambda hit: (-hit.score, hit.store or "", hit.identifier)
    )
    return hits[:limit]
