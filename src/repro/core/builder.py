"""A fluent builder for assurance arguments.

Constructing GSN graphs node-by-node is verbose; the builder auto-numbers
identifiers with the conventional prefixes (G1, S1, Sn1, C1, A1, J1) and
keeps track of the 'current' parent so arguments read top-down, the way a
safety engineer sketches them::

    builder = ArgumentBuilder("acme-brake")
    top = builder.goal("The braking system is acceptably safe")
    builder.context("Operating context: urban light rail", under=top)
    strategy = builder.strategy("Argument over all identified hazards",
                                under=top)
    h1 = builder.goal("Hazard H1 (overrun) is acceptably managed",
                      under=strategy)
    builder.solution("Overrun fault tree analysis", under=h1)
    argument = builder.build()

``build`` checks well-formedness by default, so builder output is valid by
construction — the property the §VI.D experiment leans on.
"""

from __future__ import annotations

from typing import Iterable

from .argument import Argument, LinkKind
from .nodes import DEFAULT_PREFIXES, Node, NodeType
from .wellformed import GSN_STANDARD_RULES, RuleSet, Violation

__all__ = ["ArgumentBuilder", "BuildError"]


class BuildError(ValueError):
    """Raised when ``build`` finds the argument ill-formed."""

    def __init__(self, violations: list[Violation]) -> None:
        summary = "; ".join(str(v) for v in violations[:5])
        if len(violations) > 5:
            summary += f"; ... ({len(violations)} total)"
        super().__init__(f"argument is not well-formed: {summary}")
        self.violations = violations


class ArgumentBuilder:
    """Incremental construction with automatic identifiers."""

    def __init__(self, name: str = "argument") -> None:
        self._argument = Argument(name=name)
        self._counters: dict[NodeType, int] = {t: 0 for t in NodeType}

    def _next_identifier(self, node_type: NodeType) -> str:
        self._counters[node_type] += 1
        return f"{DEFAULT_PREFIXES[node_type]}{self._counters[node_type]}"

    def _add(
        self,
        node_type: NodeType,
        text: str,
        under: str | None,
        link: LinkKind,
        identifier: str | None = None,
        undeveloped: bool = False,
        module: str | None = None,
    ) -> str:
        node_id = identifier or self._next_identifier(node_type)
        # Node + attaching link are one logical mutation (one version
        # bump), so derived indices refresh once per builder call.
        with self._argument.batch():
            self._argument.add_node(Node(
                identifier=node_id,
                node_type=node_type,
                text=text,
                undeveloped=undeveloped,
                module=module,
            ))
            if under is not None:
                self._argument.add_link(under, node_id, link)
        return node_id

    def goal(
        self,
        text: str,
        under: str | None = None,
        identifier: str | None = None,
        undeveloped: bool = False,
    ) -> str:
        """Add a goal, optionally supported by ``under``; returns its id."""
        return self._add(
            NodeType.GOAL, text, under, LinkKind.SUPPORTED_BY,
            identifier, undeveloped,
        )

    def strategy(
        self,
        text: str,
        under: str,
        identifier: str | None = None,
        undeveloped: bool = False,
    ) -> str:
        """Add a strategy under a goal."""
        return self._add(
            NodeType.STRATEGY, text, under, LinkKind.SUPPORTED_BY,
            identifier, undeveloped,
        )

    def solution(
        self, text: str, under: str, identifier: str | None = None
    ) -> str:
        """Add a solution (evidence citation) under a goal or strategy."""
        return self._add(
            NodeType.SOLUTION, text, under, LinkKind.SUPPORTED_BY, identifier
        )

    def context(
        self, text: str, under: str, identifier: str | None = None
    ) -> str:
        """Attach context to a goal or strategy."""
        return self._add(
            NodeType.CONTEXT, text, under, LinkKind.IN_CONTEXT_OF, identifier
        )

    def assumption(
        self, text: str, under: str, identifier: str | None = None
    ) -> str:
        """Attach an assumption."""
        return self._add(
            NodeType.ASSUMPTION, text, under, LinkKind.IN_CONTEXT_OF,
            identifier,
        )

    def justification(
        self, text: str, under: str, identifier: str | None = None
    ) -> str:
        """Attach a justification."""
        return self._add(
            NodeType.JUSTIFICATION, text, under, LinkKind.IN_CONTEXT_OF,
            identifier,
        )

    def away_goal(
        self,
        text: str,
        module: str,
        under: str,
        identifier: str | None = None,
    ) -> str:
        """Reference a goal argued in another module."""
        return self._add(
            NodeType.AWAY_GOAL, text, under, LinkKind.SUPPORTED_BY,
            identifier, module=module,
        )

    def support(self, parent: str, child: str) -> None:
        """Add an extra SupportedBy link between existing nodes."""
        self._argument.supported_by(parent, child)

    def bulk(self):
        """Batch many builder calls into one version bump.

        Delegates to :meth:`Argument.batch`; use when generating large
        arguments programmatically::

            with builder.bulk():
                for hazard in hazards:
                    goal = builder.goal(..., under=strategy)
                    builder.solution(..., under=goal)
        """
        return self._argument.batch()

    @property
    def argument(self) -> Argument:
        """The argument under construction (live reference)."""
        return self._argument

    def build(
        self,
        check: bool = True,
        rules: RuleSet = GSN_STANDARD_RULES,
    ) -> Argument:
        """Finish; by default verify well-formedness and raise on failure."""
        if check:
            violations = rules.check(self._argument)
            if violations:
                raise BuildError(violations)
        return self._argument
