"""Structured queries over annotated arguments — with an indexed planner.

Denney, Naylor & Pai claim that semantic enrichment 'enables rich
querying', e.g. generating 'a view ... of traceability to only those
hazards whose likelihood of occurrence is remote, and whose severity is
catastrophic' (§III.H).  This module provides that capability:

* :class:`Query` — a composable predicate language over node type, text,
  and metadata attributes (equality, comparison, membership);
* :class:`ArgumentIndex` — the query planner's per-argument indices:
  attribute name, attribute value, attribute parameter, node type, and
  lowered text.  Built lazily, cached on the argument via
  :meth:`Argument.cached`, and invalidated automatically on mutation;
* :func:`select` — evaluate a query over an argument.  Queries built from
  the factory helpers carry *candidate plans*: ``select`` intersects or
  unions candidate identifier sets from the indices and only runs the
  predicate over that candidate set, instead of scanning every node per
  predicate.  Hand-rolled queries (no plan) fall back to the full scan;
* :func:`traceability_view` — the paper's example: the sub-argument
  spanning every node matching a query, plus the paths connecting the
  matches to the root (a 'view' in their sense).  Path membership is
  computed by reverse reachability (O(V + E)), not path enumeration, and
  contextual attachments are retained *transitively*;
* :func:`text_search` — plain substring search, the baseline the paper
  says the authors never compared against ('the claim that the benefits
  of rich querying over simple text search outweigh the costs' is neither
  made nor supported).

The §VI-style query benchmarks compare structured queries against text
search on precision/recall over seeded argument corpora.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from .argument import Argument, LinkKind
from .nodes import Node, NodeType

__all__ = [
    "Query",
    "ArgumentIndex",
    "argument_index",
    "attribute_equals",
    "attribute_param",
    "has_attribute",
    "node_type_is",
    "text_contains",
    "select",
    "text_search",
    "traceability_view",
]


class ArgumentIndex:
    """Query-planner indices over one argument version.

    Built in a single O(V) pass; rebuilt lazily after any mutation (the
    argument's cache is cleared on mutation, so :func:`argument_index`
    simply asks for a fresh build).
    """

    def __init__(self, argument: Argument) -> None:
        self.order: dict[str, int] = {}
        self.by_attribute: dict[str, set[str]] = {}
        self.by_attribute_value: dict[tuple[str, tuple[Any, ...]], set[str]] = {}
        self.by_param: dict[tuple[str, int, Any], set[str]] = {}
        self.by_type: dict[NodeType, set[str]] = {}
        self.lowered_text: dict[str, str] = {}
        for position, node in enumerate(argument.nodes):
            identifier = node.identifier
            self.order[identifier] = position
            self.by_type.setdefault(node.node_type, set()).add(identifier)
            self.lowered_text[identifier] = node.text.lower()
            for name, params in node.metadata:
                self.by_attribute.setdefault(name, set()).add(identifier)
                try:
                    self.by_attribute_value.setdefault(
                        (name, params), set()
                    ).add(identifier)
                except TypeError:  # unhashable parameter payloads
                    pass
                for index, value in enumerate(params):
                    try:
                        self.by_param.setdefault(
                            (name, index, value), set()
                        ).add(identifier)
                    except TypeError:
                        pass


def argument_index(argument: Argument) -> ArgumentIndex:
    """The (cached) planner index for an argument's current version."""
    return argument.cached(
        "query-index", lambda: ArgumentIndex(argument)
    )


#: A plan maps the index to a candidate identifier set, or None when the
#: query cannot be narrowed and every node must be considered.
Plan = Callable[[ArgumentIndex], "set[str] | None"]


@dataclass(frozen=True)
class Query:
    """A composable node predicate.

    Combine with ``&``, ``|``, and ``~`` (and/or/not), e.g.::

        hazards = has_attribute("hazard")
        worst = attribute_param("hazard", 1, "remote") \
              & attribute_param("hazard", 2, "catastrophic")

    ``plan`` is the optional planner hook: given an :class:`ArgumentIndex`
    it returns the candidate identifiers that *might* match (a superset of
    the true matches), or ``None`` when no index applies.  The predicate
    always has the final word, so a plan can only speed evaluation up,
    never change the result.
    """

    description: str
    predicate: Callable[[Node], bool]
    plan: Plan | None = None

    def __call__(self, node: Node) -> bool:
        return self.predicate(node)

    def candidates(self, index: ArgumentIndex) -> set[str] | None:
        """Candidate identifiers from the planner, or None for full scan."""
        if self.plan is None:
            return None
        return self.plan(index)

    def __and__(self, other: "Query") -> "Query":
        def plan(index: ArgumentIndex) -> set[str] | None:
            left = self.candidates(index)
            right = other.candidates(index)
            if left is None:
                return right
            if right is None:
                return left
            return left & right

        return Query(
            f"({self.description} and {other.description})",
            lambda node: self(node) and other(node),
            plan,
        )

    def __or__(self, other: "Query") -> "Query":
        def plan(index: ArgumentIndex) -> set[str] | None:
            left = self.candidates(index)
            right = other.candidates(index)
            if left is None or right is None:
                return None
            return left | right

        return Query(
            f"({self.description} or {other.description})",
            lambda node: self(node) or other(node),
            plan,
        )

    def __invert__(self) -> "Query":
        return Query(
            f"not {self.description}",
            lambda node: not self(node),
        )


def has_attribute(name: str) -> Query:
    """Nodes carrying the named metadata attribute."""
    return Query(
        f"has {name}",
        lambda node: name in node.metadata_dict(),
        lambda index: index.by_attribute.get(name, set()),
    )


def attribute_equals(name: str, params: tuple[Any, ...]) -> Query:
    """Nodes whose attribute has exactly these parameters."""
    def plan(index: ArgumentIndex) -> set[str] | None:
        try:
            return index.by_attribute_value.get((name, params), set())
        except TypeError:  # unhashable params: fall back to scanning
            return None

    return Query(
        f"{name} == {params!r}",
        lambda node: node.metadata_dict().get(name) == params,
        plan,
    )


def attribute_param(name: str, index: int, value: Any) -> Query:
    """Nodes whose attribute's ``index``-th parameter equals ``value``."""

    def predicate(node: Node) -> bool:
        params = node.metadata_dict().get(name)
        return (
            params is not None
            and 0 <= index < len(params)
            and params[index] == value
        )

    def plan(arg_index: ArgumentIndex) -> set[str] | None:
        try:
            return arg_index.by_param.get((name, index, value), set())
        except TypeError:
            return None

    return Query(f"{name}[{index}] == {value!r}", predicate, plan)


def node_type_is(node_type: NodeType) -> Query:
    """Nodes of one GSN kind."""
    return Query(
        f"type == {node_type.value}",
        lambda node: node.node_type is node_type,
        lambda index: index.by_type.get(node_type, set()),
    )


def text_contains(needle: str, case_sensitive: bool = False) -> Query:
    """Plain substring match on node text."""
    if case_sensitive:
        return Query(
            f"text contains {needle!r}",
            lambda node: needle in node.text,
        )
    lowered = needle.lower()
    return Query(
        f"text icontains {needle!r}",
        lambda node: lowered in node.text.lower(),
        lambda index: {
            identifier
            for identifier, text in index.lowered_text.items()
            if lowered in text
        },
    )


def select(argument: Argument, query: Query) -> list[Node]:
    """All nodes matching the query, in insertion order.

    Planned queries evaluate the predicate only over the index-derived
    candidate set; unplanned queries scan every node, exactly as before.
    """
    if query.plan is None:
        # No plan means a full scan regardless; skip building the index.
        return [node for node in argument.nodes if query(node)]
    index = argument_index(argument)
    candidates = query.candidates(index)
    if candidates is None:
        return [node for node in argument.nodes if query(node)]
    ordered = sorted(candidates, key=index.order.__getitem__)
    return [
        node
        for node in (argument.node(identifier) for identifier in ordered)
        if query(node)
    ]


def text_search(argument: Argument, needle: str) -> list[Node]:
    """The simple-text-search baseline the paper contrasts with querying."""
    return select(argument, text_contains(needle))


def traceability_view(argument: Argument, query: Query) -> Argument:
    """The Denney–Naylor–Pai 'view': matches plus their paths to the root.

    Returns a new argument containing every matching node, every node on a
    SupportedBy path between a match and a root, and the links among the
    retained nodes.  Contextual neighbours of retained nodes are kept
    transitively (context attached to retained context is retained too) so
    the view stays interpretable.

    Path membership is the union of the matches' SupportedBy ancestors,
    computed by a single multi-source reverse reachability pass — O(V + E)
    total however many nodes match — rather than an enumeration of paths,
    which is exponential on dense DAGs.
    """
    matches = {node.identifier for node in select(argument, query)}
    keep: set[str] = set(matches)
    frontier = list(matches)
    while frontier:
        identifier = frontier.pop()
        for parent in argument.parents(
            identifier, LinkKind.SUPPORTED_BY
        ):
            if parent.identifier not in keep:
                keep.add(parent.identifier)
                frontier.append(parent.identifier)
    # Retain context attached to kept nodes, transitively (a single pass
    # over the link list dropped context-of-context).
    frontier = list(keep)
    while frontier:
        identifier = frontier.pop()
        for context in argument.context_of(identifier):
            if context.identifier not in keep:
                keep.add(context.identifier)
                frontier.append(context.identifier)
    view = Argument(name=f"{argument.name}?{query.description}")
    for node in argument.nodes:
        if node.identifier in keep:
            view.add_node(node)
    for link in argument.links:
        if link.source in keep and link.target in keep:
            view.add_link(link.source, link.target, link.kind)
    return view
