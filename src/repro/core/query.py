"""Structured queries over annotated arguments.

Denney, Naylor & Pai claim that semantic enrichment 'enables rich
querying', e.g. generating 'a view ... of traceability to only those
hazards whose likelihood of occurrence is remote, and whose severity is
catastrophic' (§III.H).  This module provides that capability:

* :class:`Query` — a composable predicate language over node type, text,
  and metadata attributes (equality, comparison, membership);
* :func:`select` — evaluate a query over an argument;
* :func:`traceability_view` — the paper's example: the sub-argument
  spanning every node matching a query, plus the paths connecting the
  matches to the root (a 'view' in their sense);
* :func:`text_search` — plain substring search, the baseline the paper
  says the authors never compared against ('the claim that the benefits
  of rich querying over simple text search outweigh the costs' is neither
  made nor supported).

The §VI-style query benchmarks compare structured queries against text
search on precision/recall over seeded argument corpora.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from .argument import Argument, LinkKind
from .nodes import Node, NodeType

__all__ = [
    "Query",
    "attribute_equals",
    "attribute_param",
    "has_attribute",
    "node_type_is",
    "text_contains",
    "select",
    "text_search",
    "traceability_view",
]


@dataclass(frozen=True)
class Query:
    """A composable node predicate.

    Combine with ``&``, ``|``, and ``~`` (and/or/not), e.g.::

        hazards = has_attribute("hazard")
        worst = attribute_param("hazard", 1, "remote") \
              & attribute_param("hazard", 2, "catastrophic")
    """

    description: str
    predicate: Callable[[Node], bool]

    def __call__(self, node: Node) -> bool:
        return self.predicate(node)

    def __and__(self, other: "Query") -> "Query":
        return Query(
            f"({self.description} and {other.description})",
            lambda node: self(node) and other(node),
        )

    def __or__(self, other: "Query") -> "Query":
        return Query(
            f"({self.description} or {other.description})",
            lambda node: self(node) or other(node),
        )

    def __invert__(self) -> "Query":
        return Query(
            f"not {self.description}",
            lambda node: not self(node),
        )


def has_attribute(name: str) -> Query:
    """Nodes carrying the named metadata attribute."""
    return Query(
        f"has {name}",
        lambda node: name in node.metadata_dict(),
    )


def attribute_equals(name: str, params: tuple[Any, ...]) -> Query:
    """Nodes whose attribute has exactly these parameters."""
    return Query(
        f"{name} == {params!r}",
        lambda node: node.metadata_dict().get(name) == params,
    )


def attribute_param(name: str, index: int, value: Any) -> Query:
    """Nodes whose attribute's ``index``-th parameter equals ``value``."""

    def predicate(node: Node) -> bool:
        params = node.metadata_dict().get(name)
        return (
            params is not None
            and 0 <= index < len(params)
            and params[index] == value
        )

    return Query(f"{name}[{index}] == {value!r}", predicate)


def node_type_is(node_type: NodeType) -> Query:
    """Nodes of one GSN kind."""
    return Query(
        f"type == {node_type.value}",
        lambda node: node.node_type is node_type,
    )


def text_contains(needle: str, case_sensitive: bool = False) -> Query:
    """Plain substring match on node text."""
    if case_sensitive:
        return Query(
            f"text contains {needle!r}",
            lambda node: needle in node.text,
        )
    lowered = needle.lower()
    return Query(
        f"text icontains {needle!r}",
        lambda node: lowered in node.text.lower(),
    )


def select(argument: Argument, query: Query) -> list[Node]:
    """All nodes matching the query, in insertion order."""
    return [node for node in argument.nodes if query(node)]


def text_search(argument: Argument, needle: str) -> list[Node]:
    """The simple-text-search baseline the paper contrasts with querying."""
    return select(argument, text_contains(needle))


def traceability_view(argument: Argument, query: Query) -> Argument:
    """The Denney–Naylor–Pai 'view': matches plus their paths to the root.

    Returns a new argument containing every matching node, every node on a
    SupportedBy path between a match and a root, and the links among the
    retained nodes.  Contextual neighbours of retained nodes are kept so
    the view stays interpretable.
    """
    matches = {node.identifier for node in select(argument, query)}
    keep: set[str] = set(matches)
    for identifier in matches:
        for path in argument.paths_to_root(identifier):
            keep.update(path)
    # Retain context attached to kept nodes.
    for link in argument.links:
        if link.kind is LinkKind.IN_CONTEXT_OF and link.source in keep:
            keep.add(link.target)
    view = Argument(name=f"{argument.name}?{query.description}")
    for node in argument.nodes:
        if node.identifier in keep:
            view.add_node(node)
    for link in argument.links:
        if link.source in keep and link.target in keep:
            view.add_link(link.source, link.target, link.kind)
    return view
