"""Structured queries over annotated arguments — with an indexed planner.

Denney, Naylor & Pai claim that semantic enrichment 'enables rich
querying', e.g. generating 'a view ... of traceability to only those
hazards whose likelihood of occurrence is remote, and whose severity is
catastrophic' (§III.H).  This module provides that capability:

* :class:`Query` — a composable predicate language over node type, text,
  and metadata attributes (equality, comparison, membership);
* :class:`ArgumentIndex` — the query planner's per-argument indices:
  attribute name, attribute value, attribute parameter, node type, and
  lowered text.  Built lazily and maintained *incrementally*: the index
  remembers the argument's mutation sequence number it reflects, and on
  the next query after a mutation it asks the argument for the
  :class:`~repro.core.argument.MutationDelta` since then and patches its
  maps in place (node adds, removals, and replacements are all O(change);
  link mutations don't touch the index at all).  It falls back to a full
  O(V) rebuild only when the bounded mutation log has rotated past its
  sequence number or the delta is so large that replaying it would cost
  more than rebuilding;
* :func:`select` — evaluate a query over an argument.  Queries built from
  the factory helpers carry *candidate plans*: ``select`` intersects or
  unions candidate identifier sets from the indices and only runs the
  predicate over that candidate set, instead of scanning every node per
  predicate.  Hand-rolled queries (no plan) fall back to the full scan;
* :func:`traceability_view` — the paper's example: the sub-argument
  spanning every node matching a query, plus the paths connecting the
  matches to the root (a 'view' in their sense).  Path membership is
  computed by reverse reachability (O(V + E)), not path enumeration, and
  contextual attachments are retained *transitively*;
* :func:`text_search` — plain substring search, the baseline the paper
  says the authors never compared against ('the claim that the benefits
  of rich querying over simple text search outweigh the costs' is neither
  made nor supported).

The §VI-style query benchmarks compare structured queries against text
search on precision/recall over seeded argument corpora.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from .analysis import is_stored_argument, iter_subject_nodes
from .argument import Argument, LinkKind, MutationDelta
from .nodes import Node, NodeType
from .search import tokenize, trigrams

__all__ = [
    "Query",
    "ArgumentIndex",
    "argument_index",
    "attribute_equals",
    "attribute_param",
    "has_attribute",
    "node_type_is",
    "text_contains",
    "select",
    "text_search",
    "traceability_view",
]


class _TextPostings:
    """Token + trigram inverted postings over lowered node text.

    The in-memory twin of the persisted store sidecar
    (:mod:`repro.store.search`): both are built by the one canonical
    tokenizer in :mod:`repro.core.search`, so a planner answer and a
    sidecar answer for the same argument state are identical.
    """

    __slots__ = ("tokens", "grams")

    def __init__(self) -> None:
        self.tokens: dict[str, set[str]] = {}
        self.grams: dict[str, set[str]] = {}

    def index(self, identifier: str, lowered: str) -> None:
        for token in set(tokenize(lowered)):
            self.tokens.setdefault(token, set()).add(identifier)
        for gram in trigrams(lowered):
            self.grams.setdefault(gram, set()).add(identifier)

    def unindex(self, identifier: str, lowered: str) -> None:
        for token in set(tokenize(lowered)):
            ArgumentIndex._discard(self.tokens, token, identifier)
        for gram in trigrams(lowered):
            ArgumentIndex._discard(self.grams, gram, identifier)


class ArgumentIndex:
    """Query-planner indices over one argument state.

    Built in a single O(V) pass; after that, kept current by replaying
    mutation deltas (:meth:`apply`) instead of rebuilding.  ``seq`` is
    the argument :attr:`~repro.core.argument.Argument.mutation_seq` the
    index reflects.  ``order`` values are monotonic insertion ranks, not
    contiguous positions — removals leave gaps, appends keep growing —
    so they stay valid sort keys without renumbering.
    """

    def __init__(self, argument: Argument) -> None:
        self.seq = argument.mutation_seq
        self.order: dict[str, int] = {}
        self.by_attribute: dict[str, set[str]] = {}
        self.by_attribute_value: dict[tuple[str, tuple[Any, ...]], set[str]] = {}
        self.by_param: dict[tuple[str, int, Any], set[str]] = {}
        self.by_type: dict[NodeType, set[str]] = {}
        self.lowered_text: dict[str, str] = {}
        self._text: _TextPostings | None = None
        self._next_order = 0
        for node in argument.nodes:
            self._index_node(node, self._next_order)
            self._next_order += 1

    def _index_node(self, node: Node, position: int) -> None:
        identifier = node.identifier
        self.order[identifier] = position
        self.by_type.setdefault(node.node_type, set()).add(identifier)
        lowered = node.text.lower()
        self.lowered_text[identifier] = lowered
        if self._text is not None:
            self._text.index(identifier, lowered)
        # Index metadata_dict(), not the raw pairs: the query predicates
        # read metadata_dict(), where a duplicated attribute name keeps
        # only its last entry — an exact plan must agree with them.
        for name, params in node.metadata_dict().items():
            self.by_attribute.setdefault(name, set()).add(identifier)
            try:
                self.by_attribute_value.setdefault(
                    (name, params), set()
                ).add(identifier)
            except TypeError:  # unhashable parameter payloads
                pass
            for index, value in enumerate(params):
                try:
                    self.by_param.setdefault(
                        (name, index, value), set()
                    ).add(identifier)
                except TypeError:
                    pass

    def _unindex_node(self, node: Node) -> None:
        """Exact inverse of :meth:`_index_node` (empty postings pruned)."""
        identifier = node.identifier
        del self.order[identifier]
        self._discard(self.by_type, node.node_type, identifier)
        if self._text is not None:
            self._text.unindex(identifier, self.lowered_text[identifier])
        del self.lowered_text[identifier]
        for name, params in node.metadata_dict().items():
            self._discard(self.by_attribute, name, identifier)
            try:
                self._discard(
                    self.by_attribute_value, (name, params), identifier
                )
            except TypeError:
                pass
            for index, value in enumerate(params):
                try:
                    self._discard(
                        self.by_param, (name, index, value), identifier
                    )
                except TypeError:
                    pass

    @staticmethod
    def _discard(postings: dict, key: Any, identifier: str) -> None:
        entries = postings.get(key)
        if entries is None:
            return
        entries.discard(identifier)
        if not entries:
            del postings[key]

    def apply(self, delta: MutationDelta) -> bool:
        """Patch the index in place; False declines (caller rebuilds).

        Replaying a delta longer than the indexed node set costs more
        than the O(V) rebuild it would avoid, so such deltas are
        declined.  Link mutations never touch these maps and are
        skipped.  The caller advances :attr:`seq` on success.
        """
        if len(delta) > max(32, 2 * len(self.order)):
            return False
        for op, payload in delta.records:
            if op == "add_node":
                self._index_node(payload, self._next_order)
                self._next_order += 1
            elif op == "remove_node":
                self._unindex_node(payload)
            elif op == "replace_node":
                old, new = payload
                position = self.order[old.identifier]
                self._unindex_node(old)
                self._index_node(new, position)
        return True

    def text_postings(self) -> _TextPostings:
        """Token + trigram postings, built lazily, then patched in step.

        Non-text workloads never pay for text postings: the maps are
        built on the first text-planned query and from then on
        maintained incrementally by :meth:`_index_node` /
        :meth:`_unindex_node` alongside the other indices.
        """
        if self._text is None:
            postings = _TextPostings()
            for identifier, lowered in self.lowered_text.items():
                postings.index(identifier, lowered)
            self._text = postings
        return self._text

    def contains_candidates(self, lowered: str) -> set[str]:
        """Exactly the nodes whose folded text contains ``lowered``.

        Trigram intersection narrows to a candidate superset, then each
        candidate is verified against its lowered text — the returned
        set is exact, so folded ``text_contains`` plans keep their
        ``exact=True`` contract.  Needles shorter than a trigram scan
        ``lowered_text`` directly (still O(V), but no false narrowing).
        """
        if len(lowered) < 3:
            return {
                identifier
                for identifier, text in self.lowered_text.items()
                if lowered in text
            }
        candidates = self.grams_superset(lowered)
        if candidates is None:
            return set()
        return {
            identifier
            for identifier in candidates
            if lowered in self.lowered_text[identifier]
        }

    def grams_superset(self, lowered: str) -> set[str] | None:
        """Unverified trigram candidates for a lowered needle.

        A guaranteed superset of every node whose text contains the
        needle under *either* case discipline (folding is monotonic:
        a case-sensitive occurrence survives lowering), so this is the
        planner hook for the case-sensitive branch — the predicate
        does the verification.  ``None`` means the needle is too short
        to narrow.
        """
        if len(lowered) < 3:
            return None
        postings = self.text_postings().grams
        candidates: set[str] | None = None
        for gram in trigrams(lowered):
            ids = postings.get(gram)
            if not ids:
                return set()
            candidates = set(ids) if candidates is None else candidates & ids
            if not candidates:
                return set()
        return set() if candidates is None else candidates


def argument_index(
    argument: Argument, *, rebuild: bool = False
) -> ArgumentIndex:
    """The planner index for an argument's current state.

    Stored on the argument's derived-structure slot (surviving cache
    invalidation) and patched forward from the mutation delta when
    stale; ``rebuild=True`` forces the full O(V) build — the
    per-mutation-invalidation behaviour the scale benchmark compares
    against.
    """
    if not rebuild:
        index = argument.get_derived("query-index")
        if index is not None:
            seq = argument.mutation_seq
            if index.seq == seq:
                return index
            delta = argument.delta_since(index.seq)
            if delta is not None and index.apply(delta):
                index.seq = seq
                return index
    index = ArgumentIndex(argument)
    argument.set_derived("query-index", index)
    return index


#: A plan maps the index to a candidate identifier set, or None when the
#: query cannot be narrowed and every node must be considered.
Plan = Callable[[ArgumentIndex], "set[str] | None"]


@dataclass(frozen=True)
class Query:
    """A composable node predicate.

    Combine with ``&``, ``|``, and ``~`` (and/or/not), e.g.::

        hazards = has_attribute("hazard")
        worst = attribute_param("hazard", 1, "remote") \
              & attribute_param("hazard", 2, "catastrophic")

    ``plan`` is the optional planner hook: given an :class:`ArgumentIndex`
    it returns the candidate identifiers that *might* match (a superset of
    the true matches), or ``None`` when no index applies.  The predicate
    always has the final word, so a plan can only speed evaluation up,
    never change the result.

    ``exact`` strengthens the plan contract: whenever the plan returns a
    non-``None`` set, that set is *exactly* the matches, so
    :func:`select` can skip re-running the predicate over the
    candidates.  Every factory helper below is exact (their plans read
    the answer straight off the index, returning ``None`` in the rare
    unindexable cases); ``&``/``|`` preserve exactness, ``~`` and
    hand-rolled queries drop it.
    """

    description: str
    predicate: Callable[[Node], bool]
    plan: Plan | None = None
    exact: bool = False

    def __call__(self, node: Node) -> bool:
        return self.predicate(node)

    def candidates(self, index: ArgumentIndex) -> set[str] | None:
        """Candidate identifiers from the planner, or None for full scan."""
        if self.plan is None:
            return None
        return self.plan(index)

    def __and__(self, other: "Query") -> "Query":
        exact = self.exact and other.exact

        def plan(index: ArgumentIndex) -> set[str] | None:
            left = self.candidates(index)
            right = other.candidates(index)
            if left is None:
                # An exact conjunction must not narrow one-sidedly: the
                # remaining set is a superset of the matches, so demand
                # the full scan instead of claiming exactness.
                return None if exact else right
            if right is None:
                return None if exact else left
            return left & right

        return Query(
            f"({self.description} and {other.description})",
            lambda node: self(node) and other(node),
            plan,
            exact,
        )

    def __or__(self, other: "Query") -> "Query":
        def plan(index: ArgumentIndex) -> set[str] | None:
            left = self.candidates(index)
            right = other.candidates(index)
            if left is None or right is None:
                return None
            return left | right

        return Query(
            f"({self.description} or {other.description})",
            lambda node: self(node) or other(node),
            plan,
            self.exact and other.exact,
        )

    def __invert__(self) -> "Query":
        return Query(
            f"not {self.description}",
            lambda node: not self(node),
        )


def has_attribute(name: str) -> Query:
    """Nodes carrying the named metadata attribute."""
    return Query(
        f"has {name}",
        lambda node: name in node.metadata_dict(),
        lambda index: index.by_attribute.get(name, set()),
        exact=True,
    )


def attribute_equals(name: str, params: tuple[Any, ...]) -> Query:
    """Nodes whose attribute has exactly these parameters."""
    def plan(index: ArgumentIndex) -> set[str] | None:
        try:
            return index.by_attribute_value.get((name, params), set())
        except TypeError:  # unhashable params: fall back to scanning
            return None

    return Query(
        f"{name} == {params!r}",
        lambda node: node.metadata_dict().get(name) == params,
        plan,
        exact=True,
    )


def attribute_param(name: str, index: int, value: Any) -> Query:
    """Nodes whose attribute's ``index``-th parameter equals ``value``."""

    def predicate(node: Node) -> bool:
        params = node.metadata_dict().get(name)
        return (
            params is not None
            and 0 <= index < len(params)
            and params[index] == value
        )

    def plan(arg_index: ArgumentIndex) -> set[str] | None:
        try:
            return arg_index.by_param.get((name, index, value), set())
        except TypeError:
            return None

    return Query(
        f"{name}[{index}] == {value!r}", predicate, plan, exact=True
    )


def node_type_is(node_type: NodeType) -> Query:
    """Nodes of one GSN kind."""
    return Query(
        f"type == {node_type.value}",
        lambda node: node.node_type is node_type,
        lambda index: index.by_type.get(node_type, set()),
        exact=True,
    )


def text_contains(needle: str, case_sensitive: bool = False) -> Query:
    """Plain substring match on node text.

    Both branches are planned.  The folded branch resolves *exact*
    candidates from the trigram postings (verified against the lowered
    text, so the predicate is skipped).  The sensitive branch narrows
    through the same lowered postings — folding is monotonic, so the
    lowered-needle candidates are a superset of the case-sensitive
    matches — and leaves the predicate to arbitrate case, hence
    ``exact=False``.
    """
    lowered = needle.lower()
    if case_sensitive:
        return Query(
            f"text contains {needle!r}",
            lambda node: needle in node.text,
            lambda index: index.grams_superset(lowered),
        )
    return Query(
        f"text icontains {needle!r}",
        lambda node: lowered in node.text.lower(),
        lambda index: index.contains_candidates(lowered),
        exact=True,
    )


def select(argument: Argument, query: Query) -> list[Node]:
    """All nodes matching the query, in insertion order.

    Planned queries evaluate the predicate only over the index-derived
    candidate set — and *exact* plans (see :class:`Query`) skip the
    predicate entirely, reading the answer straight off the index;
    unplanned queries scan every node, exactly as before.

    Also accepts a :class:`repro.store.StoredArgument`: the predicate
    streams over the store's node shards (checksum-verified, merged back
    into insertion order) without hydrating the argument, so querying a
    case bigger than memory stays O(matches) in space.  Detection uses
    the shared duck-typed helpers in :mod:`repro.core.analysis` so this
    module never imports :mod:`repro.store`, which imports it
    transitively.
    """
    if not isinstance(argument, Argument):
        if query.plan is not None and is_stored_argument(argument):
            planned = _select_stored(argument, query)
            if planned is not None:
                return planned
        # iter_subject_nodes raises the canonical TypeError for
        # non-argument subjects (e.g. an AssuranceCase).
        return [node for node in iter_subject_nodes(argument) if query(node)]
    if query.plan is None:
        # No plan means a full scan regardless; skip building the index.
        return [node for node in argument.nodes if query(node)]
    index = argument_index(argument)
    candidates = query.candidates(index)
    if candidates is None:
        return [node for node in argument.nodes if query(node)]
    ordered = sorted(candidates, key=index.order.__getitem__)
    if query.exact:
        return [argument.node(identifier) for identifier in ordered]
    return [
        node
        for node in (argument.node(identifier) for identifier in ordered)
        if query(node)
    ]


def _select_stored(stored: Any, query: Query) -> list[Node] | None:
    """Resolve a planned query through a store's persisted search index.

    Returns ``None`` whenever the streaming scan must run instead: no
    (current) sidecar, a plan needing live-index capabilities the
    sidecar lacks (attribute/type postings — those plans raise
    ``AttributeError`` against the narrower index object), or a plan
    that itself declines.  The sidecar only ever *narrows*; the
    predicate still arbitrates non-exact plans, so a fallback can never
    change the result, only its cost.
    """
    from ..store.search import load_search_index

    index = load_search_index(stored)
    if index is None:
        return None
    try:
        candidates = query.candidates(index)
    except AttributeError:
        return None
    if candidates is None:
        return None
    entries = []
    for identifier in candidates:
        try:
            entries.append(stored._node_entry(identifier))
        except KeyError:
            return None  # index out of step with the store: scan instead
    entries.sort(key=lambda entry: entry[0])
    if query.exact:
        return [node for _, node in entries]
    return [node for _, node in entries if query(node)]


def text_search(argument: Argument, needle: str) -> list[Node]:
    """The simple-text-search baseline the paper contrasts with querying."""
    return select(argument, text_contains(needle))


def traceability_view(argument: Argument, query: Query) -> Argument:
    """The Denney–Naylor–Pai 'view': matches plus their paths to the root.

    Returns a new argument containing every matching node, every node on a
    SupportedBy path between a match and a root, and the links among the
    retained nodes.  Contextual neighbours of retained nodes are kept
    transitively (context attached to retained context is retained too) so
    the view stays interpretable.

    Path membership is the union of the matches' SupportedBy ancestors,
    computed by a single multi-source reverse reachability pass — O(V + E)
    total however many nodes match — rather than an enumeration of paths,
    which is exponential on dense DAGs.
    """
    matches = {node.identifier for node in select(argument, query)}
    keep: set[str] = set(matches)
    frontier = list(matches)
    while frontier:
        identifier = frontier.pop()
        for parent in argument.parents(
            identifier, LinkKind.SUPPORTED_BY
        ):
            if parent.identifier not in keep:
                keep.add(parent.identifier)
                frontier.append(parent.identifier)
    # Retain context attached to kept nodes, transitively (a single pass
    # over the link list dropped context-of-context).
    frontier = list(keep)
    while frontier:
        identifier = frontier.pop()
        for context in argument.context_of(identifier):
            if context.identifier not in keep:
                keep.add(context.identifier)
                frontier.append(context.identifier)
    view = Argument(name=f"{argument.name}?{query.description}")
    with view.batch():
        for node in argument.nodes:
            if node.identifier in keep:
                view.add_node(node)
        for link in argument.links:
            if link.source in keep and link.target in keep:
                view.add_link(link.source, link.target, link.kind)
    return view
