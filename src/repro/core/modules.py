"""Modular GSN: away goals, module registries, and contract checking.

The GSN standard's modular extension lets one argument cite a goal argued
in another module via an *away goal*; the paper's §II.B cites its syntax
rules ('solutions cannot be in the context of an away goal').  Beyond the
single-argument checks in :mod:`repro.core.wellformed`, modularity needs
*inter-module* bookkeeping, which this module provides:

* :class:`ModuleRegistry` — the set of named argument modules with their
  declared public goals;
* :func:`check_away_references` — every away goal resolves to an
  existing module, names one of its *public* goals, and quotes its text
  faithfully (stale away-goal text is the modular form of the
  maintenance hazards §II.A worries about);
* :func:`composition_order` / cycle detection — modules must compose
  acyclically, or the system-level case begs the question across module
  boundaries;
* :func:`system_argument` — splice modules into one flat argument for
  whole-system analyses (impact tracing, formalisation) that need to see
  across boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from .argument import Argument, ArgumentError, LinkKind
from .nodes import Node, NodeType

__all__ = [
    "ModuleRegistry",
    "AwayReferenceProblem",
    "check_away_references",
    "composition_order",
    "system_argument",
]


@dataclass(frozen=True)
class AwayReferenceProblem:
    """One broken inter-module reference."""

    module: str
    away_goal: str
    kind: str      # 'unknown-module' | 'unknown-goal' | 'not-public'
                   # | 'stale-text'
    detail: str

    def __str__(self) -> str:
        return (
            f"[{self.kind}] {self.module}:{self.away_goal}: {self.detail}"
        )


class ModuleRegistry:
    """Named argument modules with declared public interfaces."""

    def __init__(self) -> None:
        self._modules: dict[str, Argument] = {}
        self._public: dict[str, set[str]] = {}

    def register(
        self,
        name: str,
        argument: Argument,
        public_goals: Iterable[str] | None = None,
    ) -> None:
        """Add a module; ``public_goals`` defaults to the root goals."""
        if name in self._modules:
            raise ArgumentError(f"module {name!r} already registered")
        self._modules[name] = argument
        if public_goals is None:
            public = {root.identifier for root in argument.roots()}
        else:
            public = set(public_goals)
            for goal_id in public:
                node = argument.node(goal_id)
                if not node.node_type.is_claim_like:
                    raise ArgumentError(
                        f"public interface of {name!r} must be goals; "
                        f"{goal_id!r} is a {node.node_type.value}"
                    )
        self._public[name] = public

    def module(self, name: str) -> Argument:
        try:
            return self._modules[name]
        except KeyError:
            raise ArgumentError(f"unknown module {name!r}") from None

    def public_goals(self, name: str) -> set[str]:
        return set(self._public[name])

    @property
    def names(self) -> list[str]:
        return list(self._modules)

    def __contains__(self, name: str) -> bool:
        return name in self._modules

    def __len__(self) -> int:
        return len(self._modules)


def check_away_references(
    registry: ModuleRegistry,
) -> list[AwayReferenceProblem]:
    """Validate every away goal in every module against the registry.

    An away goal's text must match a public goal of the target module
    (matched on text because GSN away goals quote the remote claim; an
    identifier-only match would hide stale quotes).
    """
    problems: list[AwayReferenceProblem] = []
    for name in registry.names:
        argument = registry.module(name)
        for away in argument.nodes_of_type(NodeType.AWAY_GOAL):
            target_name = away.module or ""
            if target_name not in registry:
                problems.append(AwayReferenceProblem(
                    name, away.identifier, "unknown-module",
                    f"references module {target_name!r} which is not "
                    "registered",
                ))
                continue
            target = registry.module(target_name)
            public = registry.public_goals(target_name)
            matching = [
                goal_id for goal_id in public
                if target.node(goal_id).text == away.text
            ]
            if matching:
                continue
            any_text_match = [
                node.identifier
                for node in target.goals
                if node.text == away.text
            ]
            if any_text_match:
                problems.append(AwayReferenceProblem(
                    name, away.identifier, "not-public",
                    f"goal {any_text_match[0]!r} exists in "
                    f"{target_name!r} but is not on its public "
                    "interface",
                ))
            else:
                problems.append(AwayReferenceProblem(
                    name, away.identifier, "stale-text",
                    f"no public goal of {target_name!r} reads "
                    f"{away.text!r} (the quoted claim is stale or "
                    "wrong)",
                ))
    return problems


def _dependencies(registry: ModuleRegistry, name: str) -> set[str]:
    argument = registry.module(name)
    return {
        away.module
        for away in argument.nodes_of_type(NodeType.AWAY_GOAL)
        if away.module
    }


def composition_order(registry: ModuleRegistry) -> list[str]:
    """Topological order of modules by away-goal dependency.

    Raises :class:`ArgumentError` on a dependency cycle — cross-module
    circular support, the modular variant of begging the question.
    """
    order: list[str] = []
    state: dict[str, int] = {}  # 0 new, 1 visiting, 2 done

    def visit(name: str, trail: list[str]) -> None:
        if state.get(name) == 2:
            return
        if state.get(name) == 1:
            cycle = " -> ".join(trail + [name])
            raise ArgumentError(
                f"module dependency cycle: {cycle}"
            )
        state[name] = 1
        for dependency in sorted(_dependencies(registry, name)):
            if dependency in registry:
                visit(dependency, trail + [name])
        state[name] = 2
        order.append(name)

    for name in sorted(registry.names):
        visit(name, [])
    return order


def system_argument(
    registry: ModuleRegistry, top_module: str
) -> Argument:
    """Splice modules into one argument rooted at ``top_module``.

    Away goals become ordinary links to the referenced public goal; node
    identifiers are namespaced ``module::id`` to avoid collisions.  The
    result supports whole-system impact tracing and formalisation.
    """
    composition_order(registry)  # raises on cycles
    spliced = Argument(name=f"system:{top_module}")
    included: set[str] = set()

    def include(name: str) -> None:
        if name in included:
            return
        included.add(name)
        argument = registry.module(name)
        for node in argument.nodes:
            if node.node_type is NodeType.AWAY_GOAL:
                continue  # replaced by a cross-module link below
            spliced.add_node(Node(
                identifier=f"{name}::{node.identifier}",
                node_type=node.node_type,
                text=node.text,
                undeveloped=node.undeveloped,
                metadata=node.metadata,
            ))
        for dependency in sorted(_dependencies(registry, name)):
            if dependency in registry:
                include(dependency)

    include(top_module)

    for name in included:
        argument = registry.module(name)
        away_targets: dict[str, str] = {}
        for away in argument.nodes_of_type(NodeType.AWAY_GOAL):
            target_name = away.module or ""
            if target_name not in registry:
                continue
            target = registry.module(target_name)
            for goal_id in registry.public_goals(target_name):
                if target.node(goal_id).text == away.text:
                    away_targets[away.identifier] = (
                        f"{target_name}::{goal_id}"
                    )
                    break
        for link in argument.links:
            source = away_targets.get(
                link.source, f"{name}::{link.source}"
            )
            target = away_targets.get(
                link.target, f"{name}::{link.target}"
            )
            if source not in spliced or target not in spliced:
                continue
            try:
                spliced.add_link(source, target, link.kind)
            except ArgumentError:
                pass  # two modules citing the same public goal
    return spliced
