"""Benchmark G1: the Greenwell findings and the formal-detector's blindness.

§V.B reports seven kinds / 45 instances of fallacies found in three real
safety arguments, none strictly formal.  This benchmark:

1. seeds a fresh argument with exactly that distribution (the injector),
2. confirms the structural checker and the Rushby formalisation find
   nothing to reject — the argument machine-checks end to end,
3. confirms the formal-fallacy detector reports 0 of the 7 kinds —
   'the fallacies that can be detected by formal verification alone are
   not the sort that Greenwell et al. found' (§III.N commentary),
4. prints the measured-vs-published distribution table.
"""

import random

from repro.core.builder import ArgumentBuilder
from repro.core.wellformed import GSN_STANDARD_RULES, RuleSet
from repro.experiments.tables import render_rows
from repro.fallacies.injector import seed_greenwell_argument
from repro.fallacies.taxonomy import (
    CATALOGUE,
    GREENWELL_FINDINGS,
    greenwell_total,
)
from repro.formalise.translator import formalise_argument


def _base():
    builder = ArgumentBuilder("greenwell-bench")
    top = builder.goal("The system is acceptably safe")
    strategy = builder.strategy(
        "Argument over identified hazards", under=top
    )
    for index in range(12):
        goal = builder.goal(
            f"Hazard H{index} is acceptably managed", under=strategy
        )
        builder.solution(f"Mitigation analysis {index}", under=goal)
    return builder.build()


def _run(seed: int):
    rng = random.Random(seed)
    return seed_greenwell_argument(_base(), rng)


def bench_greenwell_distribution(benchmark):
    mutated, records = benchmark.pedantic(
        _run, args=(20150601,), rounds=3, iterations=1
    )
    counts: dict = {}
    for record in records:
        counts[record.fallacy] = counts.get(record.fallacy, 0) + 1

    rows = []
    for fallacy, published in GREENWELL_FINDINGS.items():
        info = CATALOGUE[fallacy]
        rows.append({
            "fallacy kind": info.name,
            "published": published,
            "injected": counts.get(fallacy, 0),
            "strictly formal": "no",
            "machine detectable": "no",
        })
    print()
    print(render_rows(
        rows, title="Greenwell et al. fallacy findings (§V.B) — "
                    "measured vs published"
    ))
    print(f"total instances: {len(records)} "
          f"(published: {greenwell_total()})")

    assert counts == dict(GREENWELL_FINDINGS)
    assert len(records) == 45
    # None of the observed kinds is machine detectable.
    assert all(
        not CATALOGUE[kind].machine_detectable
        for kind in GREENWELL_FINDINGS
    )

    # The formal machinery accepts the whole argument.
    structural = RuleSet(
        "structural-only",
        tuple(
            rule for rule in GSN_STANDARD_RULES.rules
            if rule.name != "goal-not-proposition"
        ),
    )
    assert structural.is_well_formed(mutated)
    formalisation = formalise_argument(mutated)
    formalisation.assent_all()
    assert formalisation.check()
    print("structural checker: PASS; Rushby formalisation proof: PASS —")
    print("45 known-bad reasoning steps, zero mechanical findings.")
