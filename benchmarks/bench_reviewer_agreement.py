"""Benchmark SC1: §V.C — do human reviewers miss formal fallacies?

Simulates Greenwell's two-reviewer observation (each overlooked
fallacies the other flagged) over both informal and formal material, and
reports the quantity the paper says 'remains unknown': the two-reviewer
union miss rate on formal fallacies — the human baseline the §VI.A
tool-assist comparison is measured against.
"""

from repro.experiments.agreement_study import (
    AgreementStudyConfig,
    run_agreement_study,
)

_CONFIG = AgreementStudyConfig(reviewer_pairs=8)


def bench_reviewer_agreement(benchmark):
    result = benchmark.pedantic(
        run_agreement_study, args=(_CONFIG,), rounds=2, iterations=1
    )
    print()
    print(result.render())
    # Greenwell's observation reproduces: in the mean, each reviewer
    # uniquely catches something the other missed.
    informal_row, formal_row = result.rows()
    assert informal_row["mean_only_one_reviewer"] > 0
    assert informal_row["mean_jaccard"] < 1.0
    # And the §V.C unknown is now a number: even two reviewers together
    # miss a substantial share of formal fallacies.
    assert 0.0 < result.formal_union_miss_rate < 1.0
