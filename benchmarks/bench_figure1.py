"""Benchmark F1: Figure 1 — the Desert Bank passes formal validation.

Measures the SLD derivation of ``adjacent(desert_bank, river)`` from the
verbatim Figure 1 program and asserts the paper's point: the conclusion
is formally derivable (and the formal-fallacy detector finds the
formalised step VALID) while the ground truth is false — the
equivocation is invisible to machine checking.
"""

from repro.fallacies.formal_detector import FormalArgument, Verdict, detect
from repro.fallacies.informal import desert_bank_equivocation
from repro.logic.prolog import desert_bank_program
from repro.logic.propositional import parse


def bench_figure1_derivation(benchmark):
    program = desert_bank_program()

    def derive():
        return program.solve("adjacent(desert_bank, river)")

    solutions = benchmark(derive)
    assert solutions, "Figure 1's conclusion must be derivable"
    print()
    print("Figure 1 program:")
    print(program)
    print(f"\n'Proved': adjacent(desert_bank, river) "
          f"(depth {solutions[0].depth})")

    witness = desert_bank_equivocation()
    assert witness.formally_derivable and not witness.real_world_true
    print(witness.explain())


def bench_figure1_formal_validation_passes(benchmark):
    formal = FormalArgument(
        premises=(
            parse("desert_bank_is_a_bank"),
            parse("banks_are_adjacent_to_rivers"),
            parse("desert_bank_is_a_bank & banks_are_adjacent_to_rivers"
                  " -> desert_bank_adjacent_to_river"),
        ),
        conclusion=parse("desert_bank_adjacent_to_river"),
    )
    result = benchmark(detect, formal)
    assert result.verdict is Verdict.VALID
    assert not result.findings
    print("\nformal fallacy detector verdict:", result.verdict.value,
          "(the equivocation is informal: nothing to find)")
