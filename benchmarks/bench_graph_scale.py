"""Benchmark GS: the graph core at tool-generated argument scale.

Resolute derives thousands-of-node assurance cases from architecture
models and Isabelle/SACM mechanises similarly large ones, so the graph
core must survive — and stay fast on — large, deep, DAG-shaped
arguments.  This benchmark generates three synthetic shapes at 10k+
nodes:

* **deep_chain** — a single support chain (the shape that killed the
  seed's recursive traversals with :class:`RecursionError` at ~1,000
  nodes);
* **wide_fan** — one root claim over thousands of sibling hazards;
* **dense_dag** — layered diamonds with shared subgoals, where the
  seed's memo-less ``depth()`` re-visited subdags once per path
  (exponential) and path enumeration explodes combinatorially.

For each shape it times construction, traversal (walk, depth,
find_cycle, path counting, capped path enumeration), and planner-backed
queries on the current engine, and — for the chain and fan — the same
construction + ``statistics()`` on a faithful copy of the *seed*
implementation (O(L) duplicate scans in ``add_link``, recursive
``depth``), run with an enlarged interpreter stack so the recursion can
complete at all.  A persistence workload saves the fan through the
sharded store (:mod:`repro.store`), times full hydration and a leaf
subtree partial load, and records how many shards each hydrated.
Results land in ``BENCH_graph_scale.json`` with the
construction+statistics speedup that the acceptance criteria track.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_graph_scale.py            # full, 10k nodes
    PYTHONPATH=src python benchmarks/bench_graph_scale.py --smoke    # small sizes, CI

The tier-1 suite exercises the ``--smoke`` path via
``tests/test_graph_scale_smoke.py`` so graph-core perf regressions fail
loudly.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import threading
import time
from pathlib import Path
from typing import Any, Callable

from repro.core.argument import Argument, ArgumentError, Link, LinkKind
from repro.core.nodes import Node, NodeType
from repro.core.query import (
    argument_index,
    attribute_param,
    has_attribute,
    node_type_is,
    select,
    text_contains,
    traceability_view,
)

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_graph_scale.json"

# Generous headroom for the seed's recursive traversals at 10k+ depth.
_SEED_RECURSION_LIMIT = 1_000_000
_SEED_STACK_BYTES = 512 * 1024 * 1024


# -- the seed implementation, preserved for comparison ---------------------


class SeedArgument:
    """The seed graph core, preserved verbatim for comparison.

    A faithful standalone copy — list-based link storage with the O(L)
    duplicate scan in ``add_link`` (O(L²) per argument), per-type node
    scans, recursive ``find_cycle``/``paths_to_root``/``depth``, and
    scanning ``statistics``.  Deliberately does *not* inherit from the
    indexed :class:`Argument`: the seed timings must not include the new
    engine's index-maintenance cost, or the recorded speedup would be
    systematically overstated.  Only used by this benchmark and the
    equivalence tests.
    """

    def __init__(self, name: str = "argument") -> None:
        self.name = name
        self._nodes: dict[str, Node] = {}
        self._links: list[Link] = []
        self._out: dict[str, list[Link]] = {}
        self._in: dict[str, list[Link]] = {}

    def add_node(self, node: Node) -> Node:
        if node.identifier in self._nodes:
            raise ArgumentError(
                f"duplicate node identifier {node.identifier!r}"
            )
        self._nodes[node.identifier] = node
        self._out.setdefault(node.identifier, [])
        self._in.setdefault(node.identifier, [])
        return node

    def add_link(self, source: str, target: str, kind: LinkKind) -> Link:
        if source not in self._nodes:
            raise ArgumentError(f"unknown source node {source!r}")
        if target not in self._nodes:
            raise ArgumentError(f"unknown target node {target!r}")
        if source == target:
            raise ArgumentError(f"self-link on {source!r}")
        link = Link(source, target, kind)
        if link in self._links:  # the seed's O(L) scan
            raise ArgumentError(f"duplicate link {link}")
        self._links.append(link)
        self._out[source].append(link)
        self._in[target].append(link)
        return link

    def supported_by(self, source: str, target: str) -> Link:
        return self.add_link(source, target, LinkKind.SUPPORTED_BY)

    def node(self, identifier: str) -> Node:
        try:
            return self._nodes[identifier]
        except KeyError:
            raise ArgumentError(f"unknown node {identifier!r}") from None

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def nodes(self) -> list[Node]:
        return list(self._nodes.values())

    @property
    def links(self) -> list[Link]:
        return list(self._links)

    def nodes_of_type(self, node_type: NodeType) -> list[Node]:
        return [n for n in self.nodes if n.node_type is node_type]

    def supporters(self, identifier: str) -> list[Node]:
        return [
            self._nodes[link.target]
            for link in self._out.get(identifier, ())
            if link.kind is LinkKind.SUPPORTED_BY
        ]

    def roots(self) -> list[Node]:
        supported = {
            link.target
            for link in self._links
            if link.kind is LinkKind.SUPPORTED_BY
        }
        return [
            node
            for node in self._nodes.values()
            if node.node_type.is_claim_like
            and node.identifier not in supported
        ]

    def walk(self, start: str, kind: LinkKind | None = None):
        seen: set[str] = set()
        stack = [start]
        while stack:
            identifier = stack.pop()
            if identifier in seen:
                continue
            seen.add(identifier)
            yield self.node(identifier)
            targets = [
                link.target
                for link in self._out.get(identifier, ())
                if kind is None or link.kind is kind
            ]
            stack.extend(reversed(targets))

    def find_cycle(self) -> list[str] | None:
        colour: dict[str, int] = {}
        parent: dict[str, str] = {}

        def visit(identifier: str) -> list[str] | None:
            colour[identifier] = 1
            for link in self._out.get(identifier, ()):
                if link.kind is not LinkKind.SUPPORTED_BY:
                    continue
                target = link.target
                if colour.get(target, 0) == 1:
                    cycle = [target, identifier]
                    current = identifier
                    while parent.get(current) and current != target:
                        current = parent[current]
                        cycle.append(current)
                        if current == target:
                            break
                    cycle.reverse()
                    return cycle
                if colour.get(target, 0) == 0:
                    parent[target] = identifier
                    found = visit(target)
                    if found:
                        return found
            colour[identifier] = 2
            return None

        for identifier in list(self._nodes):
            if colour.get(identifier, 0) == 0:
                found = visit(identifier)
                if found:
                    return found
        return None

    def paths_to_root(self, identifier: str) -> list[list[str]]:
        # No max_paths parameter: the seed had no cap, and silently
        # accepting one would make capped comparisons look valid while
        # this enumerates everything.
        self.node(identifier)
        paths: list[list[str]] = []

        def climb(current: str, trail: list[str]) -> None:
            incoming = [
                link.source
                for link in self._in.get(current, ())
                if link.kind is LinkKind.SUPPORTED_BY
            ]
            if not incoming:
                paths.append(list(trail))
                return
            for source in incoming:
                if source in trail:
                    continue
                trail.append(source)
                climb(source, trail)
                trail.pop()

        climb(identifier, [identifier])
        return paths

    def depth(self) -> int:
        roots = self.roots()
        if not roots:
            return 0
        best = 0
        for root in roots:
            best = max(best, self._depth_from(root.identifier, set()))
        return best

    def _depth_from(self, identifier: str, seen: set[str]) -> int:
        # Path semantics identical to the seed; the seed copied ``seen``
        # per frame (O(depth²) memory), which would OOM the benchmark
        # host at 10k depth, so this mutates one shared set instead —
        # strictly *faster* than the seed, keeping the comparison
        # conservative.
        if identifier in seen:
            return 0
        seen.add(identifier)
        try:
            supports = self.supporters(identifier)
            if not supports:
                return 1
            return 1 + max(
                self._depth_from(child.identifier, seen)
                for child in supports
            )
        finally:
            seen.discard(identifier)

    def statistics(self) -> dict[str, int]:
        stats: dict[str, int] = {
            f"{node_type.value}_count": len(self.nodes_of_type(node_type))
            for node_type in NodeType
        }
        stats["node_count"] = len(self._nodes)
        stats["link_count"] = len(self._links)
        stats["supported_by_count"] = sum(
            1 for link in self._links
            if link.kind is LinkKind.SUPPORTED_BY
        )
        stats["in_context_of_count"] = sum(
            1 for link in self._links
            if link.kind is LinkKind.IN_CONTEXT_OF
        )
        stats["depth"] = self.depth()
        return stats


def run_with_seed_stack(fn: Callable[[], Any]) -> Any:
    """Run ``fn`` in a thread with a huge stack and recursion limit.

    The seed's recursive traversals need thousands of frames; without
    this the comparison would just crash instead of being slow.
    """
    outcome: dict[str, Any] = {}

    def target() -> None:
        limit = sys.getrecursionlimit()
        sys.setrecursionlimit(_SEED_RECURSION_LIMIT)
        try:
            outcome["value"] = fn()
        except BaseException as error:  # surface in the caller
            outcome["error"] = error
        finally:
            sys.setrecursionlimit(limit)

    previous = threading.stack_size(_SEED_STACK_BYTES)
    try:
        thread = threading.Thread(target=target, name="seed-bench")
        thread.start()
        thread.join()
    finally:
        threading.stack_size(previous)
    if "error" in outcome:
        raise outcome["error"]
    return outcome["value"]


# -- synthetic argument shapes ---------------------------------------------

NodeSpec = tuple[str, NodeType, str, tuple[tuple[str, tuple[Any, ...]], ...]]
LinkSpec = tuple[str, str, LinkKind]


def _metadata_for(index: int) -> tuple[tuple[str, tuple[Any, ...]], ...]:
    """Sprinkle hazard annotations so query benchmarks have selectivity."""
    if index % 10 != 0:
        return ()
    likelihood = "remote" if index % 20 == 0 else "frequent"
    severity = "catastrophic" if index % 40 == 0 else "minor"
    return (("hazard", (f"H{index}", likelihood, severity)),)


def deep_chain(n: int) -> tuple[list[NodeSpec], list[LinkSpec]]:
    """A single support chain of ``n`` nodes ending in a solution."""
    nodes: list[NodeSpec] = []
    links: list[LinkSpec] = []
    for index in range(n - 1):
        nodes.append((
            f"G{index}", NodeType.GOAL,
            f"Claim {index} holds under all operating conditions",
            _metadata_for(index),
        ))
        if index:
            links.append((f"G{index - 1}", f"G{index}",
                          LinkKind.SUPPORTED_BY))
    nodes.append((f"Sn{n - 1}", NodeType.SOLUTION,
                  "Terminal evidence record", ()))
    links.append((f"G{n - 2}", f"Sn{n - 1}", LinkKind.SUPPORTED_BY))
    return nodes, links


def wide_fan(n: int) -> tuple[list[NodeSpec], list[LinkSpec]]:
    """One root claim over ``n - 1`` sibling hazards, with some context."""
    nodes: list[NodeSpec] = [(
        "G0", NodeType.GOAL, "The system is acceptably safe", ()
    )]
    links: list[LinkSpec] = []
    for index in range(1, n):
        if index % 25 == 0:
            nodes.append((
                f"C{index}", NodeType.CONTEXT,
                f"Operating context item {index}", (),
            ))
            links.append(("G0", f"C{index}", LinkKind.IN_CONTEXT_OF))
        else:
            nodes.append((
                f"G{index}", NodeType.GOAL,
                f"Hazard {index} is acceptably managed",
                _metadata_for(index),
            ))
            links.append(("G0", f"G{index}", LinkKind.SUPPORTED_BY))
    return nodes, links


def dense_dag(n: int, width: int = 50) -> tuple[list[NodeSpec], list[LinkSpec]]:
    """A layered diamond DAG: every node shared by two parents.

    The seed's memo-less ``depth()`` re-visits each shared node once per
    path — exponential in the layer count — and the number of root paths
    grows as ~2^layers, so only capped/lazy enumeration can touch it.
    """
    width = max(2, min(width, n // 2))
    layers = max(2, n // width)
    nodes: list[NodeSpec] = [(
        "L0N0", NodeType.GOAL, "The system is acceptably safe", ()
    )]
    links: list[LinkSpec] = []
    previous_width = 1
    for layer in range(1, layers):
        terminal = layer == layers - 1
        for position in range(width):
            if terminal:
                identifier = f"L{layer}N{position}"
                nodes.append((identifier, NodeType.SOLUTION,
                              f"Evidence record {layer}-{position}", ()))
            else:
                identifier = f"L{layer}N{position}"
                nodes.append((
                    identifier, NodeType.GOAL,
                    f"Subclaim {layer}-{position} holds",
                    _metadata_for(layer * width + position),
                ))
            for offset in (0, 1):
                parent = f"L{layer - 1}N{(position + offset) % previous_width}"
                spec = (parent, identifier, LinkKind.SUPPORTED_BY)
                if spec not in links[-2 * width:]:
                    links.append(spec)
        previous_width = width
    return nodes, links


SHAPES: dict[str, Callable[[int], tuple[list[NodeSpec], list[LinkSpec]]]] = {
    "deep_chain": deep_chain,
    "wide_fan": wide_fan,
    "dense_dag": dense_dag,
}

#: Shapes on which the seed implementation is measured.  The dense DAG is
#: excluded: the seed's exponential depth() would not finish at all.
SEED_SHAPES = ("deep_chain", "wide_fan")


def build(
    cls: "type[Argument] | type[SeedArgument]",
    spec: tuple[list[NodeSpec], list[LinkSpec]],
    name: str,
):
    """Construct via the batch API where available (the default path)."""
    if not hasattr(cls, "add_nodes"):  # the seed has no batch layer
        return build_per_op(cls, spec, name)
    argument = cls(name)
    nodes, links = spec
    argument.add_nodes(
        Node(identifier, node_type, text, metadata=metadata)
        for identifier, node_type, text, metadata in nodes
    )
    argument.add_links(links)
    return argument


def build_per_op(
    cls: "type[Argument] | type[SeedArgument]",
    spec: tuple[list[NodeSpec], list[LinkSpec]],
    name: str,
):
    """Construct one mutation at a time (per-mutation invalidation)."""
    argument = cls(name)
    nodes, links = spec
    for identifier, node_type, text, metadata in nodes:
        argument.add_node(Node(identifier, node_type, text,
                               metadata=metadata))
    for source, target, kind in links:
        argument.add_link(source, target, kind)
    return argument


# -- measurement -----------------------------------------------------------


def timed(fn: Callable[[], Any]) -> tuple[float, Any]:
    start = time.perf_counter()
    value = fn()
    return time.perf_counter() - start, value


def bench_shape(
    shape: str, n: int, max_paths: int
) -> dict[str, Any]:
    spec = SHAPES[shape](n)
    nodes, links = spec
    result: dict[str, Any] = {
        "nodes": len(nodes),
        "links": len(links),
        "new": {},
    }
    new_times = result["new"]

    construct_time, argument = timed(
        lambda: build(Argument, spec, shape)
    )
    new_times["construct_s"] = construct_time
    # Batch vs one-mutation-at-a-time construction of the same shape.
    new_times["construct_per_op_s"], _ = timed(
        lambda: build_per_op(Argument, spec, f"{shape}-per-op")
    )
    new_times["statistics_s"], stats = timed(argument.statistics)
    result["depth"] = stats["depth"]
    # Depth is cached per version; re-query to show the cached cost too.
    new_times["statistics_cached_s"], _ = timed(argument.statistics)
    new_times["find_cycle_s"], cycle = timed(argument.find_cycle)
    assert cycle is None, f"{shape} must be acyclic"
    leaf = nodes[-1][0]
    new_times["paths_to_root_s"], paths = timed(
        lambda: argument.paths_to_root(leaf, max_paths=max_paths)
    )
    result["paths_enumerated"] = len(paths)
    new_times["count_paths_s"], count = timed(
        lambda: argument.count_paths_to_root(leaf)
    )
    # Keep the exact int: Python's json serialises arbitrary-precision
    # integers, and float() would overflow past ~1e308 (dense DAGs reach
    # 2^layers paths).
    result["path_count"] = count
    root = argument.roots()[0].identifier
    new_times["walk_s"], visited = timed(
        lambda: sum(1 for _ in argument.walk(root))
    )
    result["walk_visited"] = visited
    new_times["ancestors_s"], ancestors = timed(
        lambda: len(argument.ancestors(leaf))
    )
    result["ancestors"] = ancestors

    worst = attribute_param("hazard", 1, "remote") & attribute_param(
        "hazard", 2, "catastrophic"
    )
    new_times["query_attr_s"], matches = timed(
        lambda: len(select(argument, worst))
    )
    result["query_attr_matches"] = matches
    new_times["query_type_s"], _ = timed(
        lambda: len(select(argument, node_type_is(NodeType.SOLUTION)))
    )
    new_times["query_text_s"], _ = timed(
        lambda: len(select(argument, text_contains("HAZARD")))
    )
    new_times["traceability_view_s"], view = timed(
        lambda: traceability_view(argument, has_attribute("hazard"))
    )
    result["view_nodes"] = len(view)

    if shape in SEED_SHAPES:
        seed_times: dict[str, float] = {}
        seed_construct, seed_argument = timed(
            lambda: run_with_seed_stack(
                lambda: build(SeedArgument, spec, shape)
            )
        )
        seed_times["construct_s"] = seed_construct
        seed_times["statistics_s"], seed_stats = timed(
            lambda: run_with_seed_stack(seed_argument.statistics)
        )
        assert seed_stats == stats, (
            f"seed and new statistics disagree on {shape}"
        )
        result["seed"] = seed_times
        result["speedup_construct_statistics"] = (
            (seed_times["construct_s"] + seed_times["statistics_s"])
            / max(
                new_times["construct_s"] + new_times["statistics_s"],
                1e-9,
            )
        )
    return result


# -- the mutation-heavy interleaved workload -------------------------------
#
# Tool-generated cases are not built once and frozen: generators add a
# chunk of claims, tooling queries the partial case (well-formedness
# panels, traceability views), an editor tweaks a node, and the cycle
# repeats.  Under per-mutation invalidation (PR 1) every one of those
# query rounds rebuilt the planner index from scratch — O(rounds * V).
# The batch layer plus incremental index maintenance turns that into
# O(V + edits).  This workload measures exactly that interleaving.


def _workload_round(
    round_index: int, chunk: int
) -> tuple[list[Node], list[LinkSpec]]:
    """One round's payload: ``chunk - 1`` hazards and a solution."""
    base = 1 + round_index * chunk
    nodes: list[Node] = []
    links: list[LinkSpec] = []
    for offset in range(chunk):
        global_index = base + offset
        if offset == chunk - 1:
            node = Node(
                f"Sn{global_index}", NodeType.SOLUTION,
                f"Evidence record {global_index}",
            )
        else:
            node = Node(
                f"N{global_index}", NodeType.GOAL,
                f"Hazard {global_index} is acceptably managed",
                metadata=_metadata_for(global_index),
            )
        nodes.append(node)
        links.append(("G0", node.identifier, LinkKind.SUPPORTED_BY))
    return nodes, links


def _workload_queries():
    """Cheap planned queries, re-run after every mutation round."""
    worst = attribute_param("hazard", 1, "remote") & attribute_param(
        "hazard", 2, "catastrophic"
    )
    return (
        worst,
        node_type_is(NodeType.SOLUTION),
        attribute_param("hazard", 1, "frequent"),
    )


def run_mutation_workload(
    n: int, chunk: int, batched: bool
) -> tuple[Argument, int]:
    """Interleave chunked construction, edits, and planner queries.

    ``batched=True`` applies each round through ``Argument.batch`` and
    lets the planner index patch itself from the mutation delta;
    ``batched=False`` reproduces the PR 1 behaviour — one invalidation
    per mutation and a full index rebuild on the first query after any
    mutation (``argument_index(..., rebuild=True)``).  Both produce
    ``__eq__``-identical arguments and identical match counts.
    """
    argument = Argument("mutation-workload")
    argument.add_node(Node(
        "G0", NodeType.GOAL, "The system is acceptably safe"
    ))
    queries = _workload_queries()
    rounds = max(1, (n - 1) // chunk)
    matches = 0
    for round_index in range(rounds):
        nodes, links = _workload_round(round_index, chunk)
        if batched:
            with argument.batch():
                argument.add_nodes(nodes)
                argument.add_links(links)
        else:
            for node in nodes:
                argument.add_node(node)
            for source, target, kind in links:
                argument.add_link(source, target, kind)

        # Edits: retext the round's first hazard, churn one link (the
        # remove + re-add exercises the O(1) duplicate-check set), and
        # occasionally retype the round's solution.
        first = nodes[0]
        retyped = (
            Node(nodes[-1].identifier, NodeType.GOAL,
                 nodes[-1].text, metadata=nodes[-1].metadata)
            if round_index % 8 == 7 and len(nodes) > 1 else None
        )

        def edit() -> None:
            argument.replace_node(first.with_text(
                f"{first.text} (revalidated in round {round_index})"
            ))
            link = Link("G0", first.identifier, LinkKind.SUPPORTED_BY)
            argument.remove_link(link)
            argument.add_link(link.source, link.target, link.kind)
            if retyped is not None:
                argument.replace_node(retyped)

        if batched:
            with argument.batch():
                edit()
        else:
            edit()

        if not batched:
            argument_index(argument, rebuild=True)
        for query in queries:
            matches += len(select(argument, query))
    return argument, matches


def bench_mutation_workload(n: int, chunk: int | None = None) -> dict[str, Any]:
    """Time the interleaved workload in both modes and check agreement.

    The default chunk queries every ``n / 250`` additions — the cadence
    of interactive tooling (well-formedness panels, traceability views)
    over a case being generated, where per-mutation invalidation pays a
    full index rebuild per round.
    """
    chunk = chunk or max(10, n // 250)
    batched_s, (batched_argument, batched_matches) = timed(
        lambda: run_mutation_workload(n, chunk, batched=True)
    )
    # Per-mutation mode runs second: warm allocator/caches favour it,
    # keeping the reported speedup conservative.
    per_mutation_s, (per_argument, per_matches) = timed(
        lambda: run_mutation_workload(n, chunk, batched=False)
    )
    assert batched_matches == per_matches, (
        "batched and per-mutation query results diverged"
    )
    assert batched_argument == per_argument, (
        "batched and per-mutation arguments diverged"
    )
    assert (
        batched_argument.statistics() == per_argument.statistics()
    ), "batched and per-mutation statistics diverged"
    return {
        "nodes": len(batched_argument),
        "rounds": max(1, (n - 1) // chunk),
        "chunk": chunk,
        "query_matches": batched_matches,
        "batched_incremental_s": batched_s,
        "per_mutation_rebuild_s": per_mutation_s,
        "speedup_batched_incremental": (
            per_mutation_s / max(batched_s, 1e-9)
        ),
    }


# -- the well-formedness workload ------------------------------------------
#
# PR 4's scoped rule engine runs one rule set four ways; this workload
# measures all of them on a GSN-shaped case saved through the store:
#
# * **full** — the pre-scoped baseline, preserved verbatim below the way
#   PR 1 preserved SeedArgument: RuleSet.check used to _hydrate the
#   StoredArgument and then run whole-argument rule functions, each
#   scanning every link with a node lookup apiece;
# * **streaming** — check the shards directly with the node-type sidecar,
#   never constructing an Argument (asserted via the hydration flag);
# * **parallel** — partition the streams across process workers (on a
#   single-core host this degrades to the streaming path; the effective
#   worker count is recorded);
# * **incremental** — a mutation-heavy editing session where each round
#   re-checks via the delta-consuming IncrementalChecker vs a full
#   scoped recheck, asserting identical violations every round.


def _legacy_gsn_rules():
    """The pre-PR-4 whole-argument GSN rule set, preserved verbatim.

    These are the monolithic ``Callable[[Argument], list[Violation]]``
    rule bodies exactly as ``core/wellformed.py`` shipped them before
    the scoped engine (modulo the solution-leaf index walk, kept
    index-backed as it was).  Adapted through the legacy-``Rule`` path
    they still measure the old cost model: full hydration plus one scan
    of the link list per rule with an ``argument.node()`` lookup per
    link.
    """
    from repro.core.nodes import looks_propositional
    from repro.core.wellformed import Rule, RuleSet, Violation

    def supported_by_targets(argument):
        allowed = {NodeType.GOAL, NodeType.STRATEGY, NodeType.SOLUTION,
                   NodeType.AWAY_GOAL}
        out = []
        for link in argument.links:
            if link.kind is not LinkKind.SUPPORTED_BY:
                continue
            target = argument.node(link.target)
            if target.node_type not in allowed:
                out.append(Violation(
                    "supported-by-target", str(link),
                    f"SupportedBy cannot target a {target.node_type.value}",
                ))
        return out

    def supported_by_sources(argument):
        allowed = {NodeType.GOAL, NodeType.STRATEGY}
        out = []
        for link in argument.links:
            if link.kind is not LinkKind.SUPPORTED_BY:
                continue
            source = argument.node(link.source)
            if source.node_type not in allowed:
                out.append(Violation(
                    "supported-by-source", str(link),
                    f"a {source.node_type.value} cannot cite support",
                ))
        return out

    def context_targets(argument):
        out = []
        for link in argument.links:
            if link.kind is not LinkKind.IN_CONTEXT_OF:
                continue
            target = argument.node(link.target)
            if not target.node_type.is_contextual:
                out.append(Violation(
                    "in-context-of-target", str(link),
                    "InContextOf must target context, assumption, or "
                    f"justification, not {target.node_type.value}",
                ))
        return out

    def context_sources(argument):
        allowed = {NodeType.GOAL, NodeType.STRATEGY, NodeType.AWAY_GOAL}
        out = []
        for link in argument.links:
            if link.kind is not LinkKind.IN_CONTEXT_OF:
                continue
            source = argument.node(link.source)
            if source.node_type not in allowed:
                out.append(Violation(
                    "in-context-of-source", str(link),
                    f"a {source.node_type.value} cannot attach context",
                ))
        return out

    def away_goal_no_solution_context(argument):
        out = []
        for link in argument.links:
            if link.kind is not LinkKind.IN_CONTEXT_OF:
                continue
            source = argument.node(link.source)
            target = argument.node(link.target)
            if (source.node_type is NodeType.AWAY_GOAL
                    and target.node_type is NodeType.SOLUTION):
                out.append(Violation(
                    "away-goal-solution-context", str(link),
                    "solutions cannot be in the context of an away goal",
                ))
        return out

    def solutions_are_leaves(argument):
        out = []
        for solution in argument.nodes_of_type(NodeType.SOLUTION):
            for kind in LinkKind:
                for child in argument.children(solution.identifier, kind):
                    link = Link(solution.identifier, child.identifier, kind)
                    out.append(Violation(
                        "solution-leaf", str(link),
                        "a solution cannot be the source of any connector",
                    ))
        return out

    def single_root(argument):
        roots = argument.roots()
        if len(roots) == 1:
            return []
        if not roots:
            return [Violation(
                "single-root", argument.name, "argument has no root goal"
            )]
        names = ", ".join(r.identifier for r in roots)
        return [Violation(
            "single-root", argument.name,
            f"argument has {len(roots)} root goals ({names})",
        )]

    def acyclic(argument):
        cycle = argument.find_cycle()
        if cycle is None:
            return []
        return [Violation(
            "acyclic", " -> ".join(cycle),
            "support chain forms a cycle (circular reasoning)",
        )]

    def developed_or_marked(argument):
        out = []
        for node in argument.goals:
            if node.undeveloped:
                continue
            if argument.supporters(node.identifier):
                continue
            out.append(Violation(
                "undeveloped-unmarked", node.identifier,
                "goal has no support and is not marked undeveloped",
            ))
        return out

    def strategies_supported(argument):
        out = []
        for node in argument.strategies:
            if node.undeveloped:
                continue
            if argument.supporters(node.identifier):
                continue
            out.append(Violation(
                "strategy-unsupported", node.identifier,
                "strategy has no sub-goals and is not marked undeveloped",
            ))
        return out

    def goals_propositional(argument):
        out = []
        for node in (argument.goals
                     + argument.nodes_of_type(NodeType.AWAY_GOAL)):
            if not looks_propositional(node.text):
                out.append(Violation(
                    "goal-not-proposition", node.identifier,
                    "goal text does not read as a proposition: "
                    f"{node.text!r}",
                ))
        return out

    return RuleSet("gsn-standard-legacy", (
        Rule("supported-by-target",
             "SupportedBy targets goals, strategies, or solutions",
             supported_by_targets),
        Rule("supported-by-source",
             "only goals and strategies cite support",
             supported_by_sources),
        Rule("in-context-of-target",
             "InContextOf targets contextual elements", context_targets),
        Rule("in-context-of-source",
             "only goals and strategies attach context", context_sources),
        Rule("away-goal-solution-context",
             "solutions cannot contextualise away goals",
             away_goal_no_solution_context),
        Rule("solution-leaf", "solutions are terminal",
             solutions_are_leaves),
        Rule("single-root", "exactly one root goal", single_root),
        Rule("acyclic", "no circular support", acyclic),
        Rule("undeveloped-unmarked",
             "unsupported goals must be marked undeveloped",
             developed_or_marked),
        Rule("strategy-unsupported",
             "strategies must lead to sub-goals", strategies_supported),
        Rule("goal-not-proposition",
             "goal text must be a proposition", goals_propositional),
    ))


def gsn_case(n: int) -> tuple[list[NodeSpec], list[LinkSpec]]:
    """A well-formed GSN case: root goal, strategy, hazards, solutions."""
    hazards = max(1, (n - 2) // 2)
    nodes: list[NodeSpec] = [
        ("G0", NodeType.GOAL, "The system is acceptably safe", ()),
        ("S0", NodeType.STRATEGY,
         "Argument over each identified hazard", ()),
    ]
    links: list[LinkSpec] = [("G0", "S0", LinkKind.SUPPORTED_BY)]
    for index in range(1, hazards + 1):
        goal = f"G{index}"
        nodes.append((
            goal, NodeType.GOAL,
            f"Hazard {index} is acceptably managed",
            _metadata_for(index),
        ))
        links.append(("S0", goal, LinkKind.SUPPORTED_BY))
        if index % 25 == 0:
            context = f"C{index}"
            nodes.append((context, NodeType.CONTEXT,
                          f"Operating context item {index}", ()))
            links.append((goal, context, LinkKind.IN_CONTEXT_OF))
        solution = f"Sn{index}"
        nodes.append((solution, NodeType.SOLUTION,
                      f"Verification record VR-{index}", ()))
        links.append((goal, solution, LinkKind.SUPPORTED_BY))
    return nodes, links


def _wellformed_edit_round(argument, hazards: int, round_index: int) -> None:
    """One deterministic editing round: retext, churn a link, add a goal."""
    from repro.core.nodes import Node as _Node

    target = f"G{1 + (round_index % hazards)}"
    node = argument.node(target)
    argument.replace_node(node.with_text(
        f"Hazard {1 + (round_index % hazards)} is acceptably managed "
        f"(revalidated r{round_index})"
    ))
    link = Link("S0", target, LinkKind.SUPPORTED_BY)
    argument.remove_link(link)
    argument.add_link(link.source, link.target, link.kind)
    if round_index % 5 == 0:
        # A fresh unsupported goal: violations appear and persist.
        identifier = f"X{round_index}"
        argument.add_node(_Node(
            identifier, NodeType.GOAL,
            f"Late-added claim {round_index} holds",
        ))
        argument.add_link("S0", identifier, LinkKind.SUPPORTED_BY)


def bench_wellformed_workload(
    n: int, directory: Path | str | None = None, rounds: int | None = None
) -> dict[str, Any]:
    """Full vs streaming vs parallel vs incremental well-formedness.

    Asserts all four modes report identical violations, that streaming
    and parallel checks never hydrate the store, and that the
    incremental checker equals a fresh full check after every editing
    round.
    """
    import os

    from repro.core.wellformed import GSN_STANDARD_RULES
    from repro.store import StoredArgument

    spec = gsn_case(n)
    argument = build(Argument, spec, "wellformed-case")
    hazards = max(1, (n - 2) // 2)
    scratch = directory is None
    base = Path(tempfile.mkdtemp(prefix="bench-wf-")) if scratch \
        else Path(directory)
    store_dir = base / "wellformed-case.store"
    try:
        argument.save(store_dir)

        serial_s, serial = timed(
            lambda: GSN_STANDARD_RULES.check(argument)
        )

        # The pre-PR path: hydrate, then whole-argument legacy rules.
        legacy_rules = _legacy_gsn_rules()
        hydrating = StoredArgument(store_dir)
        full_s, full = timed(
            lambda: legacy_rules.check(hydrating, mode="full")
        )
        assert hydrating.hydrated, "the legacy full check must hydrate"

        # The scoped rules run over a hydrated argument, for reference.
        scoped_full_store = StoredArgument(store_dir)
        scoped_full_s, scoped_full = timed(
            lambda: GSN_STANDARD_RULES.check(
                scoped_full_store, mode="full"
            )
        )

        streaming_store = StoredArgument(store_dir)
        streaming_s, streaming = timed(
            lambda: GSN_STANDARD_RULES.check(
                streaming_store, mode="streaming"
            )
        )
        assert not streaming_store.hydrated, (
            "streaming check must not hydrate the store"
        )
        assert streaming_store.shards_read, (
            "streaming check must actually read shards"
        )

        workers = os.cpu_count() or 1
        parallel_store = StoredArgument(store_dir)
        parallel_s, parallel = timed(
            lambda: GSN_STANDARD_RULES.check(
                parallel_store, mode="parallel", workers=workers
            )
        )
        assert not parallel_store.hydrated, (
            "parallel check must not hydrate the store"
        )
        assert serial == full == scoped_full == streaming == parallel, (
            "well-formedness modes disagreed"
        )

        # Mutation-heavy editing session: incremental vs full recheck.
        # Rounds scale down with size so the full-recheck baseline stays
        # measurable (each round costs O(V + E) in that mode).
        if rounds is None:
            rounds = max(10, min(40, 1_000_000 // max(1, n)))
        incremental_argument = argument.copy()
        checker = GSN_STANDARD_RULES.incremental(incremental_argument)
        incremental_results: list[int] = []

        def run_incremental() -> None:
            for round_index in range(rounds):
                _wellformed_edit_round(
                    incremental_argument, hazards, round_index
                )
                incremental_results.append(
                    len(checker.check())
                )

        full_argument = argument.copy()
        full_results: list[int] = []

        def run_full_recheck() -> None:
            for round_index in range(rounds):
                _wellformed_edit_round(
                    full_argument, hazards, round_index
                )
                full_results.append(
                    len(GSN_STANDARD_RULES.check(full_argument))
                )

        incremental_s, _ = timed(run_incremental)
        full_recheck_s, _ = timed(run_full_recheck)
        assert incremental_results == full_results, (
            "incremental and full rechecks diverged"
        )
        assert checker.check() == GSN_STANDARD_RULES.check(
            incremental_argument
        ), "final incremental state diverged from a fresh check"

        return {
            "nodes": len(argument),
            "links": len(argument.links),
            "violations": len(serial),
            "serial_in_memory_s": serial_s,
            "full_hydrate_s": full_s,
            "scoped_full_hydrate_s": scoped_full_s,
            "streaming_s": streaming_s,
            "parallel_s": parallel_s,
            "parallel_workers": workers,
            "speedup_streaming_vs_full": full_s / max(streaming_s, 1e-9),
            "speedup_parallel_vs_full": full_s / max(parallel_s, 1e-9),
            "edit_rounds": rounds,
            "incremental_s": incremental_s,
            "full_recheck_s": full_recheck_s,
            "speedup_incremental_vs_full_recheck": (
                full_recheck_s / max(incremental_s, 1e-9)
            ),
        }
    finally:
        if scratch:
            shutil.rmtree(base, ignore_errors=True)


# -- the journal workload ---------------------------------------------------
#
# An editing session over a persisted case must not pay an O(store)
# rewrite per save: PR 5's append journal persists each session's
# mutation delta as a sealed JSONL segment, readers replay it
# transparently, compact() folds it back into byte-stable shards, and
# IncrementalChecker.from_store() re-checks the persisted case from the
# journal deltas without ever hydrating it.  This workload measures the
# whole loop on the same GSN-shaped case the well-formedness workload
# uses.


def bench_journal_workload(
    n: int, directory: Path | str | None = None, rounds: int | None = None
) -> dict[str, Any]:
    """Journal appends vs full rewrites, compaction, store re-checking.

    Asserts along the way that the journal-replayed store loads equal to
    the live argument, that compaction reproduces byte-for-byte the
    files a clean ``save()`` of the same argument writes, and that the
    store-backed incremental checker matches a fresh streaming check
    after every appended delta with ``hydrated`` still ``False``.
    """
    from repro.core.wellformed import GSN_STANDARD_RULES
    from repro.store import StoredArgument

    spec = gsn_case(n)
    hazards = max(1, (n - 2) // 2)
    if rounds is None:
        rounds = 40
    scratch = directory is None
    base = Path(tempfile.mkdtemp(prefix="bench-journal-")) if scratch \
        else Path(directory)
    journal_dir = base / "journal-session.store"
    rewrite_dir = base / "rewrite-session.store"
    fresh_dir = base / "fresh-reference.store"
    try:
        journal_argument = build(Argument, spec, "journal-case")
        journal_argument.save(journal_dir)
        rewrite_argument = build(Argument, spec, "journal-case")
        rewrite_argument.save(rewrite_dir)

        # The same editing session saved two ways: O(delta) journal
        # appends vs an O(store) rewrite per save.
        def journal_session() -> None:
            for round_index in range(rounds):
                _wellformed_edit_round(
                    journal_argument, hazards, round_index
                )
                journal_argument.save(journal_dir, journal=True)

        def rewrite_session() -> None:
            for round_index in range(rounds):
                _wellformed_edit_round(
                    rewrite_argument, hazards, round_index
                )
                rewrite_argument.save(rewrite_dir)

        journal_s, _ = timed(journal_session)
        rewrite_s, _ = timed(rewrite_session)
        assert journal_argument == rewrite_argument, (
            "the two sessions applied different edits"
        )
        manifest = StoredArgument(journal_dir).manifest
        segments = len(manifest.get("journal", ()))
        assert segments == rounds, "every save should have appended"
        assert StoredArgument(journal_dir).load() == journal_argument, (
            "journal replay diverged from the live argument"
        )

        # Store-backed incremental re-checking: attach once, then each
        # appended delta re-checks incrementally; the baseline re-runs a
        # full streaming check over the same store.  Neither hydrates.
        checker_store = StoredArgument(journal_dir)
        attach_s, checker = timed(
            lambda: GSN_STANDARD_RULES.incremental_from_store(checker_store)
        )
        recheck_rounds = max(10, rounds // 2)
        incremental_s = 0.0
        streaming_s = 0.0
        for round_index in range(rounds, rounds + recheck_rounds):
            _wellformed_edit_round(journal_argument, hazards, round_index)
            journal_argument.save(journal_dir, journal=True)
            elapsed, incremental = timed(checker.check)
            incremental_s += elapsed
            elapsed, streamed = timed(
                lambda: GSN_STANDARD_RULES.check(
                    StoredArgument(journal_dir), mode="streaming"
                )
            )
            streaming_s += elapsed
            assert incremental == streamed, (
                "store-backed incremental check diverged from a fresh "
                "streaming check"
            )
        assert not checker_store.hydrated, (
            "from_store re-checking must not hydrate the store"
        )

        # Compaction folds the journal into fresh shards, byte-identical
        # to a clean save of the same live argument.
        compact_handle = StoredArgument(journal_dir)
        compact_s, _ = timed(compact_handle.compact)
        # Compaction defers its sweep so pinned snapshot readers stay
        # valid; gc() reclaims the superseded generation's files.
        compact_handle.gc()
        journal_argument.save(fresh_dir)
        compacted_files = {
            path.name: path.read_bytes() for path in journal_dir.iterdir()
        }
        fresh_files = {
            path.name: path.read_bytes() for path in fresh_dir.iterdir()
        }
        byte_stable = compacted_files == fresh_files
        assert byte_stable, "compaction is not byte-stable"
        assert checker.check() == GSN_STANDARD_RULES.check(
            StoredArgument(journal_dir), mode="streaming"
        ), "checker did not survive compaction"
        assert not checker_store.hydrated

        return {
            "nodes": len(journal_argument),
            "links": len(journal_argument.links),
            "edit_rounds": rounds,
            "journal_segments": segments,
            "journal_session_s": journal_s,
            "rewrite_session_s": rewrite_s,
            "speedup_journal_vs_rewrite": rewrite_s / max(journal_s, 1e-9),
            "compact_s": compact_s,
            "compaction_byte_stable": byte_stable,
            "from_store_attach_s": attach_s,
            "recheck_rounds": recheck_rounds,
            "from_store_incremental_s": incremental_s,
            "streaming_recheck_s": streaming_s,
            "speedup_from_store_vs_streaming": (
                streaming_s / max(incremental_s, 1e-9)
            ),
            "from_store_hydrated": checker_store.hydrated,
        }
    finally:
        if scratch:
            shutil.rmtree(base, ignore_errors=True)


# -- the persistence workload ----------------------------------------------
#
# A 100k-node tool-generated case must outlive the process that built it
# (Resolute regenerates cases per architecture revision; Isabelle/SACM
# persists mechanised cases next to their proofs) and be reloadable
# *partially*: a reviewer inspecting one hazard's sub-argument should not
# pay for full hydration.  This workload saves the fan topology through
# the sharded store, times full load and a leaf-subtree partial load, and
# records how many shards each actually hydrated.


def bench_store_workload(
    n: int, directory: Path | str | None = None
) -> dict[str, Any]:
    """Save/load/partial-load the wide-fan shape through ``repro.store``.

    Verifies along the way that the loaded argument is ``__eq__`` to the
    original with identical statistics, that the partial subtree load
    equals the in-memory ``subtree()``, and that it hydrated strictly
    fewer shards than the full load.
    """
    from repro.store import StoredArgument

    spec = wide_fan(n)
    argument = build(Argument, spec, "store-fan")
    scratch = directory is None
    base = Path(tempfile.mkdtemp(prefix="bench-store-")) if scratch \
        else Path(directory)
    store_dir = base / "store-fan.store"
    try:
        save_s, manifest = timed(lambda: argument.save(store_dir))

        full = StoredArgument(store_dir)
        load_s, loaded = timed(full.load)
        assert loaded == argument, "stored argument did not round-trip"
        assert loaded.statistics() == argument.statistics(), (
            "round-trip changed statistics"
        )
        full_shards = len(full.shards_read)

        # Partial load: one leaf of the fan — its subtree is just itself,
        # so hydration should touch the leaf's node and link shards only.
        leaf = "G1"
        partial = StoredArgument(store_dir)
        subtree_s, fragment = timed(lambda: partial.subtree(leaf))
        assert fragment == argument.subtree(leaf), (
            "partial subtree load diverged from in-memory subtree()"
        )
        partial_shards = len(partial.shards_read)
        assert partial_shards < full_shards, (
            "partial load hydrated as many shards as a full load"
        )

        store_bytes = sum(
            (store_dir / name).stat().st_size for name in manifest["shards"]
        )
        return {
            "nodes": len(argument),
            "links": len(argument.links),
            "shard_count": manifest["shard_count"],
            "store_bytes": store_bytes,
            "save_s": save_s,
            "load_s": load_s,
            "subtree_load_s": subtree_s,
            "subtree_nodes": len(fragment),
            "full_shards_read": full_shards,
            "partial_shards_read": partial_shards,
        }
    finally:
        if scratch:
            shutil.rmtree(base, ignore_errors=True)


def bench_service_mixed(
    n: int,
    writers: int = 2,
    readers: int = 4,
    appends_per_writer: int = 12,
    reads_per_reader: int = 24,
) -> dict[str, Any]:
    """Mixed editor traffic through the asyncio argument service.

    Serves the wide-fan store over a real socket, then drives it the
    way a maintained case is actually used: writer clients landing
    optimistic appends (``expect_generation`` + retry-on-409) while
    reader clients query, fetch summaries, and pull node payloads off
    whatever snapshot is current.  Reports append/read throughput under
    contention and verifies no append was lost.
    """
    import asyncio

    from repro.service import ArgumentService, ServiceClient
    from repro.service.client import ServiceClientError
    from repro.store import StoredArgument

    spec = wide_fan(n)
    argument = build(Argument, spec, "service-fan")
    base = Path(tempfile.mkdtemp(prefix="bench-service-"))
    store_dir = base / "service-fan.store"
    argument.save(store_dir)

    loop = asyncio.new_event_loop()
    service = ArgumentService(base)
    bound: dict[str, Any] = {}
    ready = threading.Event()

    def serve() -> None:
        asyncio.set_event_loop(loop)
        bound["address"] = loop.run_until_complete(service.start())
        ready.set()
        loop.run_forever()

    server_thread = threading.Thread(target=serve, daemon=True)
    server_thread.start()
    assert ready.wait(30), "service failed to start"
    host, port = bound["address"]
    store_name = store_dir.name

    conflicts = [0] * writers
    append_times: list[list[float]] = [[] for _ in range(writers)]
    read_times: list[list[float]] = [[] for _ in range(readers)]
    failures: list[BaseException] = []

    def run_writer(worker: int) -> None:
        client = ServiceClient(host, port)
        try:
            for round_index in range(appends_per_writer):
                ops = [{"op": "add_node", "node": {
                    "id": f"SVC-W{worker}R{round_index}",
                    "type": "context",
                    "text": f"Service edit {worker}/{round_index}",
                }}]
                start = time.perf_counter()
                while True:
                    generation = client.store(store_name)["generation"]
                    try:
                        client.append(
                            store_name, ops, expect_generation=generation
                        )
                        break
                    except ServiceClientError as error:
                        if error.status != 409:
                            raise
                        conflicts[worker] += 1
                append_times[worker].append(time.perf_counter() - start)
        except BaseException as error:  # pragma: no cover - surfaced below
            failures.append(error)
        finally:
            client.close()

    def run_reader(worker: int) -> None:
        client = ServiceClient(host, port)
        try:
            for round_index in range(reads_per_reader):
                start = time.perf_counter()
                if round_index % 3 == 0:
                    payload = client.query(
                        store_name, {"type": "goal"}
                    )
                    assert payload["nodes"], "query lost the fan's goals"
                elif round_index % 3 == 1:
                    client.store(store_name)
                else:
                    client.node(store_name, "G1")
                read_times[worker].append(time.perf_counter() - start)
        except BaseException as error:  # pragma: no cover - surfaced below
            failures.append(error)
        finally:
            client.close()

    threads = (
        [threading.Thread(target=run_writer, args=(w,))
         for w in range(writers)]
        + [threading.Thread(target=run_reader, args=(r,))
           for r in range(readers)]
    )
    try:
        mixed_s, _ = timed(lambda: [
            [t.start() for t in threads], [t.join() for t in threads],
        ])
        assert not failures, f"service traffic failed: {failures[:3]}"

        final = StoredArgument(store_dir)
        expected = {
            f"SVC-W{worker}R{round_index}"
            for worker in range(writers)
            for round_index in range(appends_per_writer)
        }
        missing = {name for name in expected if name not in final}
        assert not missing, f"service lost appends: {sorted(missing)[:5]}"

        all_appends = [s for per in append_times for s in per]
        all_reads = [s for per in read_times for s in per]
        return {
            "nodes": len(argument),
            "writers": writers,
            "readers": readers,
            "appends": len(all_appends),
            "reads": len(all_reads),
            "conflict_retries": sum(conflicts),
            "mixed_wall_s": mixed_s,
            "appends_per_s": len(all_appends) / mixed_s,
            "reads_per_s": len(all_reads) / mixed_s,
            "mean_append_ms": 1e3 * sum(all_appends) / len(all_appends),
            "mean_read_ms": 1e3 * sum(all_reads) / len(all_reads),
            "final_journal_segments": len(final.journal_segments),
        }
    finally:
        asyncio.run_coroutine_threadsafe(service.close(), loop).result(10)
        loop.call_soon_threadsafe(loop.stop)
        server_thread.join(10)
        shutil.rmtree(base, ignore_errors=True)


def run_bench(
    n: int = 10_000,
    max_paths: int = 1_000,
    out: Path | str | None = DEFAULT_OUT,
    wellformed_nodes: int | None = None,
) -> dict[str, Any]:
    """Benchmark every shape at ``n`` nodes; optionally write the JSON.

    The well-formedness workload runs at ``10 * n`` by default — the
    scoped engine targets 100k+-node throughput, and the hydration
    overhead it eliminates only dominates at that scale.
    """
    shapes = {
        shape: bench_shape(shape, n, max_paths) for shape in SHAPES
    }
    speedups = [
        data["speedup_construct_statistics"]
        for data in shapes.values()
        if "speedup_construct_statistics" in data
    ]
    mutation = bench_mutation_workload(n)
    store = bench_store_workload(n)
    wellformed = bench_wellformed_workload(
        10 * n if wellformed_nodes is None else wellformed_nodes
    )
    journal = bench_journal_workload(n)
    service = bench_service_mixed(n)
    report = {
        "benchmark": "graph_scale",
        "nodes_requested": n,
        "max_paths": max_paths,
        "python": sys.version.split()[0],
        "shapes": shapes,
        "min_speedup_construct_statistics": min(speedups),
        "mutation_workload": mutation,
        "speedup_mutation_workload": mutation[
            "speedup_batched_incremental"
        ],
        "store_workload": store,
        "wellformed_workload": wellformed,
        "speedup_wellformed_parallel": wellformed[
            "speedup_parallel_vs_full"
        ],
        "speedup_wellformed_incremental": wellformed[
            "speedup_incremental_vs_full_recheck"
        ],
        "journal_workload": journal,
        "speedup_journal_appends": journal["speedup_journal_vs_rewrite"],
        "service_workload": service,
        "service_reads_per_s": service["reads_per_s"],
        "note": (
            "seed comparison covers deep_chain and wide_fan; the seed's "
            "exponential depth() cannot finish on dense_dag at all; "
            "mutation_workload interleaves chunked construction, edits, "
            "and planner queries — batch + incremental index vs PR 1's "
            "per-mutation invalidation with full index rebuilds; "
            "store_workload saves/loads the fan through the sharded "
            "persistent store and partial-loads one leaf subtree, "
            "hydrating strictly fewer shards than the full load; "
            "wellformed_workload runs the scoped rule engine full "
            "(hydrate-then-check, the pre-scoped baseline) vs streaming "
            "(shards + node-type sidecar, no hydration) vs parallel "
            "(stream partitions across process workers; single-core "
            "hosts degrade to streaming) vs incremental (delta-log "
            "rechecks during a mutation-heavy editing session); "
            "journal_workload persists a mutation-heavy editing session "
            "as O(delta) append-journal segments vs a full save() "
            "rewrite per round, folds the journal back into byte-stable "
            "shards via compact(), and re-checks the persisted case "
            "from its journal deltas (IncrementalChecker.from_store) "
            "without hydration vs a full streaming recheck per round; "
            "service_workload drives the asyncio HTTP front end with "
            "concurrent writer clients (optimistic expect_generation "
            "appends, retry on 409) and reader clients (planned "
            "queries, summaries, node fetches) over one shared store — "
            "no append lost, reads served from pinned snapshots "
            "throughout"
        ),
    }
    if out is not None:
        Path(out).write_text(json.dumps(report, indent=2) + "\n")
    return report


def main(argv: list[str] | None = None) -> int:
    # allow_abbrev=False: a typo'd --node must fail loudly, not silently
    # run at the wrong size and overwrite the committed JSON.
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0], allow_abbrev=False
    )
    parser.add_argument("--nodes", type=int, default=10_000,
                        help="target node count per shape")
    parser.add_argument("--max-paths", type=int, default=1_000,
                        help="cap on enumerated root paths")
    parser.add_argument("--out", type=Path, default=None,
                        help="where to write the JSON report (default: "
                             "the committed BENCH_graph_scale.json for "
                             "full runs, a scratch file for --smoke)")
    parser.add_argument("--smoke", action="store_true",
                        help="small sizes for CI smoke checking")
    options = parser.parse_args(argv)
    n = 1_500 if options.smoke else options.nodes
    if options.out is None:
        # A smoke run must never clobber the committed full-size report.
        options.out = (
            Path(tempfile.gettempdir()) / "BENCH_graph_scale_smoke.json"
            if options.smoke else DEFAULT_OUT
        )
    report = run_bench(
        n=n, max_paths=options.max_paths, out=options.out,
        wellformed_nodes=n if options.smoke else None,
    )
    for shape, data in report["shapes"].items():
        line = (
            f"{shape:>11}: {data['nodes']} nodes, depth {data['depth']}, "
            f"construct {data['new']['construct_s'] * 1e3:.1f} ms, "
            f"statistics {data['new']['statistics_s'] * 1e3:.1f} ms"
        )
        if "speedup_construct_statistics" in data:
            line += (
                f" ({data['speedup_construct_statistics']:.0f}x vs seed)"
            )
        print(line)
    mutation = report["mutation_workload"]
    print(
        f"   mutation: {mutation['nodes']} nodes over "
        f"{mutation['rounds']} rounds, batched+incremental "
        f"{mutation['batched_incremental_s'] * 1e3:.1f} ms vs "
        f"per-mutation {mutation['per_mutation_rebuild_s'] * 1e3:.1f} ms "
        f"({mutation['speedup_batched_incremental']:.1f}x)"
    )
    store = report["store_workload"]
    print(
        f"      store: {store['nodes']} nodes, "
        f"save {store['save_s'] * 1e3:.1f} ms, "
        f"load {store['load_s'] * 1e3:.1f} ms, "
        f"leaf subtree {store['subtree_load_s'] * 1e3:.2f} ms "
        f"({store['partial_shards_read']}/{store['full_shards_read']} "
        "shards hydrated)"
    )
    wellformed = report["wellformed_workload"]
    print(
        f" wellformed: {wellformed['nodes']} nodes, "
        f"full {wellformed['full_hydrate_s'] * 1e3:.1f} ms, "
        f"streaming {wellformed['streaming_s'] * 1e3:.1f} ms, "
        f"parallel {wellformed['parallel_s'] * 1e3:.1f} ms "
        f"({wellformed['parallel_workers']} worker(s), "
        f"{wellformed['speedup_parallel_vs_full']:.1f}x vs full), "
        f"incremental {wellformed['incremental_s'] * 1e3:.1f} ms over "
        f"{wellformed['edit_rounds']} rounds "
        f"({wellformed['speedup_incremental_vs_full_recheck']:.1f}x vs "
        "full recheck)"
    )
    journal = report["journal_workload"]
    print(
        f"    journal: {journal['nodes']} nodes, "
        f"{journal['edit_rounds']} rounds: appends "
        f"{journal['journal_session_s'] * 1e3:.1f} ms vs rewrites "
        f"{journal['rewrite_session_s'] * 1e3:.1f} ms "
        f"({journal['speedup_journal_vs_rewrite']:.1f}x), compact "
        f"{journal['compact_s'] * 1e3:.1f} ms (byte-stable), "
        f"from_store recheck {journal['from_store_incremental_s'] * 1e3:.1f}"
        f" ms vs streaming {journal['streaming_recheck_s'] * 1e3:.1f} ms "
        f"({journal['speedup_from_store_vs_streaming']:.1f}x, "
        "hydrated=False)"
    )
    service = report["service_workload"]
    print(
        f"    service: {service['nodes']} nodes, {service['writers']} "
        f"writers x {service['readers']} readers: "
        f"{service['appends']} appends ({service['conflict_retries']} "
        f"409 retries) + {service['reads']} reads in "
        f"{service['mixed_wall_s'] * 1e3:.0f} ms "
        f"({service['appends_per_s']:.0f} appends/s, "
        f"{service['reads_per_s']:.0f} reads/s; mean append "
        f"{service['mean_append_ms']:.1f} ms, mean read "
        f"{service['mean_read_ms']:.1f} ms)"
    )
    print(
        "min construct+statistics speedup vs seed: "
        f"{report['min_speedup_construct_statistics']:.0f}x "
        f"-> {options.out}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
