"""Benchmark AB1: red-herring confidence inflation under BBN assessment.

§V.B: 'If argument confidence is assessed mechanically (e.g., through
BBN modelling), asserting [a rule drawing on an irrelevant premise]
would artificially raise the assessed confidence.'

The benchmark sweeps the asserted strength of a red-herring link (an
ISO-9001-certificate premise wired into a product-safety claim) and
reports the mechanically assessed confidence with and without the
irrelevant premise — a monotone inflation curve that a proof checker
would never object to, since the asserted rule is formally unimpeachable.
"""

from repro.experiments.tables import render_rows
from repro.logic.bbn import BayesNet, noisy_or_cpt


def _confidence_with_red_herring(strength: float) -> float:
    net = BayesNet()
    net.add_prior("fault_tree_sound", 0.85)
    net.add_prior("iso9001_certified", 0.97)  # true, and irrelevant
    net.add(noisy_or_cpt(
        "system_safe",
        ("fault_tree_sound", "iso9001_certified"),
        (0.80, strength),
        leak=0.02,
    ))
    return net.query(
        "system_safe",
        {"fault_tree_sound": True, "iso9001_certified": True},
    )


def _baseline_confidence() -> float:
    net = BayesNet()
    net.add_prior("fault_tree_sound", 0.85)
    net.add(noisy_or_cpt(
        "system_safe", ("fault_tree_sound",), (0.80,), leak=0.02
    ))
    return net.query("system_safe", {"fault_tree_sound": True})


def bench_ablation_bbn_inflation(benchmark):
    strengths = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5]

    def sweep():
        return [
            _confidence_with_red_herring(strength)
            for strength in strengths
        ]

    inflated = benchmark(sweep)
    baseline = _baseline_confidence()
    rows = [{
        "asserted red-herring strength": strength,
        "assessed confidence": value,
        "inflation over baseline": value - baseline,
    } for strength, value in zip(strengths, inflated)]
    print()
    print(render_rows(
        rows,
        title=f"BBN confidence inflation (baseline without red herring: "
              f"{baseline:.3f})",
    ))
    # Monotone inflation; zero-strength link adds nothing.
    assert abs(inflated[0] - baseline) < 1e-9
    assert all(b >= a for a, b in zip(inflated, inflated[1:]))
    assert inflated[-1] > baseline + 0.05
