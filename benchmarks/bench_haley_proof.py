"""Benchmark H1: the Haley et al. 11-step outer proof (§III.K).

Measures proof checking of the exact published natural-deduction
argument, asserts its shape (rules and citations), and measures the
proof-to-argument generation pipeline Basir et al. propose — including
the node-count reduction the abstraction pass buys, and the depth
comparison with a resolution-proof rendering (the style Basir et al.
avoided because it is 'obscure').
"""

from repro.formalise.proof_to_argument import (
    abstract_argument,
    proof_to_argument,
    report,
    resolution_to_argument,
)
from repro.logic.natural_deduction import (
    Rule,
    check_proof,
    haley_outer_proof,
)
from repro.logic.propositional import parse
from repro.logic.resolution import FolClause, FolLiteral, prove
from repro.logic.terms import parse_atom


def bench_haley_proof_check(benchmark):
    proof = haley_outer_proof()
    assert benchmark(check_proof, proof)
    assert len(proof) == 11
    assert proof.conclusion == parse("D -> H")
    assert [line.rule for line in proof.lines[5:]] == [
        Rule.DETACH, Rule.DETACH, Rule.SPLIT, Rule.SPLIT,
        Rule.DETACH, Rule.CONCLUSION,
    ]
    print()
    print(proof)


def bench_haley_generation_and_abstraction(benchmark):
    proof = haley_outer_proof()

    def generate():
        generated = proof_to_argument(proof, "HR system")
        return generated, abstract_argument(generated)

    generated, abstracted = benchmark(generate)
    before = report(generated, "natural-deduction")
    after = report(abstracted, "abstracted")
    print()
    print(before)
    print(after)
    assert after.node_count < before.node_count


def bench_resolution_rendering_comparison(benchmark):
    # The same D -> H reasoning, pushed through resolution: Horn clauses
    # for the Haley premises, refuting ~H given D.
    clauses = [
        FolClause.of(FolLiteral(parse_atom("i"), False),
                     FolLiteral(parse_atom("v"))),
        FolClause.of(FolLiteral(parse_atom("c"), False),
                     FolLiteral(parse_atom("h"))),
        FolClause.of(FolLiteral(parse_atom("y"), False),
                     FolLiteral(parse_atom("v"))),
        FolClause.of(FolLiteral(parse_atom("y"), False),
                     FolLiteral(parse_atom("c"))),
        FolClause.of(FolLiteral(parse_atom("d"), False),
                     FolLiteral(parse_atom("y"))),
        FolClause.of(FolLiteral(parse_atom("d"))),
    ]

    def run():
        return prove(clauses, parse_atom("h"))

    proof = benchmark(run)
    assert proof.found
    resolution_argument = resolution_to_argument(proof, "HR system")
    nd_argument = proof_to_argument(haley_outer_proof(), "HR system")
    print()
    print(report(nd_argument, "from natural deduction"))
    print(report(resolution_argument, "from resolution refutation"))
    print("Basir et al. prefer natural deduction because resolution "
          "proofs 'can be obscure' (§III.E).")
