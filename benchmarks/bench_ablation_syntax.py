"""Benchmark AB2: a formal syntax rule that is precisely wrong.

Denney & Pai's formalisation asserts goals cannot connect to other goals
— although 'GSN explicitly allows goals to support other goals [30]'
(§III.I).  This ablation generates a corpus of standard-conformant
arguments with varying amounts of goal-to-goal support and measures the
false-rejection rate of the Denney-Pai rule set against the GSN-standard
rule set: the formalisation rejects valid arguments at exactly the rate
goal-to-goal decomposition is used.
"""

import random

from repro.core.builder import ArgumentBuilder
from repro.core.wellformed import (
    DENNEY_PAI_RULES,
    GSN_STANDARD_RULES,
)
from repro.experiments.tables import render_rows


def _make_argument(seed: int, direct_goal_share: float):
    """A standard-conformant argument; some hazards decompose directly
    goal-to-goal (allowed by the standard), others via a strategy."""
    rng = random.Random(seed)
    builder = ArgumentBuilder(f"corpus-{seed}")
    top = builder.goal("The system is acceptably safe")
    strategy = builder.strategy(
        "Argument over identified hazards", under=top
    )
    uses_direct = False
    for index in range(6):
        goal = builder.goal(
            f"Hazard H{index} is acceptably managed", under=strategy
        )
        if rng.random() < direct_goal_share:
            sub = builder.goal(
                f"The H{index} barrier operates on demand", under=goal
            )
            builder.solution(f"Barrier proof test {index}", under=sub)
            uses_direct = True
        else:
            sub_strategy = builder.strategy(
                f"Argument over H{index} controls", under=goal
            )
            sub = builder.goal(
                f"The H{index} control is effective", under=sub_strategy
            )
            builder.solution(f"Control analysis {index}", under=sub)
    return builder.build(), uses_direct


def _sweep():
    rows = []
    for share in (0.0, 0.25, 0.5, 0.75, 1.0):
        total = 40
        standard_rejects = 0
        denney_rejects = 0
        for seed in range(total):
            argument, _ = _make_argument(seed, share)
            if not GSN_STANDARD_RULES.is_well_formed(argument):
                standard_rejects += 1
            if not DENNEY_PAI_RULES.is_well_formed(argument):
                denney_rejects += 1
        rows.append({
            "goal-to-goal share": share,
            "standard rejects": standard_rejects,
            "denney-pai rejects": denney_rejects,
            "false-rejection rate": denney_rejects / total,
        })
    return rows


def bench_ablation_syntax_false_rejections(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=2, iterations=1)
    print()
    print(render_rows(
        rows,
        title="Denney-Pai goal-to-goal rule: false rejections of "
              "standard-conformant arguments",
    ))
    # The standard accepts everything in the corpus.
    assert all(row["standard rejects"] == 0 for row in rows)
    # The Denney-Pai variant rejects nothing at share 0 and everything
    # it can see as the share grows.
    assert rows[0]["denney-pai rejects"] == 0
    assert rows[-1]["denney-pai rejects"] == 40
    rates = [row["false-rejection rate"] for row in rows]
    assert rates == sorted(rates)
