"""Benchmark AB4: structured querying vs simple text search.

§III.H: Denney, Naylor & Pai 'neither make nor support the claim that
the benefits of rich querying over simple text search outweigh the costs
of developing the ontology and annotating the argument'.  This ablation
runs the missing comparison: over seeded annotated arguments, measure
precision and recall of

* the structured query (their worked example: hazards with remote
  likelihood and catastrophic severity), versus
* plausible text searches a reviewer without the ontology would try,

against the annotation-defined ground truth.  The structured query is
exact by construction; text search pays in precision (severity words
appear in prose that is not the hazard annotation) and in recall
(annotations need not surface in the node text at all) — and the ablation
reports the annotation effort (annotated nodes) alongside, which is the
cost side the authors acknowledged.
"""

import random

from repro.core.builder import ArgumentBuilder
from repro.core.metadata import annotate, aviation_ontology
from repro.core.query import (
    attribute_param,
    select,
    text_search,
)
from repro.experiments.tables import render_rows

_LIKELIHOODS = ("frequent", "probable", "remote", "extremely_remote")
_SEVERITIES = ("catastrophic", "hazardous", "major", "minor")


def _build_annotated_argument(seed: int, hazards: int):
    """An argument whose node texts only *sometimes* mention the
    annotated likelihood/severity — as real prose does."""
    rng = random.Random(seed)
    ontology = aviation_ontology()
    builder = ArgumentBuilder(f"query-corpus-{seed}")
    top = builder.goal("The aircraft function is acceptably safe")
    strategy = builder.strategy(
        "Argument over each identified hazard", under=top
    )
    ground_truth: list[str] = []
    for index in range(hazards):
        likelihood = rng.choice(_LIKELIHOODS)
        severity = rng.choice(_SEVERITIES)
        mentions = rng.random() < 0.5
        text = f"Hazard FH-{index} is acceptably managed"
        if mentions:
            text += (
                f" (assessed {severity} severity, {likelihood} "
                "likelihood)"
            )
        # Some unrelated nodes mention 'catastrophic' in prose without
        # being catastrophic hazards — classic text-search bait.
        goal = builder.goal(text, under=strategy)
        builder.solution(
            "Mitigation analysis avoiding catastrophic wording drift"
            if rng.random() < 0.3
            else f"Mitigation analysis record {index}",
            under=goal,
        )
        annotate(builder.argument, goal, ontology, {
            "hazard": (f"FH-{index}", likelihood, severity),
        })
        if likelihood == "remote" and severity == "catastrophic":
            ground_truth.append(goal)
    return builder.build(), ground_truth


def _precision_recall(found: set[str], truth: set[str]):
    if not found:
        precision = 1.0 if not truth else 0.0
    else:
        precision = len(found & truth) / len(found)
    recall = 1.0 if not truth else len(found & truth) / len(truth)
    return precision, recall


def _sweep():
    rows = []
    query = attribute_param("hazard", 1, "remote") & \
        attribute_param("hazard", 2, "catastrophic")
    totals = {"sq_p": [], "sq_r": [], "ts_p": [], "ts_r": []}
    annotated_nodes = 0
    for seed in range(12):
        argument, truth_list = _build_annotated_argument(seed, 14)
        truth = set(truth_list)
        annotated_nodes += sum(
            1 for node in argument.nodes if node.metadata
        )
        structured = {
            n.identifier for n in select(argument, query)
            if n.identifier
        }
        text_hits = {
            n.identifier
            for n in text_search(argument, "catastrophic")
            if n.node_type.value == "goal"
        }
        sq_p, sq_r = _precision_recall(structured, truth)
        ts_p, ts_r = _precision_recall(text_hits, truth)
        totals["sq_p"].append(sq_p)
        totals["sq_r"].append(sq_r)
        totals["ts_p"].append(ts_p)
        totals["ts_r"].append(ts_r)
    count = len(totals["sq_p"])
    rows.append({
        "method": "structured query",
        "precision": sum(totals["sq_p"]) / count,
        "recall": sum(totals["sq_r"]) / count,
        "ontology+annotation cost (nodes annotated)": annotated_nodes,
    })
    rows.append({
        "method": "text search 'catastrophic'",
        "precision": sum(totals["ts_p"]) / count,
        "recall": sum(totals["ts_r"]) / count,
        "ontology+annotation cost (nodes annotated)": 0,
    })
    return rows


def bench_ablation_query_vs_text_search(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=2, iterations=1)
    print()
    print(render_rows(
        rows,
        title="The comparison Denney-Naylor-Pai never ran (§III.H): "
              "query vs text search",
    ))
    structured, text = rows
    assert structured["precision"] == 1.0
    assert structured["recall"] == 1.0
    # Text search loses on at least one axis (usually both).
    assert text["precision"] < 1.0 or text["recall"] < 1.0
    # And the structured method's cost side is real and reported.
    assert structured[
        "ontology+annotation cost (nodes annotated)"
    ] > 0
