"""Benchmark T1: regenerate Table I of the paper.

Runs the full survey pipeline — corpus build, eight library searches with
the first-60 cut-off, two-phase selection — and checks the result
cell-by-cell against the published Table I:

    Digital library        Safety   Security
    IEEE Xplore               12        13
    ACM Digital Library       17         7
    Springer Link             24         2
    Google Scholar             8         1
    Unique (72 total)         54        23

Phase two must yield exactly the twenty selected papers.
"""

from repro.survey import (
    SELECTED_PAPERS,
    TABLE_I,
    TABLE_I_UNIQUE,
    render_table_i,
    run_survey,
)


def bench_table1_pipeline(benchmark):
    outcome = benchmark.pedantic(
        run_survey, kwargs={"seed": 2014}, rounds=3, iterations=1
    )
    print()
    print(render_table_i(outcome))
    assert outcome.matches_published_table()
    assert outcome.table() == {
        library: dict(cells) for library, cells in TABLE_I.items()
    }
    assert outcome.unique_counts() == dict(TABLE_I_UNIQUE)
    assert len(outcome.phase2_keys) == 20
    assert set(outcome.phase2_keys) == {p.key for p in SELECTED_PAPERS}
