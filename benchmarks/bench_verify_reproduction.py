"""Benchmark V0: the whole reproduction, verified in one call.

Runs :func:`repro.paper.verify_reproduction` — every measurable claim of
the paper re-derived and compared — and prints the full report.  This is
the headline benchmark: if it passes, Table I, Figure 1, the §III–V
counts, the Greenwell distribution, the Haley proof, and the detector's
completeness all agree with the paper.
"""

from repro.paper import verify_reproduction


def bench_verify_reproduction(benchmark):
    report = benchmark.pedantic(
        verify_reproduction, rounds=2, iterations=1
    )
    print()
    print(report.render())
    assert report.ok, report.render()
