"""Benchmark EE: §VI.E — evidence-sufficiency judgments.

Runs Experiment E: assessors judge the impact breadth of doubting each
evidence item, via graph tracing (GSN paths, ground truth from the real
impact tracer) versus Rushby-style proof probing (the real what-if
machinery, executed per item).  Reports time, exact accuracy, and
inter-assessor agreement per condition.

Expected shape: graph tracing is faster, more accurate, and far more
consistent across assessors; the boolean probe forces extrapolation
(and under-reports when redundant evidence masks the removal), which is
the degree-question gap §VI.E points at.
"""

from repro.experiments.sufficiency_study import (
    SufficiencyStudyConfig,
    run_sufficiency_study,
)

_CONFIG = SufficiencyStudyConfig(assessors_per_group=10)


def bench_exp_e_sufficiency(benchmark):
    result = benchmark.pedantic(
        run_sufficiency_study, args=(_CONFIG,), rounds=2, iterations=1
    )
    print()
    print(result.render())
    assert result.graph.exact_accuracy > result.proof.exact_accuracy
    assert result.graph.agreement > result.proof.agreement
    assert result.graph.minutes.mean < result.proof.minutes.mean
    assert len(set(result.ground_truth)) > 1
