"""Benchmark ED: §VI.D — more reliably correct pattern instantiation.

Runs Experiment D: informal hand-instantiation with manual review versus
the typed instantiation tool (the real
:meth:`repro.core.patterns.Pattern.instantiate` checker, executed per
attempt).  Reports residual defects per hundred instantiations by
category and the creation-time series.

Expected shape: the tool eliminates omissions, incompatible
replacements, and type/range errors entirely, and is faster; semantic
misuse (well-typed nonsense, Matsuno's 'Railway hazards') survives both
conditions at the same rate.
"""

from repro.experiments.instantiation_study import (
    InstantiationStudyConfig,
    run_instantiation_study,
)

_CONFIG = InstantiationStudyConfig(subjects_per_group=14, tasks=6)


def bench_exp_d_instantiation(benchmark):
    result = benchmark.pedantic(
        run_instantiation_study, args=(_CONFIG,), rounds=2, iterations=1
    )
    print()
    print(result.render())
    assert result.tool_rejected_every_typing_error
    assert result.tool.defects.omissions == 0
    assert result.tool.defects.type_errors == 0
    assert result.tool.defects.incompatible == 0
    assert result.informal.defects.total > 0
    assert result.tool.defects.semantic > 0
