"""Benchmark AB3: Table I sensitivity to single-researcher selection.

The survey concedes 'we might obtain more complete and accurate results
by querying more databases, considering more results from each, or
including multiple researchers' (§III.C).  This ablation quantifies the
concession: rerunning phase one under a seeded single-reviewer error
model (each relevant paper overlooked with probability *m*; wrongly
kept papers are not modelled here — phase two filters them, so only
misses move the final count) and measuring how
far the unique-result and final-selection counts drift from the
published 72/54/23/20.
"""

import random

from repro.experiments.tables import render_rows
from repro.survey.corpus import build_corpus
from repro.survey.search import run_searches
from repro.survey.selection import noisy_phase1, phase2_keep


def _sweep():
    corpus = build_corpus(seed=2014)
    searches = run_searches(corpus)
    rows = []
    for miss_rate in (0.0, 0.05, 0.10, 0.20):
        uniques = []
        selected = []
        for trial in range(20):
            rng = random.Random(1000 + trial)
            phase1 = noisy_phase1(
                searches, rng,
                miss_rate=miss_rate, false_keep_rate=0.0,
            )
            uniques.append(len(phase1.unique))
            selected.append(sum(
                1 for paper in phase1.unique if phase2_keep(paper)
            ))
        rows.append({
            "phase-1 miss rate": miss_rate,
            "mean unique results (paper: 72)":
                sum(uniques) / len(uniques),
            "mean final selections (paper: 20)":
                sum(selected) / len(selected),
            "min final selections": min(selected),
        })
    return rows


def bench_survey_sensitivity(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=2, iterations=1)
    print()
    print(render_rows(
        rows,
        title="Table I under single-researcher selection noise "
              "(20 trials per point)",
    ))
    # Zero-error reproduces the paper exactly.
    assert rows[0]["mean unique results (paper: 72)"] == 72.0
    assert rows[0]["mean final selections (paper: 20)"] == 20.0
    # Counts fall monotonically as the miss rate grows: papers the
    # reviewer overlooks can cost final selections.
    uniques = [row["mean unique results (paper: 72)"] for row in rows]
    assert uniques == sorted(uniques, reverse=True)
    assert rows[-1]["mean final selections (paper: 20)"] < 20.0
