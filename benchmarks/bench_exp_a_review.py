"""Benchmark EA: §VI.A — automatic identification of formal fallacies.

Runs Experiment A on simulated reviewers and reports the series the
proposed study would: review time per condition, formal-fallacy miss
rate, and informal-fallacy miss rate.  The mechanical detector is
executed for real over every formalised step.

Expected shape (the direction the paper's analysis predicts): the tool
condition is faster, drives formal misses to zero with zero false
positives, and leaves informal misses untouched.
"""

from repro.experiments.review_study import (
    ReviewStudyConfig,
    run_review_study,
)

_CONFIG = ReviewStudyConfig(subjects=20, arguments=5, formal_steps=6)


def bench_exp_a_review(benchmark):
    result = benchmark.pedantic(
        run_review_study, args=(_CONFIG,), rounds=2, iterations=1
    )
    print()
    print(result.render())
    assert result.tool_detected_all_injected
    assert result.tool_false_positives == 0
    assert result.manual_plus_tool.formal_miss_rate == 0.0
    assert result.manual_both.formal_miss_rate > 0.0
    assert result.manual_plus_tool.time.mean < \
        result.manual_both.time.mean
    # The informal miss rates overlap: the tool buys nothing there.
    assert result.manual_plus_tool.informal_miss_rate > 0.0
