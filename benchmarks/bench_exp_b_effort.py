"""Benchmark EB: §VI.B — the effort of formalisation.

Runs Experiment B: simulated volunteers formalise informally constructed
arguments of growing size; the real Rushby translator supplies each
task's workload (rules + residue).  Reports minutes by expertise group
and task, the learning-curve ratio, and the expertise gap — the
confounds §VI.B says a real design must account for.
"""

from repro.experiments.effort_study import (
    EffortStudyConfig,
    run_effort_study,
)

_CONFIG = EffortStudyConfig(subjects_per_group=12, tasks=5)


def bench_exp_b_effort(benchmark):
    result = benchmark.pedantic(
        run_effort_study, args=(_CONFIG,), rounds=2, iterations=1
    )
    print()
    print(result.render())
    assert result.expertise_gap_final_task > 1.5
    assert result.learning_ratio_trained > 1.0
    assert result.learning_ratio_untrained > 1.0
    # Formalisation is a real cost relative to informal authoring.
    assert any(cell.overhead_ratio > 0.5 for cell in result.cells)
