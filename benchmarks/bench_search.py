"""Indexed case search vs substring scan across a library of stores.

The paper's survey respondents keep *libraries* of assurance cases —
the situation where "which case argued about X?" stops being a grep
and starts being a query workload.  This bench generates a corpus of
thousands of small stored cases (a share of them journal-edited after
the indexed save, so the patched-sidecar path is part of what is
measured), then answers the same ``text_contains`` questions two ways:

* **indexed** — a warm :class:`repro.store.CaseCorpus` whose handles
  resolve candidates from the persisted token/trigram sidecar
  (``repro.store.search``), the path a long-lived review service takes;
* **scan** — a fresh :class:`StoredArgument` per store per query,
  streaming every node and substring-testing its text: the workflow an
  unindexed library forces on every invocation.

Both sides must return identical ``(store, node)`` sets before a
number is recorded; the full matrix additionally asserts the indexed
side is at least 10x faster overall.  Rows append to
``BENCH_trajectory.json`` as ``kind: "search"`` through the PR 8
results pipeline and render into ``BENCH_trajectory.md`` next to the
saturation matrix.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_search.py           # full
    PYTHONPATH=src python benchmarks/bench_search.py --smoke   # tiny, CI
    PYTHONPATH=src python benchmarks/bench_search.py --label pr9
"""

from __future__ import annotations

import argparse
import os
import platform
import random
import shutil
import sys
import tempfile
import time
from pathlib import Path
from typing import Any

from bench_graph_scale import timed
from results import DEFAULT_OUT, DEFAULT_REPORT, _stats, append_run, \
    render_report

from repro.core.argument import Argument, LinkKind
from repro.core.nodes import Node, NodeType
from repro.core.query import Query, select, text_contains
from repro.store import CaseCorpus, StoredArgument

FULL_STORES = 2000
SMOKE_STORES = 60
JOURNAL_EVERY = 7  # every 7th store gets a post-save journaled edit

# Hazard-analysis vocabulary the generated claims draw from.  The
# planted terms below are injected at known rates so each query has a
# predictable selectivity.
_VOCABULARY = (
    "system hazard mitigation verification evidence inspection test "
    "analysis operator failure tolerable residual risk barrier control "
    "braking turbine coolant sensor redundancy watchdog interlock "
    "procedure audit commissioning maintenance specification review"
).split()

# (needle, case_sensitive, plant_every) — plant_every is the store
# stride the term is injected at; None means it rides the vocabulary.
_QUERIES: "tuple[tuple[str, bool, int | None], ...]" = (
    ("porosity", False, 97),        # rare token
    ("actuator", False, 11),        # medium-frequency token
    ("relief valve", False, 29),    # substring across a token boundary
    ("ELIEF VALV", False, 29),      # folded, non-token-aligned trigrams
    ("Overpressure", True, 43),     # case-sensitive: grams + predicate
)


def _case_spec(index: int, rng: random.Random,
               hazards: int) -> "tuple[list[Any], list[Any]]":
    """One small GSN case with planted query terms at known strides."""

    def prose(words: int) -> str:
        return " ".join(rng.choice(_VOCABULARY) for _ in range(words))

    nodes: "list[Any]" = [
        ("G0", NodeType.GOAL,
         f"Case {index}: the {prose(2)} is acceptably safe"),
        ("S0", NodeType.STRATEGY,
         f"Argue over each identified {prose(1)} hazard"),
    ]
    links: "list[Any]" = [
        ("G0", "S0", LinkKind.SUPPORTED_BY),
    ]
    for h in range(hazards):
        goal, solution, context = f"G{h + 1}", f"Sn{h + 1}", f"C{h + 1}"
        nodes += [
            (goal, NodeType.GOAL,
             f"Hazard {h} of case {index} is mitigated by {prose(4)}"),
            (solution, NodeType.SOLUTION,
             f"Report {index}-{h}: {prose(5)}"),
            (context, NodeType.CONTEXT,
             f"Operating context {prose(3)}"),
        ]
        links += [
            ("S0", goal, LinkKind.SUPPORTED_BY),
            (goal, solution, LinkKind.SUPPORTED_BY),
            (goal, context, LinkKind.IN_CONTEXT_OF),
        ]
    # Plant each query's term at its stride so selectivity is known.
    planted = []
    for needle, sensitive, stride in _QUERIES:
        if stride is not None and index % stride == 0:
            term = needle if sensitive else needle.lower()
            planted.append(term)
    if planted:
        nodes.append((
            "Sn_planted", NodeType.SOLUTION,
            f"Weld inspection found {', '.join(planted)} within limits",
        ))
        links.append(("G1", "Sn_planted", LinkKind.SUPPORTED_BY))
    return nodes, links


def build_corpus(root: Path, stores: int, hazards: int,
                 rng: random.Random) -> int:
    """Generate ``stores`` indexed case stores; returns total nodes.

    Every ``JOURNAL_EVERY``-th store is edited *after* the indexed save
    via ``save(journal=True)``, so its sidecar is stale-by-watermark
    and readers exercise the O(delta) patch path, not just clean loads.
    """
    total = 0
    for index in range(stores):
        nodes, links = _case_spec(index, rng, hazards)
        argument = Argument(f"case-{index}")
        argument.add_nodes(
            Node(identifier, node_type, text)
            for identifier, node_type, text in nodes
        )
        argument.add_links(links)
        directory = root / f"case-{index:05d}"
        argument.save(directory, shard_count=1, search_index=True)
        if index % JOURNAL_EVERY == 0:
            argument.add_node(Node(
                "C_amend", NodeType.CONTEXT,
                f"Amendment {index}: revisit after the actuator recall",
            ))
            argument.add_link("G0", "C_amend", LinkKind.IN_CONTEXT_OF)
            argument.save(directory, journal=True)
            total += 1
        total += len(nodes)
    return total


def indexed_pass(corpus: CaseCorpus,
                 query: Query) -> "set[tuple[str, str]]":
    """Resolve one query over warm handles via the sidecar postings."""
    return {
        (name, node.identifier)
        for name, handle in corpus.search_sources()
        for node in select(handle, query)
    }


def scan_pass(root: Path, names: "list[str]", needle: str,
              case_sensitive: bool) -> "set[tuple[str, str]]":
    """Brute-force baseline: fresh handle, stream and substring-test.

    Opening a new :class:`StoredArgument` per store is the honest
    unindexed workload — without a persisted index every invocation
    pays the full parse, exactly like a shell grep over the library.
    """
    lowered = needle.lower()
    hits: "set[tuple[str, str]]" = set()
    for name in names:
        handle = StoredArgument(root / name)
        for node in handle.iter_nodes():
            text = node.text if case_sensitive else node.text.lower()
            if (needle if case_sensitive else lowered) in text:
                hits.add((name, node.identifier))
    return hits


def run_search(options: argparse.Namespace) -> "dict[str, Any]":
    stores = options.stores or (
        SMOKE_STORES if options.smoke else FULL_STORES
    )
    repeats = options.repeats or (2 if options.smoke else 3)
    hazards = 2 if options.smoke else 6
    rng = random.Random(20150608)
    scratch = Path(tempfile.mkdtemp(prefix="bench-search-"))
    try:
        print(f"generating {stores} indexed stores...")
        seconds, total_nodes = timed(
            lambda: build_corpus(scratch, stores, hazards, rng)
        )
        print(f"  {total_nodes} nodes in {seconds:.1f}s")
        corpus = CaseCorpus(scratch)
        names = corpus.store_names()
        assert len(names) == stores
        # Warm-up: first indexed pass loads every sidecar (and patches
        # journaled ones to their watermark) — that is per-handle
        # setup, not per-query cost, so it stays outside the timings.
        for needle, case_sensitive, _ in _QUERIES:
            indexed_pass(corpus, text_contains(needle, case_sensitive))

        rows: "list[dict[str, Any]]" = []
        scan_total = 0.0
        indexed_total = 0.0
        for needle, case_sensitive, _ in _QUERIES:
            query = text_contains(needle, case_sensitive)
            indexed_samples: "list[float]" = []
            scan_samples: "list[float]" = []
            expected: "set[tuple[str, str]] | None" = None
            for _ in range(repeats):
                seconds, indexed = timed(
                    lambda: indexed_pass(corpus, query)
                )
                indexed_samples.append(seconds)
                seconds, scanned = timed(
                    lambda: scan_pass(
                        scratch, names, needle, case_sensitive
                    )
                )
                scan_samples.append(seconds)
                assert indexed == scanned, (
                    f"indexed != scan for {needle!r}: "
                    f"{sorted(indexed ^ scanned)[:5]}"
                )
                if expected is None:
                    expected = indexed
                assert indexed == expected, "unstable result set"
            indexed_stats = _stats(indexed_samples)
            scan_stats = _stats(scan_samples)
            scan_total += scan_stats["min_s"]
            indexed_total += indexed_stats["min_s"]
            row = {
                "q": needle,
                "case_sensitive": case_sensitive,
                "hits": len(expected or set()),
                "indexed_s": indexed_stats,
                "scan_s": scan_stats,
                "speedup_min": round(
                    scan_stats["min_s"] / indexed_stats["min_s"], 1
                ),
                "speedup_median": round(
                    scan_stats["median_s"] / indexed_stats["median_s"],
                    1,
                ),
                "equivalent": True,
            }
            rows.append(row)
            print(
                f"  {needle!r:>16}: {row['hits']} hits, scan "
                f"{scan_stats['min_s'] * 1e3:.1f} ms, indexed "
                f"{indexed_stats['min_s'] * 1e3:.2f} ms "
                f"({row['speedup_min']:.1f}x)"
            )
        overall = round(scan_total / indexed_total, 1)
        if not options.smoke:
            assert overall >= 10.0, (
                f"indexed search is only {overall:.1f}x faster than the "
                "substring scan; the sidecar is not paying its way"
            )
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    return {
        "kind": "search",
        "label": options.label,
        "timestamp": time.strftime(
            "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
        ),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count() or 1,
        "smoke": bool(options.smoke),
        "repeats": repeats,
        "stores": stores,
        "total_nodes": total_nodes,
        "journaled_stores": len(range(0, stores, JOURNAL_EVERY)),
        "queries": rows,
        "speedup_overall_min": overall,
    }


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny corpus for CI (no 10x floor asserted)",
    )
    parser.add_argument(
        "--label", default="dev",
        help="run label recorded in the trajectory (e.g. pr9)",
    )
    parser.add_argument(
        "--stores", type=int, default=None,
        help="override the number of generated case stores",
    )
    parser.add_argument(
        "--repeats", type=int, default=None,
        help="timing repeats per query per side",
    )
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_OUT,
        help=f"trajectory JSON to append to (default {DEFAULT_OUT})",
    )
    parser.add_argument(
        "--report", type=Path, default=DEFAULT_REPORT,
        help=f"markdown report to render (default {DEFAULT_REPORT})",
    )
    options = parser.parse_args(argv)

    print(
        f"search matrix: label={options.label} smoke={options.smoke}"
    )
    run = run_search(options)
    trajectory = append_run(options.out, run)
    options.report.write_text(
        render_report(trajectory), encoding="utf-8"
    )
    print(
        f"recorded run {len(trajectory['runs'])} -> {options.out}\n"
        f"report -> {options.report}\n"
        f"overall: {run['speedup_overall_min']:.1f}x over "
        f"{run['stores']} stores / {run['total_nodes']} nodes"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
