"""Benchmark EC: §VI.C — restriction of the reading audience.

Runs Experiment C: readers from the six §II.A stakeholder backgrounds
read the thrust-reverser specimen argument in informal and formalised
versions.  Reports reading time and comprehension per background x
version, with the slowdown and comprehension-drop series.

Expected shape: everyone slows on the formalised version; readers
without logic training slow the most and lose the most comprehension —
the audience-restriction cost §VI.C is designed to quantify.
"""

from repro.experiments.audience_study import (
    AudienceStudyConfig,
    run_audience_study,
)
from repro.experiments.subjects import Background

_CONFIG = AudienceStudyConfig(subjects_per_background=12)


def bench_exp_c_audience(benchmark):
    result = benchmark.pedantic(
        run_audience_study, args=(_CONFIG,), rounds=2, iterations=1
    )
    print()
    print(result.render())
    for background in Background:
        assert result.slowdown(background) > 1.0
    assert result.slowdown(Background.MANAGER) > \
        result.slowdown(Background.SOFTWARE_ENGINEER)
    assert result.comprehension_drop(Background.OPERATOR) > \
        result.comprehension_drop(Background.SOFTWARE_ENGINEER)
