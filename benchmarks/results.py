"""Results pipeline: the saturation matrix and its recorded trajectory.

The paper's discipline — assurance claims need maintained, comparable
evidence — applies to this repo's own performance claims.  This runner
executes the **saturation matrix** (worker count x shard skew x store
size) for the well-formedness engine's stored-argument modes, checks
that every mode agrees with the serial oracle, and lands the numbers in
one diffable artifact pair:

* ``BENCH_trajectory.json`` — machine-readable run rows, appended (never
  rewritten), so every PR's perf claim stays comparable with every
  earlier one;
* ``BENCH_trajectory.md`` — a rendered report of the latest run plus a
  trajectory table comparing each matrix cell against all prior
  recorded runs.

Matrix axes:

* **store size** — total nodes in the generated GSN case;
* **shard skew** — ``uniform`` (natural ``G{i}``/``Sn{i}`` identifiers,
  which crc32-balance across shards) or ``skewed`` (half of all hazard
  pairs re-identified by mining ids that hash into shard 0, the
  workload that idled workers under the old round-robin shard deal);
* **workers** — parallel worker counts, always including the forced
  2-worker point so the matrix records real multi-core numbers even on
  small CI boxes.

Each cell stores are journaled (edit rounds appended via
``save(journal=True)``) so the parallel path's pinned-generation replay
is part of what is measured.  Timings are min/median over ``--repeats``
alternating runs; min is the noise-robust figure the trajectory
compares.

Run from the repository root::

    PYTHONPATH=src python benchmarks/results.py            # full matrix
    PYTHONPATH=src python benchmarks/results.py --smoke    # tiny, CI
    PYTHONPATH=src python benchmarks/results.py --label pr8

The CI ``results-pipeline`` job runs ``--smoke`` and uploads both
artifacts; ``tests/test_results_pipeline_smoke.py`` keeps the runner
healthy under tier-1.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import shutil
import statistics
import sys
import tempfile
import time
import zlib
from pathlib import Path
from typing import Any

from bench_graph_scale import build, gsn_case, timed

from repro.core.argument import Argument, LinkKind
from repro.core.nodes import Node, NodeType
from repro.core.wellformed import GSN_STANDARD_RULES
from repro.store import StoredArgument
from repro.store.format import DEFAULT_SHARD_COUNT, shard_of

_REPO = Path(__file__).resolve().parent.parent
DEFAULT_OUT = _REPO / "BENCH_trajectory.json"
DEFAULT_REPORT = _REPO / "BENCH_trajectory.md"

SCHEMA = 1

FULL_SIZES = (10_000, 30_000)
SMOKE_SIZES = (600,)


# -- matrix store generation -----------------------------------------------


def _mine_identifier(prefix: str, counter: int, shard: int,
                     shard_count: int) -> tuple[str, int]:
    """The next ``prefix{n}`` identifier hashing into ``shard``."""
    while True:
        identifier = f"{prefix}{counter}"
        if zlib.crc32(identifier.encode("utf-8")) % shard_count == shard:
            return identifier, counter + 1
        counter += 1


def skewed_spec(n: int, *, skew_every: int = 2,
                shard_count: int = DEFAULT_SHARD_COUNT):
    """``gsn_case(n)`` with every ``skew_every``-th hazard pair mined
    into shard 0 — the fat-shard workload that starved the old static
    round-robin deal."""
    nodes, links = gsn_case(n)
    renames: dict[str, str] = {}
    counter = 10
    hazards = max(1, (n - 2) // 2)
    for index in range(skew_every, hazards + 1, skew_every):
        goal, counter = _mine_identifier("Gsk", counter, 0, shard_count)
        solution, counter = _mine_identifier(
            "Snsk", counter, 0, shard_count
        )
        renames[f"G{index}"] = goal
        renames[f"Sn{index}"] = solution
    nodes = [
        (renames.get(identifier, identifier), node_type, text, metadata)
        for identifier, node_type, text, metadata in nodes
    ]
    links = [
        (renames.get(source, source), renames.get(target, target), kind)
        for source, target, kind in links
    ]
    return nodes, links


def seed_violations(spec):
    """Append a known-violating fragment so mode equivalence is a real
    assertion (an all-clean case lets any mode return ``[]``)."""
    nodes, links = spec
    nodes = nodes + [
        ("G_stray_root", NodeType.GOAL,
         "A second undischarged root claim", ()),
        ("Sn_citing", NodeType.SOLUTION,
         "Evidence that itself cites support", ()),
    ]
    links = links + [
        ("Sn_citing", "G1", LinkKind.SUPPORTED_BY),
    ]
    return nodes, links


def journal_rounds(argument: Argument, store_dir: Path,
                   rounds: int, batch: int = 50) -> None:
    """Append ``rounds`` journaled edit rounds (context fan under the
    root) so checking replays a real journal overlay."""
    for round_index in range(rounds):
        argument.add_nodes(
            Node(f"JR{round_index}_{item}", NodeType.CONTEXT,
                 f"journal round {round_index} context {item}")
            for item in range(batch)
        )
        argument.add_links([
            ("G0", f"JR{round_index}_{item}", LinkKind.IN_CONTEXT_OF)
            for item in range(batch)
        ])
        argument.save(store_dir, journal=True)


def _max_shard_fraction(identifiers: list[str],
                        shard_count: int) -> float:
    counts = [0] * shard_count
    for identifier in identifiers:
        counts[shard_of(identifier, shard_count)] += 1
    total = sum(counts) or 1
    return max(counts) / total


# -- timing ----------------------------------------------------------------


def _stats(samples: list[float]) -> dict[str, float]:
    return {
        "min_s": min(samples),
        "median_s": statistics.median(samples),
    }


def run_cell(nodes: int, skew: str, worker_counts: list[int],
             repeats: int, journal: int, scratch: Path) -> dict[str, Any]:
    """One matrix cell: build, persist + journal, time every mode."""
    spec = seed_violations(
        skewed_spec(nodes) if skew == "skewed" else gsn_case(nodes)
    )
    argument = build(Argument, spec, f"sat-{skew}-{nodes}")
    store_dir = scratch / f"{skew}-{nodes}.store"
    argument.save(store_dir)
    journal_rounds(argument, store_dir, journal)

    rules = GSN_STANDARD_RULES
    serial = rules.check(argument)
    streaming_samples: list[float] = []
    parallel_samples: dict[int, list[float]] = {
        workers: [] for workers in worker_counts
    }
    # Alternate modes within each repeat so box noise lands on every
    # mode equally instead of biasing whichever ran last.
    for _ in range(repeats):
        seconds, streamed = timed(
            lambda: rules.check(StoredArgument(store_dir),
                                mode="streaming")
        )
        streaming_samples.append(seconds)
        assert streamed == serial, "streaming diverged from serial"
        for workers in worker_counts:
            seconds, checked = timed(
                lambda w=workers: rules.check(
                    StoredArgument(store_dir), mode="parallel", workers=w
                )
            )
            parallel_samples[workers].append(seconds)
            assert checked == serial, (
                f"parallel(workers={workers}) diverged from serial"
            )

    streaming = _stats(streaming_samples)
    parallel = {
        str(workers): _stats(samples)
        for workers, samples in parallel_samples.items()
    }
    # workers=1 degrades to the streaming path by design; the recorded
    # speedup must come from a real >= 2-worker pool.
    multi_core = [w for w in parallel_samples if w >= 2] or list(
        parallel_samples
    )
    best_workers = min(
        multi_core,
        key=lambda workers: min(parallel_samples[workers]),
    )
    best = _stats(parallel_samples[best_workers])
    identifiers = [
        identifier for identifier, _, _, _ in spec[0]
    ]
    return {
        "nodes": nodes,
        "skew": skew,
        "journal_rounds": journal,
        "store_node_count": len(spec[0]) + journal * 50,
        "store_link_count": len(spec[1]) + journal * 50,
        "max_shard_fraction": round(
            _max_shard_fraction(identifiers, DEFAULT_SHARD_COUNT), 3
        ),
        "violations": len(serial),
        "streaming_s": streaming,
        "parallel_s": parallel,
        "best_parallel_workers": best_workers,
        "speedup_parallel_vs_streaming_min": round(
            streaming["min_s"] / best["min_s"], 3
        ),
        "speedup_parallel_vs_streaming_median": round(
            streaming["median_s"] / best["median_s"], 3
        ),
        "equivalent": True,
    }


def run_matrix(options: argparse.Namespace) -> dict[str, Any]:
    sizes = options.sizes or (
        SMOKE_SIZES if options.smoke else FULL_SIZES
    )
    cpu = os.cpu_count() or 1
    if options.workers:
        worker_counts = sorted(set(options.workers))
    else:
        worker_counts = sorted({1, 2, cpu} if not options.smoke else {2})
    repeats = options.repeats or (2 if options.smoke else 7)
    journal = 2 if options.smoke else 4
    scratch = Path(tempfile.mkdtemp(prefix="results-matrix-"))
    cells: list[dict[str, Any]] = []
    try:
        for nodes in sizes:
            for skew in ("uniform", "skewed"):
                cell = run_cell(
                    int(nodes), skew, worker_counts, repeats, journal,
                    scratch,
                )
                cells.append(cell)
                print(
                    f"  {skew:>8} n={nodes}: streaming "
                    f"{cell['streaming_s']['min_s'] * 1e3:.0f} ms, best "
                    f"parallel(x{cell['best_parallel_workers']}) "
                    f"{cell['parallel_s'][str(cell['best_parallel_workers'])]['min_s'] * 1e3:.0f}"
                    f" ms ({cell['speedup_parallel_vs_streaming_min']:.2f}x"
                    " by min)"
                )
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
        # The matrix spun pools for every worker count; park nothing.
        from repro.core.analysis import shutdown_parallel_pools

        shutdown_parallel_pools()
    return {
        "label": options.label,
        "timestamp": time.strftime(
            "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
        ),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": cpu,
        "start_method_override": os.environ.get("REPRO_MP_START"),
        "smoke": bool(options.smoke),
        "repeats": repeats,
        "workers_tested": worker_counts,
        "cells": cells,
    }


# -- trajectory persistence ------------------------------------------------


def load_trajectory(path: Path) -> dict[str, Any]:
    if path.exists():
        data = json.loads(path.read_text(encoding="utf-8"))
        if data.get("schema") != SCHEMA:
            raise SystemExit(
                f"{path} has schema {data.get('schema')!r}; this runner "
                f"writes schema {SCHEMA} — migrate or move the file"
            )
        return data
    return {"schema": SCHEMA, "runs": []}


def append_run(path: Path, run: dict[str, Any]) -> dict[str, Any]:
    trajectory = load_trajectory(path)
    trajectory["runs"].append(run)
    path.write_text(
        json.dumps(trajectory, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return trajectory


# -- report rendering ------------------------------------------------------


def _cell_key(cell: dict[str, Any]) -> tuple[Any, ...]:
    return (cell["nodes"], cell["skew"])


def run_kind(run: dict[str, Any]) -> str:
    """The benchmark family a recorded run belongs to.

    Rows predate the ``kind`` field (PR 8 wrote saturation rows only),
    so its absence means saturation.
    """
    return str(run.get("kind", "saturation"))


def render_report(trajectory: dict[str, Any]) -> str:
    """Render every benchmark family recorded in the trajectory.

    The JSON file is shared append-only ground truth; each runner
    appends rows of its own ``kind`` and the report renders one section
    per family so saturation and search numbers stay side by side.
    """
    runs = trajectory["runs"]
    sections: list[str] = []
    saturation = [r for r in runs if run_kind(r) == "saturation"]
    if saturation:
        sections.append(_render_saturation(saturation))
    search = [r for r in runs if run_kind(r) == "search"]
    if search:
        sections.append(_render_search(search))
    claims = [r for r in runs if run_kind(r) == "claims"]
    if claims:
        sections.append(_render_claims(claims))
    return "\n\n".join(sections) + "\n" if sections else "\n"


def _render_saturation(runs: "list[dict[str, Any]]") -> str:
    latest = runs[-1]
    lines = [
        "# Saturation trajectory — parallel checking vs streaming",
        "",
        "Generated by `benchmarks/results.py`; data in "
        "`BENCH_trajectory.json`. Speedups compare the best parallel "
        "worker count against single-process streaming on the same "
        "journaled store (min over repeats).",
        "",
        f"## Latest run: `{latest['label']}` ({latest['timestamp']})",
        "",
        f"Python {latest['python']}, {latest['cpu_count']} CPU(s), "
        f"workers tested {latest['workers_tested']}, "
        f"{latest['repeats']} repeats"
        + (", **smoke sizes**" if latest["smoke"] else "")
        + (
            f", start method pinned to "
            f"`{latest['start_method_override']}`"
            if latest.get("start_method_override")
            else ""
        )
        + ".",
        "",
        "| nodes | skew | max shard | streaming min | best parallel "
        "| speedup (min) | speedup (median) |",
        "|---:|:---|---:|---:|---:|---:|---:|",
    ]
    for cell in latest["cells"]:
        best = str(cell["best_parallel_workers"])
        best_stats = cell["parallel_s"][best]
        lines.append(
            f"| {cell['nodes']} | {cell['skew']} "
            f"| {cell['max_shard_fraction']:.0%} "
            f"| {cell['streaming_s']['min_s'] * 1e3:.0f} ms "
            f"| {best_stats['min_s'] * 1e3:.0f} ms (x{best}) "
            f"| **{cell['speedup_parallel_vs_streaming_min']:.2f}x** "
            f"| {cell['speedup_parallel_vs_streaming_median']:.2f}x |"
        )
    lines += [
        "",
        "Every cell asserted parallel == streaming == serial before "
        "recording.",
    ]
    if len(runs) > 1:
        lines += [
            "",
            "## Trajectory (speedup by min, per cell, across runs)",
            "",
            "| run | " + " | ".join(
                f"{key[0]}/{key[1]}"
                for key in map(_cell_key, latest["cells"])
            ) + " |",
            "|:---|" + "---:|" * len(latest["cells"]),
        ]
        for run in runs:
            by_key = {_cell_key(cell): cell for cell in run["cells"]}
            row = [f"`{run['label']}` ({run['timestamp'][:10]})"]
            for key in map(_cell_key, latest["cells"]):
                cell = by_key.get(key)
                row.append(
                    f"{cell['speedup_parallel_vs_streaming_min']:.2f}x"
                    if cell is not None else "—"
                )
            lines.append("| " + " | ".join(row) + " |")
        lines += [
            "",
            "A dash means that run did not execute the cell (different "
            "sizes or smoke mode).",
        ]
    return "\n".join(lines)


def _render_search(runs: "list[dict[str, Any]]") -> str:
    latest = runs[-1]
    lines = [
        "# Search trajectory — persisted index vs substring scan",
        "",
        "Generated by `benchmarks/bench_search.py`; data in "
        "`BENCH_trajectory.json` (`kind: \"search\"` rows). Each query "
        "ran over the full case corpus both ways — warm "
        "`CaseCorpus` resolving candidates from the persisted sidecar "
        "postings, and a fresh-handle streaming substring scan (the "
        "workflow an unindexed library forces) — with the result sets "
        "asserted identical before recording.",
        "",
        f"## Latest run: `{latest['label']}` ({latest['timestamp']})",
        "",
        f"Python {latest['python']}, {latest['cpu_count']} CPU(s), "
        f"{latest['stores']} stores / {latest['total_nodes']} nodes "
        f"({latest['journaled_stores']} journal-patched), "
        f"{latest['repeats']} repeats"
        + (", **smoke sizes**" if latest["smoke"] else "")
        + ".",
        "",
        "| query | hits | scan min | indexed min | speedup (min) "
        "| speedup (median) |",
        "|:---|---:|---:|---:|---:|---:|",
    ]
    for cell in latest["queries"]:
        lines.append(
            f"| `{cell['q']}` | {cell['hits']} "
            f"| {cell['scan_s']['min_s'] * 1e3:.1f} ms "
            f"| {cell['indexed_s']['min_s'] * 1e3:.2f} ms "
            f"| **{cell['speedup_min']:.1f}x** "
            f"| {cell['speedup_median']:.1f}x |"
        )
    lines += [
        "",
        f"Overall speedup (total scan time / total indexed time, min): "
        f"**{latest['speedup_overall_min']:.1f}x**.",
    ]
    if len(runs) > 1:
        lines += [
            "",
            "## Trajectory (overall speedup by min, across runs)",
            "",
            "| run | stores | nodes | overall speedup |",
            "|:---|---:|---:|---:|",
        ]
        for run in runs:
            lines.append(
                f"| `{run['label']}` ({run['timestamp'][:10]}) "
                f"| {run['stores']} | {run['total_nodes']} "
                f"| {run['speedup_overall_min']:.1f}x |"
            )
    return "\n".join(lines)


def _render_claims(runs: "list[dict[str, Any]]") -> str:
    latest = runs[-1]
    lines = [
        "# Claims trajectory — full re-proof vs incremental re-proof",
        "",
        "Generated by `benchmarks/bench_claims.py`; data in "
        "`BENCH_trajectory.json` (`kind: \"claims\"` rows). Each row "
        "compiles a generated claim module, stamps its evidence "
        "obligations onto a matching argument, and compares a "
        "cold-cache full check (every obligation proved) against a "
        "single-claim edit re-checked through `repro.check(..., "
        "mode=\"incremental\")`. Every timed edit asserted exactly one "
        "new proof and result-equality with a fresh full check.",
        "",
        f"## Latest run: `{latest['label']}` ({latest['timestamp']})",
        "",
        f"Python {latest['python']}, {latest['cpu_count']} CPU(s), "
        f"{latest['repeats']} repeats, {latest['edits']} timed edits"
        + (", **smoke sizes**" if latest["smoke"] else "")
        + ".",
        "",
        "| claims | obligations | compile | full min | warm min "
        "| incr min | store incr min | full/incr (min) |",
        "|---:|---:|---:|---:|---:|---:|---:|---:|",
    ]
    for cell in latest["cells"]:
        lines.append(
            f"| {cell['claims']} | {cell['obligations']} "
            f"| {cell['compile_s'] * 1e3:.0f} ms "
            f"| {cell['full_s']['min_s'] * 1e3:.1f} ms "
            f"| {cell['warm_s']['min_s'] * 1e3:.1f} ms "
            f"| {cell['incremental_s']['min_s'] * 1e3:.2f} ms "
            f"| {cell['store_incremental_s']['min_s'] * 1e3:.2f} ms "
            f"| **{cell['ratio_full_vs_incremental_min']:.1f}x** |"
        )
    if len(runs) > 1:
        lines += [
            "",
            "## Trajectory (full/incremental by min, across runs)",
            "",
            "| run | " + " | ".join(
                f"n={cell['claims']}" for cell in latest["cells"]
            ) + " |",
            "|:---|" + "---:|" * len(latest["cells"]),
        ]
        for run in runs:
            by_n = {cell["claims"]: cell for cell in run["cells"]}
            row = [f"`{run['label']}` ({run['timestamp'][:10]})"]
            for cell in latest["cells"]:
                match = by_n.get(cell["claims"])
                row.append(
                    f"{match['ratio_full_vs_incremental_min']:.1f}x"
                    if match is not None else "—"
                )
            lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


# -- entry point -----------------------------------------------------------


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny matrix for CI (one small size, 2 workers)",
    )
    parser.add_argument(
        "--label", default="dev",
        help="run label recorded in the trajectory (e.g. pr8)",
    )
    parser.add_argument(
        "--sizes", type=int, nargs="*", default=None,
        help="override store sizes (total nodes per case)",
    )
    parser.add_argument(
        "--workers", type=int, nargs="*", default=None,
        help="override parallel worker counts to test",
    )
    parser.add_argument(
        "--repeats", type=int, default=None,
        help="timing repeats per mode per cell",
    )
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_OUT,
        help=f"trajectory JSON to append to (default {DEFAULT_OUT})",
    )
    parser.add_argument(
        "--report", type=Path, default=DEFAULT_REPORT,
        help=f"markdown report to render (default {DEFAULT_REPORT})",
    )
    options = parser.parse_args(argv)

    print(
        f"saturation matrix: label={options.label} "
        f"smoke={options.smoke}"
    )
    run = run_matrix(options)
    trajectory = append_run(options.out, run)
    options.report.write_text(
        render_report(trajectory), encoding="utf-8"
    )
    best = max(
        run["cells"],
        key=lambda cell: cell["speedup_parallel_vs_streaming_min"],
    )
    print(
        f"recorded run {len(trajectory['runs'])} -> {options.out}\n"
        f"report -> {options.report}\n"
        f"best cell: {best['skew']} n={best['nodes']} "
        f"{best['speedup_parallel_vs_streaming_min']:.2f}x (min) with "
        f"{best['best_parallel_workers']} worker(s)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
