"""Benchmark S3: the §III-V in-text survey counts.

Regenerates every quantitative claim the paper makes about its twenty
selected papers:

* 20 selected papers (§III.D);
* 6 make or imply mechanical-validation confidence claims (§IV):
  [9], [11], [16], [17], [18], [39];
* 4 formalise graphical-argument syntax (§V.A): [11], [12], [17], [18];
* 11 formalise content into symbolic/deductive logic (§V.B);
* 4 of those explicitly mention mechanical verification (§V.B);
* 3 propose informal construction then formalisation (§VI.B);
* 3 formalise pattern structure, 2 pattern parameters (§VI.D);
* none supplies substantial empirical evidence (§VII).
"""

from repro.experiments.tables import render_rows
from repro.survey import (
    SELECTED_PAPERS,
    papers_claiming_mechanical_confidence,
    papers_formalising_content,
    papers_formalising_pattern_parameters,
    papers_formalising_pattern_structure,
    papers_formalising_syntax,
    papers_informal_first,
    papers_mentioning_mechanical_verification,
)


def _counts() -> list[dict[str, object]]:
    rows = [
        ("selected papers", len(SELECTED_PAPERS), 20),
        ("claim mechanical-validation confidence (§IV)",
         len(papers_claiming_mechanical_confidence()), 6),
        ("formalise syntax (§V.A)",
         len(papers_formalising_syntax()), 4),
        ("formalise content into deductive logic (§V.B)",
         len(papers_formalising_content()), 11),
        ("...of which mention mechanical verification (§V.B)",
         len(papers_mentioning_mechanical_verification()), 4),
        ("informal-first then formalise (§VI.B)",
         len(papers_informal_first()), 3),
        ("formalise pattern structure (§VI.D)",
         len(papers_formalising_pattern_structure()), 3),
        ("formalise pattern parameters (§VI.D)",
         len(papers_formalising_pattern_parameters()), 2),
        ("provide substantial empirical evidence (§VII)",
         sum(p.provides_substantial_evidence for p in SELECTED_PAPERS),
         0),
    ]
    return [
        {"claim": label, "measured": measured, "paper": expected}
        for label, measured, expected in rows
    ]


def bench_survey_counts(benchmark):
    rows = benchmark(_counts)
    print()
    print(render_rows(rows, title="§III-V in-text counts, measured vs "
                                  "published"))
    for row in rows:
        assert row["measured"] == row["paper"], row["claim"]
