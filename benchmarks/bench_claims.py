"""Claim-module checking: full re-proof vs selective incremental re-proof.

The claim language (PR 10) binds formal obligations — SAT, validity,
entailment, FOL, LTL problems — to evidence nodes, and the unified
facade's ``mode="incremental"`` promises that editing one claim
re-proves *only that claim's obligations*.  This bench puts a number on
that promise.  For each size it generates a claim module with ``n``
claims, two obligations per evidence node (unique atoms per index, so
every proof is a distinct cache entry), compiles it through the audit
gate, stamps the bindings onto a matching argument, and measures:

* **full** — cold-cache check: every obligation proved from scratch
  (``reset_obligation_cache()`` before each repeat);
* **warm** — same full check with every proof cached (the floor the
  incremental path must also reach for untouched claims);
* **incremental (live)** — one evidence node's obligation spec edited
  per repeat, re-checked through ``repro.check(..., mode=
  "incremental")``; the obligation counters must show **exactly one**
  new proof per edit;
* **incremental (store)** — the same edit loop against a journaled
  store handle via ``IncrementalChecker.from_store``, never hydrating.

Every edited state is re-checked fresh/serial outside the timed region
and asserted equal to the incremental result (edits alternate passing
and failing specs, so the equivalence is over non-empty violation
lists too).  Rows append to ``BENCH_trajectory.json`` as ``kind:
"claims"`` and render into ``BENCH_trajectory.md``.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_claims.py           # full
    PYTHONPATH=src python benchmarks/bench_claims.py --smoke   # tiny, CI
    PYTHONPATH=src python benchmarks/bench_claims.py --label pr10
"""

from __future__ import annotations

import argparse
import os
import platform
import shutil
import sys
import tempfile
import time
from pathlib import Path
from typing import Any

from bench_graph_scale import timed
from results import DEFAULT_OUT, DEFAULT_REPORT, _stats, append_run, \
    render_report

from repro import check
from repro.claims import (
    OBLIGATION_KEY,
    compile_module,
    obligation_counters,
    parse_module,
    reset_obligation_cache,
)
from repro.core.argument import Argument, LinkKind
from repro.core.nodes import Node, NodeType
from repro.store import StoredArgument

FULL_SIZES = (250, 1000)
SMOKE_SIZES = (40,)
EDITS = 5  # timed single-claim edits per size


def module_source(n: int) -> str:
    """A claim module with ``n`` claims and ``2 * n`` obligations.

    Atom names carry the claim index so every proof is a distinct
    cache entry — no accidental cross-claim hits flatter the numbers.
    """
    lines = [f"module braking-scale-{n}", ""]
    for i in range(1, n + 1):
        lines.append(
            f'claim G{i} "Braking hazard {i} is mitigated" supported'
        )
    lines += [
        "",
        "rule goals-cite-support require supported goal",
        "rule no-cycles          require acyclic",
        "rule one-root           require single_root",
        "",
    ]
    for i in range(1, n + 1):
        lines.append(
            f'evidence Sn{i} sat     "a{i} & (a{i} -> b{i})"'
        )
        lines.append(
            f'evidence Sn{i} entails "a{i} -> b{i} ; a{i} |- b{i}"'
        )
    return "\n".join(lines) + "\n"


def build_argument(n: int) -> Argument:
    """A matching argument: root goal over ``n`` hazard goal/evidence
    pairs."""
    argument = Argument(f"braking-scale-{n}")
    nodes = [
        Node("G0", NodeType.GOAL,
             "The braking system is acceptably safe"),
        Node("S0", NodeType.STRATEGY,
             "Argue over each identified braking hazard"),
    ]
    links = [("G0", "S0", LinkKind.SUPPORTED_BY)]
    for i in range(1, n + 1):
        nodes += [
            Node(f"G{i}", NodeType.GOAL,
                 f"Braking hazard {i} is mitigated"),
            Node(f"Sn{i}", NodeType.SOLUTION,
                 f"Hazard {i} mitigation evidence"),
        ]
        links += [
            ("S0", f"G{i}", LinkKind.SUPPORTED_BY),
            (f"G{i}", f"Sn{i}", LinkKind.SUPPORTED_BY),
        ]
    argument.add_nodes(nodes)
    argument.add_links(links)
    return argument


def edit_spec(edit: int) -> str:
    """The replacement obligation for timed edit ``edit``.

    Alternates passing and failing specs so the incremental-vs-fresh
    equivalence assertion covers non-empty violation lists too.
    """
    if edit % 2 == 0:
        return f"sat: e{edit} | ~e{edit}"       # valid, discharges
    return f"valid: e{edit} -> other{edit}"      # invalid, violates


def run_size(n: int, repeats: int, scratch: Path) -> "dict[str, Any]":
    """One bench row: compile, full/warm/incremental timings."""
    source = module_source(n)
    compile_seconds, claims = timed(
        lambda: compile_module(parse_module(source))
    )
    argument = build_argument(n)
    stamped = claims.apply(argument)
    assert stamped == n, f"expected {n} stamped nodes, got {stamped}"
    obligations = sum(len(specs) for specs in claims.bindings.values())
    assert obligations == 2 * n

    rules = claims.rule_set

    # Full: cold cache, every obligation proved from scratch.
    full_samples: "list[float]" = []
    for _ in range(repeats):
        reset_obligation_cache()
        seconds, report = timed(
            lambda: check(argument, rules, mode="serial")
        )
        full_samples.append(seconds)
        assert report.well_formed, list(report)
        proofs, _ = obligation_counters()
        assert proofs == obligations, (proofs, obligations)

    # Warm: same check, every proof a cache hit.
    warm_samples: "list[float]" = []
    for _ in range(repeats):
        seconds, report = timed(
            lambda: check(argument, rules, mode="serial")
        )
        warm_samples.append(seconds)
        assert report.well_formed

    # Incremental, live argument: one edited claim per repeat must
    # cost exactly one new proof.
    check(argument, rules, mode="incremental")  # prime the checker
    incremental_samples: "list[float]" = []
    for edit in range(EDITS):
        target = argument.node(f"Sn{(edit % n) + 1}")
        argument.replace_node(
            target.with_metadata({OBLIGATION_KEY: (edit_spec(edit),)})
        )
        proofs_before, _ = obligation_counters()
        seconds, report = timed(
            lambda: check(argument, rules, mode="incremental")
        )
        incremental_samples.append(seconds)
        proofs_after, _ = obligation_counters()
        assert proofs_after - proofs_before == 1, (
            f"edit {edit}: {proofs_after - proofs_before} proofs re-run"
        )
        fresh = check(argument, rules, mode="serial")
        assert tuple(report) == tuple(fresh), (
            f"edit {edit}: incremental diverged from fresh full"
        )

    # Incremental, journaled store: same loop through from_store.
    store_dir = scratch / f"claims-{n}.store"
    argument.save(store_dir)
    handle = StoredArgument(store_dir)
    check(handle, rules, mode="incremental")  # prime (full streaming)
    store_samples: "list[float]" = []
    for edit in range(EDITS, 2 * EDITS):
        target = argument.node(f"Sn{(edit % n) + 1}")
        argument.replace_node(
            target.with_metadata({OBLIGATION_KEY: (edit_spec(edit),)})
        )
        argument.save(store_dir, journal=True)
        proofs_before, _ = obligation_counters()
        seconds, report = timed(
            lambda: check(handle, rules, mode="incremental")
        )
        store_samples.append(seconds)
        proofs_after, _ = obligation_counters()
        assert proofs_after - proofs_before == 1, (
            f"store edit {edit}: "
            f"{proofs_after - proofs_before} proofs re-run"
        )
        assert not handle.hydrated, "from_store re-check hydrated"
        fresh = check(argument, rules, mode="serial")
        assert tuple(report) == tuple(fresh), (
            f"store edit {edit}: incremental diverged from fresh full"
        )

    full = _stats(full_samples)
    warm = _stats(warm_samples)
    incremental = _stats(incremental_samples)
    store = _stats(store_samples)
    return {
        "claims": n,
        "obligations": obligations,
        "compile_s": round(compile_seconds, 4),
        "full_s": full,
        "warm_s": warm,
        "incremental_s": incremental,
        "store_incremental_s": store,
        "proofs_per_edit": 1,
        "ratio_full_vs_incremental_min": round(
            full["min_s"] / incremental["min_s"], 1
        ),
        "ratio_full_vs_incremental_median": round(
            full["median_s"] / incremental["median_s"], 1
        ),
        "equivalent": True,
    }


def run_bench(options: argparse.Namespace) -> "dict[str, Any]":
    sizes = options.sizes or (
        SMOKE_SIZES if options.smoke else FULL_SIZES
    )
    repeats = options.repeats or (2 if options.smoke else 5)
    scratch = Path(tempfile.mkdtemp(prefix="bench-claims-"))
    rows: "list[dict[str, Any]]" = []
    try:
        for n in sizes:
            row = run_size(int(n), repeats, scratch)
            rows.append(row)
            print(
                f"  n={n}: {row['obligations']} obligations, full "
                f"{row['full_s']['min_s'] * 1e3:.1f} ms, incremental "
                f"{row['incremental_s']['min_s'] * 1e3:.2f} ms "
                f"({row['ratio_full_vs_incremental_min']:.1f}x), store "
                f"{row['store_incremental_s']['min_s'] * 1e3:.2f} ms"
            )
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
        reset_obligation_cache()
    return {
        "kind": "claims",
        "label": options.label,
        "timestamp": time.strftime(
            "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
        ),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count() or 1,
        "smoke": bool(options.smoke),
        "repeats": repeats,
        "edits": EDITS,
        "cells": rows,
    }


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny module for CI",
    )
    parser.add_argument(
        "--label", default="dev",
        help="run label recorded in the trajectory (e.g. pr10)",
    )
    parser.add_argument(
        "--sizes", type=int, nargs="*", default=None,
        help="override claim counts per module",
    )
    parser.add_argument(
        "--repeats", type=int, default=None,
        help="timing repeats for the full/warm checks",
    )
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_OUT,
        help=f"trajectory JSON to append to (default {DEFAULT_OUT})",
    )
    parser.add_argument(
        "--report", type=Path, default=DEFAULT_REPORT,
        help=f"markdown report to render (default {DEFAULT_REPORT})",
    )
    options = parser.parse_args(argv)

    print(f"claims bench: label={options.label} smoke={options.smoke}")
    run = run_bench(options)
    trajectory = append_run(options.out, run)
    options.report.write_text(
        render_report(trajectory), encoding="utf-8"
    )
    best = max(
        run["cells"],
        key=lambda cell: cell["ratio_full_vs_incremental_min"],
    )
    print(
        f"recorded run {len(trajectory['runs'])} -> {options.out}\n"
        f"report -> {options.report}\n"
        f"best: n={best['claims']} "
        f"{best['ratio_full_vs_incremental_min']:.1f}x full vs "
        "incremental (min)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
