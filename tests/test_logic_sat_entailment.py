"""Tests for repro.logic.sat and repro.logic.entailment."""

from __future__ import annotations

import pytest

from repro.logic.entailment import (
    consistent,
    entails,
    equivalent_sat,
    independent,
    is_satisfiable,
    is_valid,
    minimal_inconsistent_subsets,
    premises_used,
)
from repro.logic.propositional import cnf_clauses, evaluate, parse
from repro.logic.sat import DpllSolver, solve, solve_formula


class TestDpll:
    def test_satisfiable_formula(self):
        result = solve_formula(parse("(a | b) & (~a | c)"))
        assert result.satisfiable
        assert result.assignment is not None

    def test_unsatisfiable_formula(self):
        result = solve_formula(parse("(a | b) & ~a & ~b"))
        assert not result.satisfiable
        assert result.assignment is None

    def test_model_actually_satisfies(self):
        formula = parse("(a | b) & (~b | c) & (c -> d)")
        result = solve_formula(formula)
        assert result.satisfiable
        from repro.logic.propositional import Atom, atoms_of

        valuation = {
            atom: result.assignment.get(atom.name, False)
            for atom in atoms_of(formula)
        }
        assert evaluate(formula, valuation)

    def test_empty_clause_set_is_sat(self):
        assert solve([]).satisfiable

    def test_empty_clause_is_unsat(self):
        assert not solve([frozenset()]).satisfiable

    def test_unit_propagation_counter(self):
        solver = DpllSolver(cnf_clauses(parse("a & (a -> b) & (b -> c)")))
        result = solver.solve()
        assert result.satisfiable
        assert result.propagations > 0

    def test_pigeonhole_2_into_1_unsat(self):
        # Two pigeons, one hole.
        formula = parse("(p1h1) & (p2h1) & ~(p1h1 & p2h1)")
        assert not solve_formula(formula).satisfiable

    def test_agrees_with_bruteforce_on_suite(self):
        from repro.logic.propositional import is_satisfiable_bruteforce

        suite = [
            "a",
            "~a & a",
            "(a -> b) & (b -> c) & a & ~c",
            "(a <-> b) & (b <-> c) & (a <-> ~c)",
            "(a | b | c) & (~a | ~b) & (~b | ~c) & (~a | ~c)",
            "true -> (a | ~a)",
        ]
        for text in suite:
            formula = parse(text)
            assert solve_formula(formula).satisfiable == \
                is_satisfiable_bruteforce(formula), text


class TestEntailment:
    def test_modus_ponens(self):
        assert entails([parse("p -> q"), parse("p")], parse("q"))

    def test_non_entailment(self):
        assert not entails([parse("p -> q"), parse("q")], parse("p"))

    def test_chain(self):
        premises = [parse("a -> b"), parse("b -> c"), parse("a")]
        assert entails(premises, parse("c"))

    def test_validity(self):
        assert is_valid(parse("p | ~p"))
        assert not is_valid(parse("p"))

    def test_satisfiability(self):
        assert is_satisfiable(parse("p & q"))
        assert not is_satisfiable(parse("p & ~p"))

    def test_consistency(self):
        assert consistent([parse("p"), parse("q")])
        assert not consistent([parse("p"), parse("~p")])

    def test_equivalence(self):
        assert equivalent_sat(parse("p -> q"), parse("~q -> ~p"))
        assert not equivalent_sat(parse("p -> q"), parse("q -> p"))

    def test_independence(self):
        assert independent([parse("p")], parse("q"))
        assert not independent([parse("p")], parse("p"))
        assert not independent([parse("p")], parse("~p"))


class TestMinimalInconsistentSubsets:
    def test_simple_core(self):
        formulas = [parse("p"), parse("~p"), parse("q")]
        cores = minimal_inconsistent_subsets(formulas)
        assert cores == [(0, 1)]

    def test_self_contradiction(self):
        formulas = [parse("p & ~p"), parse("q")]
        cores = minimal_inconsistent_subsets(formulas)
        assert cores == [(0,)]

    def test_consistent_set_has_no_cores(self):
        assert minimal_inconsistent_subsets(
            [parse("p"), parse("q")]
        ) == []

    def test_three_way_core(self):
        formulas = [parse("p -> q"), parse("p"), parse("~q")]
        cores = minimal_inconsistent_subsets(formulas)
        assert (0, 1, 2) in cores


class TestPremisesUsed:
    def test_minimal_support_found(self):
        premises = [
            parse("a"),
            parse("a -> goal"),
            parse("unrelated"),
        ]
        used = premises_used(premises, parse("goal"))
        assert set(used) == {0, 1}

    def test_non_entailing_returns_all(self):
        premises = [parse("a"), parse("b")]
        used = premises_used(premises, parse("c"))
        assert used == (0, 1)

    def test_redundant_evidence_pruned(self):
        # Two independent routes to the goal: only one survives greedy
        # minimisation.
        premises = [
            parse("a"), parse("a -> goal"),
            parse("b"), parse("b -> goal"),
        ]
        used = premises_used(premises, parse("goal"))
        assert len(used) == 2
