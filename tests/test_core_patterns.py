"""Tests for repro.core.patterns (Matsuno & Taguchi mechanism)."""

from __future__ import annotations

import pytest

from repro.core.argument import LinkKind
from repro.core.nodes import NodeType
from repro.core.patterns import (
    BaseSort,
    Binding,
    InstantiationError,
    ListSort,
    Parameter,
    Pattern,
    PatternElement,
    PatternLink,
    RangeSort,
    SetSort,
    hazard_avoidance_pattern,
)
from repro.core.wellformed import is_well_formed


class TestSorts:
    def test_base_sorts(self):
        assert BaseSort.INT.accepts(3)
        assert not BaseSort.INT.accepts(3.5)
        assert not BaseSort.INT.accepts(True)  # bools are not Ints
        assert BaseSort.STRING.accepts("x")
        assert BaseSort.FLOAT.accepts(2)
        assert BaseSort.BOOL.accepts(False)

    def test_set_sort(self):
        sort = SetSort("element", frozenset({"aileron", "elevator"}))
        assert sort.accepts("aileron")
        assert not sort.accepts("rudder")
        assert not sort.accepts(3)

    def test_range_sort_percent(self):
        # Matsuno's CPU-utilisation 0-100 example (§III.L).
        percent = RangeSort("Percent", 0, 100)
        assert percent.accepts(0)
        assert percent.accepts(100)
        assert percent.accepts(42.5)
        assert not percent.accepts(250)
        assert not percent.accepts(-1)
        assert not percent.accepts(True)

    def test_integral_range(self):
        sort = RangeSort("Count", 0, 10, integral=True)
        assert sort.accepts(5)
        assert not sort.accepts(5.5)

    def test_list_sort(self):
        sort = ListSort(BaseSort.STRING)
        assert sort.accepts(["a", "b"])
        assert not sort.accepts(["a", 3])
        assert not sort.accepts("a")


class TestBindingAnnotation:
    def test_matsuno_render(self):
        # '[2/x, /y, "hello"/z] represents that x and z are instantiated
        # with 2 and "hello", respectively, whereas y is not' (§III.L).
        parameters = [
            Parameter("x", BaseSort.INT),
            Parameter("y", BaseSort.INT),
            Parameter("z", BaseSort.STRING),
        ]
        binding = Binding.of(x=2, z="hello")
        assert binding.render(parameters) == '[2/x, /y, "hello"/z]'

    def test_bound_names(self):
        assert Binding.of(a=1, b=2).bound_names() == {"a", "b"}


@pytest.fixture
def pattern() -> Pattern:
    return hazard_avoidance_pattern()


class TestValidation:
    def test_builtin_pattern_is_structurally_sound(self, pattern):
        assert pattern.validate() == []

    def test_undeclared_placeholder_detected(self):
        broken = Pattern(
            name="broken",
            parameters=[Parameter("x", BaseSort.STRING)],
            elements=[PatternElement(
                "G1", NodeType.GOAL, "{x} and {ghost} are safe"
            )],
        )
        problems = broken.validate()
        assert any("ghost" in p for p in problems)

    def test_multiplicity_requires_list_sort(self):
        broken = Pattern(
            name="broken",
            parameters=[Parameter("items", BaseSort.STRING)],
            elements=[
                PatternElement("G1", NodeType.GOAL, "The top claim holds"),
                PatternElement("G2", NodeType.GOAL, "{item} is handled"),
            ],
            links=[PatternLink(
                "G1", "G2", LinkKind.SUPPORTED_BY,
                expand_over="items", loop_var="item",
            )],
        )
        problems = broken.validate()
        assert any("List" in p for p in problems)


class TestTypeChecking:
    def test_well_typed_binding(self, pattern):
        binding = Binding.of(
            system="ACME brake", hazards=["overrun"], residual_risk=10
        )
        assert pattern.type_check(binding) == []

    def test_wrong_type_rejected(self, pattern):
        binding = Binding.of(
            system=42, hazards=["overrun"], residual_risk=10
        )
        problems = pattern.type_check(binding)
        assert any("system" in p for p in problems)

    def test_range_violation_rejected(self, pattern):
        binding = Binding.of(
            system="ACME", hazards=["overrun"], residual_risk=250
        )
        problems = pattern.type_check(binding)
        assert any("residual_risk" in p for p in problems)

    def test_undeclared_parameter_rejected(self, pattern):
        binding = Binding.of(
            system="ACME", hazards=["overrun"], residual_risk=10,
            bogus=1,
        )
        problems = pattern.type_check(binding)
        assert any("bogus" in p for p in problems)

    def test_unbound_listed(self, pattern):
        binding = Binding.of(system="ACME")
        assert set(pattern.unbound(binding)) == {
            "hazards", "residual_risk"
        }


class TestInstantiation:
    def test_full_instantiation_well_formed(self, pattern):
        argument = pattern.instantiate(Binding.of(
            system="ACME brake",
            hazards=["overrun", "fire", "derail"],
            residual_risk=15,
        ))
        assert is_well_formed(argument)
        # One goal + solution per hazard, plus top, strategy, context, J.
        assert len(argument) == 4 + 2 * 3

    def test_multiplicity_suffixes(self, pattern):
        argument = pattern.instantiate(Binding.of(
            system="ACME", hazards=["overrun", "fire"], residual_risk=5
        ))
        assert "G_hazard_1" in argument
        assert "G_hazard_2" in argument
        assert "Sn_hazard_2" in argument

    def test_loop_variable_substitution(self, pattern):
        argument = pattern.instantiate(Binding.of(
            system="ACME", hazards=["overrun"], residual_risk=5
        ))
        assert "overrun" in argument.node("G_hazard_1").text

    def test_partial_binding_raises_with_annotation(self, pattern):
        with pytest.raises(InstantiationError) as info:
            pattern.instantiate(Binding.of(system="ACME"))
        assert "/hazards" in str(info.value)

    def test_type_error_raises(self, pattern):
        with pytest.raises(InstantiationError):
            pattern.instantiate(Binding.of(
                system="ACME", hazards=["overrun"], residual_risk=250
            ))

    def test_empty_hazard_list_rejected(self, pattern):
        with pytest.raises(InstantiationError, match="non-empty"):
            pattern.instantiate(Binding.of(
                system="ACME", hazards=[], residual_risk=5
            ))

    def test_semantic_misuse_passes_type_checking(self, pattern):
        # Matsuno's 'Railway hazards' for 'System X' (§III.L): the type
        # checker accepts it because it is a String — the limit of what
        # formalisation can catch.
        argument = pattern.instantiate(Binding.of(
            system="Railway hazards",
            hazards=["overrun"],
            residual_risk=5,
        ))
        assert "Railway hazards is acceptably safe" in \
            argument.node("G_top").text
