"""Tests for repro.logic.sequent and repro.logic.resolution."""

from __future__ import annotations

import pytest

from repro.logic.propositional import parse
from repro.logic.resolution import (
    FolClause,
    FolLiteral,
    ResolutionProver,
    prove,
)
from repro.logic.sequent import (
    Derivation,
    Sequent,
    is_valid_sequent,
    prove_sequent,
)
from repro.logic.terms import parse_atom


class TestSequentAxioms:
    def test_shared_atom_closes(self):
        assert is_valid_sequent([parse("p")], [parse("p")])

    def test_falsum_left_closes(self):
        assert is_valid_sequent([parse("false")], [parse("q")])

    def test_verum_right_closes(self):
        assert is_valid_sequent([], [parse("true")])


class TestSequentValidity:
    def test_modus_ponens(self):
        assert is_valid_sequent(
            [parse("p -> q"), parse("p")], [parse("q")]
        )

    def test_invalid_affirming_consequent(self):
        assert not is_valid_sequent(
            [parse("p -> q"), parse("q")], [parse("p")]
        )

    def test_excluded_middle(self):
        assert is_valid_sequent([], [parse("p | ~p")])

    def test_peirce(self):
        # Peirce's law is classically valid; LK proves it.
        assert is_valid_sequent([], [parse("((p -> q) -> p) -> p")])

    def test_de_morgan(self):
        assert is_valid_sequent(
            [parse("~(p | q)")], [parse("~p & ~q")]
        )

    def test_iff_expansion(self):
        assert is_valid_sequent(
            [parse("p <-> q"), parse("p")], [parse("q")]
        )

    def test_atom_not_valid(self):
        assert not is_valid_sequent([], [parse("p")])

    def test_agrees_with_truth_tables(self):
        from repro.logic.propositional import is_tautology

        suite = [
            "p -> p",
            "(p -> q) -> ((q -> r) -> (p -> r))",
            "(p & q) -> p",
            "p -> (p | q)",
            "(p -> q) <-> (~q -> ~p)",
            "p -> q",
            "(p | q) -> p",
            "~(p & ~p)",
        ]
        for text in suite:
            formula = parse(text)
            assert is_valid_sequent([], [formula]) == \
                is_tautology(formula), text


class TestDerivationShape:
    def test_closed_derivation(self):
        derivation = prove_sequent(
            Sequent((parse("p & q"),), (parse("p"),))
        )
        assert derivation.closed
        assert derivation.size() >= 2
        assert derivation.depth() >= 2

    def test_open_leaf_marked(self):
        derivation = prove_sequent(Sequent((), (parse("p"),)))
        assert not derivation.closed
        assert derivation.rule == "open"

    def test_render_contains_rules(self):
        derivation = prove_sequent(
            Sequent((parse("p -> q"), parse("p")), (parse("q"),))
        )
        text = derivation.render()
        assert "implies-left" in text
        assert "axiom" in text


def _lit(text: str, positive: bool = True) -> FolLiteral:
    return FolLiteral(parse_atom(text), positive)


class TestResolution:
    def test_ground_refutation(self):
        clauses = [
            FolClause.of(_lit("p")),
            FolClause.of(_lit("p", False)),
        ]
        proof = ResolutionProver().refute(clauses)
        assert proof.found

    def test_modus_ponens_refutation(self):
        # p, p -> q (i.e. ~p | q), ~q is unsatisfiable.
        clauses = [
            FolClause.of(_lit("p")),
            FolClause.of(_lit("p", False), _lit("q")),
            FolClause.of(_lit("q", False)),
        ]
        assert ResolutionProver().refute(clauses).found

    def test_satisfiable_set_not_refuted(self):
        clauses = [
            FolClause.of(_lit("p")),
            FolClause.of(_lit("q")),
        ]
        assert not ResolutionProver().refute(clauses).found

    def test_first_order_syllogism(self):
        # man(socrates); ~man(X) | mortal(X) |- mortal(socrates).
        axioms = [
            FolClause.of(_lit("man(socrates)")),
            FolClause.of(_lit("man(X)", False), _lit("mortal(X)")),
        ]
        proof = prove(axioms, parse_atom("mortal(socrates)"))
        assert proof.found

    def test_transitivity_chain(self):
        axioms = [
            FolClause.of(_lit("edge(a, b)")),
            FolClause.of(_lit("edge(b, c)")),
            FolClause.of(_lit("edge(X, Y)", False), _lit("path(X, Y)")),
            FolClause.of(
                _lit("edge(X, Y)", False),
                _lit("path(Y, Z)", False),
                _lit("path(X, Z)"),
            ),
        ]
        assert prove(axioms, parse_atom("path(a, c)")).found

    def test_unprovable_goal(self):
        axioms = [FolClause.of(_lit("edge(a, b)"))]
        proof = prove(axioms, parse_atom("edge(b, a)"), max_clauses=100)
        assert not proof.found

    def test_used_steps_trace_back_to_inputs(self):
        clauses = [
            FolClause.of(_lit("p")),
            FolClause.of(_lit("p", False), _lit("q")),
            FolClause.of(_lit("q", False)),
        ]
        proof = ResolutionProver().refute(clauses)
        used = proof.used_steps()
        assert used
        assert proof.steps[used[-1]].clause.is_empty
        assert all(proof.steps[i].rule == "input" for i in used[:3])

    def test_tautology_clauses_discarded(self):
        clauses = [
            FolClause.of(_lit("p"), _lit("p", False)),  # tautology
            FolClause.of(_lit("q")),
        ]
        proof = ResolutionProver().refute(clauses)
        assert not proof.found
        assert all(
            not step.clause.is_tautology() for step in proof.steps
        )

    def test_factoring(self):
        # p(X) | p(a) factors to p(a); with ~p(a) this refutes.
        clauses = [
            FolClause.of(_lit("p(X)"), _lit("p(a)")),
            FolClause.of(_lit("p(a)", False)),
        ]
        assert ResolutionProver().refute(clauses).found

    def test_literal_negation(self):
        literal = _lit("p(a)")
        assert literal.negate().positive is False
        assert literal.negate().negate() == literal
