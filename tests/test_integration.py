"""Integration tests: cross-module flows mirroring the paper's narrative."""

from __future__ import annotations

import random

import pytest

from repro.core import ArgumentBuilder, AssuranceCase, SafetyCriterion
from repro.core.evidence import EvidenceItem, EvidenceKind
from repro.core.hicases import auto_fold_to_depth
from repro.core.impact import evidence_impact
from repro.core.patterns import Binding, hazard_avoidance_pattern
from repro.core.wellformed import is_well_formed
from repro.fallacies.formal_detector import Verdict, detect
from repro.fallacies.injector import seed_greenwell_argument
from repro.fallacies.taxonomy import GREENWELL_FINDINGS
from repro.formalise.proof_to_argument import (
    abstract_argument,
    proof_to_argument,
)
from repro.formalise.security import haley_example
from repro.formalise.translator import formalise_argument
from repro.logic.bbn import BayesNet, noisy_or_cpt
from repro.logic.natural_deduction import haley_outer_proof
from repro.notation.cae import cae_to_gsn, gsn_to_cae
from repro.notation.gsn_text import parse, serialise
from repro.notation.prose import render_prose


class TestPatternToCaseToFormalisationFlow:
    """Pattern -> argument -> case -> Rushby formalisation -> probing."""

    def test_end_to_end(self):
        pattern = hazard_avoidance_pattern()
        argument = pattern.instantiate(Binding.of(
            system="ACME light-rail brake",
            hazards=["overrun", "fire", "door-trap"],
            residual_risk=12,
        ))
        assert is_well_formed(argument)

        case = AssuranceCase(
            "acme-brake", argument,
            SafetyCriterion("Risk within budget", "risk_fraction", 0.12),
        )
        for index in range(1, 4):
            case.add_evidence(
                EvidenceItem(
                    f"ev{index}", EvidenceKind.FAULT_TREE_ANALYSIS,
                    f"analysis {index}",
                ),
                cited_by=f"Sn_hazard_{index}",
            )
        assert case.integrity_report().ok

        formalisation = formalise_argument(argument)
        formalisation.assent_all()
        assert formalisation.check()
        # Every hazard's mitigation evidence is load-bearing.
        assert formalisation.load_bearing_evidence() == [
            "Sn_hazard_1", "Sn_hazard_2", "Sn_hazard_3"
        ]
        # Withdrawing any one breaks the top-level proof.
        assert not formalisation.what_if_without("Sn_hazard_2")

    def test_impact_matches_probe(self):
        pattern = hazard_avoidance_pattern()
        argument = pattern.instantiate(Binding.of(
            system="ACME", hazards=["overrun", "fire"], residual_risk=9
        ))
        case = AssuranceCase("impact", argument)
        case.add_evidence(
            EvidenceItem("ev1", EvidenceKind.TESTING, "t"),
            cited_by="Sn_hazard_1",
        )
        report = evidence_impact(case, "ev1")
        assert report.root_reached
        formalisation = formalise_argument(argument)
        formalisation.assent_all()
        # Graph tracing and proof probing agree here: the evidence is
        # load-bearing and its claims reach the root.
        assert not formalisation.what_if_without("Sn_hazard_1")


class TestNotationPipeline:
    """The same argument through every concrete syntax."""

    def test_all_renderings_consistent(self, hazard_argument):
        text_form = serialise(hazard_argument)
        assert parse(text_form) == hazard_argument
        cae = gsn_to_cae(hazard_argument)
        assert cae_to_gsn(cae) == hazard_argument
        prose = render_prose(hazard_argument)
        for goal in hazard_argument.goals:
            # Every claim surfaces in the prose rendering.
            fragment = goal.text.rstrip(".")[:30]
            assert fragment.split()[2] in prose

    def test_views_shrink_monotonically(self, hazard_argument):
        full = len(hazard_argument)
        view2 = auto_fold_to_depth(hazard_argument, 2)
        assert view2.visible_size() <= full


class TestGreenwellPipeline:
    """Seed the published fallacy distribution, then measure detection."""

    def _base(self) -> "ArgumentBuilder":
        builder = ArgumentBuilder("greenwell-base")
        top = builder.goal("The system is acceptably safe")
        strategy = builder.strategy(
            "Argument over identified hazards", under=top
        )
        for index in range(12):
            goal = builder.goal(
                f"Hazard H{index} is acceptably managed", under=strategy
            )
            builder.solution(f"Mitigation analysis {index}", under=goal)
        return builder.build()

    def test_formal_checker_finds_nothing_to_reject(self):
        # 45 injected informal fallacies; the structural checker (minus
        # the text-shape heuristic) accepts the argument, and the
        # formalised rendering still proves its root: formal machinery
        # is blind to all of it (§V.B).
        rng = random.Random(20150601)
        mutated, records = seed_greenwell_argument(self._base(), rng)
        assert len(records) == 45

        from repro.core.wellformed import GSN_STANDARD_RULES, RuleSet

        structural = RuleSet(
            "structural-only",
            tuple(
                rule for rule in GSN_STANDARD_RULES.rules
                if rule.name != "goal-not-proposition"
            ),
        )
        assert structural.is_well_formed(mutated)

        formalisation = formalise_argument(mutated)
        formalisation.assent_all()
        assert formalisation.check()

    def test_distribution_preserved(self):
        rng = random.Random(77)
        _, records = seed_greenwell_argument(self._base(), rng)
        counts: dict = {}
        for record in records:
            counts[record.fallacy] = counts.get(record.fallacy, 0) + 1
        assert counts == dict(GREENWELL_FINDINGS)


class TestHaleyFullFramework:
    """Outer proof + inner Toulmin + generated GSN, end to end."""

    def test_proof_to_argument_to_abstraction(self):
        example = haley_example()
        assert example.check().proof_checks
        generated = proof_to_argument(example.outer, "HR system")
        abstracted = abstract_argument(generated)
        assert len(abstracted) <= len(generated)
        # The conclusion goal survives abstraction.
        assert any(
            "(D -> H)" in node.text for node in abstracted.nodes
        )

    def test_outer_argument_formal_validation(self):
        example = haley_example()
        from repro.fallacies.formal_detector import FormalArgument

        formal = FormalArgument(
            tuple(p for p in example.outer.premises),
            example.outer.conclusion,
        )
        assert detect(formal).verdict is Verdict.VALID


class TestBbnRedHerring:
    """§V.B: an asserted rule launders an irrelevant premise into
    mechanically-assessed confidence."""

    def test_confidence_inflation(self):
        # Base net: claim supported by one relevant evidence source.
        honest = BayesNet()
        honest.add_prior("fta_good", 0.8)
        honest.add(noisy_or_cpt(
            "claim", ("fta_good",), (0.85,), leak=0.02
        ))
        base_confidence = honest.query("claim", {"fta_good": True})

        # Same net plus a red-herring premise wired in by an asserted
        # rule ('the lab was refurbished').
        inflated = BayesNet()
        inflated.add_prior("fta_good", 0.8)
        inflated.add_prior("lab_refurbished", 0.95)
        inflated.add(noisy_or_cpt(
            "claim", ("fta_good", "lab_refurbished"), (0.85, 0.4),
            leak=0.02,
        ))
        inflated_confidence = inflated.query(
            "claim", {"fta_good": True, "lab_refurbished": True}
        )
        assert inflated_confidence > base_confidence


class TestSurveyToExperimentHandoff:
    """The survey's findings gate which experiments matter."""

    def test_experiment_targets_derive_from_survey(self):
        from repro.survey import (
            papers_formalising_pattern_structure,
            papers_informal_first,
        )

        # §VI.B exists because three papers formalise informally-built
        # arguments; §VI.D because three formalise pattern structure.
        assert len(papers_informal_first()) == 3
        assert len(papers_formalising_pattern_structure()) == 3

    def test_full_survey_and_one_experiment(self):
        from repro.experiments import (
            InstantiationStudyConfig,
            run_instantiation_study,
        )
        from repro.survey import run_survey

        outcome = run_survey()
        assert outcome.matches_published_table()
        result = run_instantiation_study(
            InstantiationStudyConfig(subjects_per_group=4, tasks=2)
        )
        assert result.tool_rejected_every_typing_error
