"""Tests for the repro.fallacies package — the paper's §IV-V machinery."""

from __future__ import annotations

import random

import pytest

from repro.core.builder import ArgumentBuilder
from repro.core.case import AssuranceCase
from repro.core.evidence import EvidenceItem, EvidenceKind
from repro.core.wellformed import is_well_formed
from repro.fallacies.formal_detector import (
    AnalysisResult,
    FormalArgument,
    Verdict,
    detect,
    detect_conversion,
    detect_syllogism,
)
from repro.fallacies.informal import (
    desert_bank_equivocation,
    hasty_generalisation_heuristic,
    homonym_heuristic,
    ignorance_heuristic,
    wrong_reasons_check,
)
from repro.fallacies.injector import (
    inject_formal,
    inject_informal,
    make_formal_argument,
    seed_greenwell_argument,
)
from repro.fallacies.taxonomy import (
    CATALOGUE,
    FallacyCategory,
    FormalFallacy,
    GREENWELL_FINDINGS,
    InformalFallacy,
    describe,
    greenwell_total,
)
from repro.logic.propositional import parse
from repro.logic.syllogism import (
    CategoricalProposition,
    PropositionForm,
    socrates_syllogism,
)


class TestTaxonomy:
    def test_eight_formal_fallacies(self):
        assert len(FormalFallacy) == 8

    def test_greenwell_distribution_matches_paper(self):
        # §V.B items (a)-(g).
        assert GREENWELL_FINDINGS[
            InformalFallacy.DRAWING_WRONG_CONCLUSION] == 3
        assert GREENWELL_FINDINGS[
            InformalFallacy.FALLACIOUS_USE_OF_LANGUAGE] == 10
        assert GREENWELL_FINDINGS[
            InformalFallacy.FALLACY_OF_COMPOSITION] == 2
        assert GREENWELL_FINDINGS[
            InformalFallacy.HASTY_INDUCTIVE_GENERALISATION] == 4
        assert GREENWELL_FINDINGS[
            InformalFallacy.OMISSION_OF_KEY_EVIDENCE] == 5
        assert GREENWELL_FINDINGS[InformalFallacy.RED_HERRING] == 5
        assert GREENWELL_FINDINGS[
            InformalFallacy.USING_WRONG_REASONS] == 16
        assert greenwell_total() == 45

    def test_no_observed_kind_is_machine_detectable(self):
        # The paper's central point: 'none of seven kinds of fallacies
        # found is strictly formal'.
        for kind in GREENWELL_FINDINGS:
            assert not CATALOGUE[kind].machine_detectable

    def test_every_formal_fallacy_is_machine_detectable(self):
        for kind in FormalFallacy:
            info = describe(kind)
            assert info.category is FallacyCategory.FORMAL
            assert info.machine_detectable

    def test_catalogue_covers_both_enums(self):
        for kind in list(FormalFallacy) + list(InformalFallacy):
            assert kind in CATALOGUE


class TestFormalDetector:
    def test_valid_argument(self):
        argument = FormalArgument(
            (parse("p -> q"), parse("p")), parse("q")
        )
        result = detect(argument)
        assert result.verdict is Verdict.VALID
        assert not result.findings

    def test_begging_the_question(self):
        argument = FormalArgument(
            (parse("c"), parse("p")), parse("c")
        )
        result = detect(argument)
        assert FormalFallacy.BEGGING_THE_QUESTION in result.fallacies

    def test_begging_detected_up_to_equivalence(self):
        argument = FormalArgument(
            (parse("~~c"),), parse("c")
        )
        result = detect(argument)
        assert FormalFallacy.BEGGING_THE_QUESTION in result.fallacies

    def test_incompatible_premises(self):
        argument = FormalArgument(
            (parse("p"), parse("~p"), parse("q")), parse("r")
        )
        result = detect(argument)
        assert FormalFallacy.INCOMPATIBLE_PREMISES in result.fallacies

    def test_premise_conclusion_contradiction(self):
        argument = FormalArgument((parse("p"),), parse("~p"))
        result = detect(argument)
        assert FormalFallacy.PREMISE_CONCLUSION_CONTRADICTION in \
            result.fallacies

    def test_denying_the_antecedent(self):
        argument = FormalArgument(
            (parse("p -> q"), parse("~p")), parse("~q")
        )
        result = detect(argument)
        assert result.verdict is Verdict.FALLACIOUS
        assert FormalFallacy.DENYING_THE_ANTECEDENT in result.fallacies

    def test_affirming_the_consequent(self):
        argument = FormalArgument(
            (parse("p -> q"), parse("q")), parse("p")
        )
        result = detect(argument)
        assert FormalFallacy.AFFIRMING_THE_CONSEQUENT in result.fallacies

    def test_plain_non_sequitur(self):
        argument = FormalArgument((parse("p"),), parse("q"))
        result = detect(argument)
        assert result.verdict is Verdict.NON_SEQUITUR
        assert not result.findings

    def test_valid_modus_tollens_not_flagged(self):
        # Similar surface shape to denying the antecedent, but valid.
        argument = FormalArgument(
            (parse("p -> q"), parse("~q")), parse("~p")
        )
        result = detect(argument)
        assert result.verdict is Verdict.VALID

    def test_wrong_reasons_asserted_rule_passes(self):
        # §V.B: 'code_reviewed & unit_tests_passed => meets_deadlines'
        # can simply be asserted; the checker then finds the argument
        # VALID.  Formal validation cannot see that the rule is wrong.
        argument = FormalArgument(
            (
                parse("code_reviewed"),
                parse("unit_tests_passed"),
                parse("code_reviewed & unit_tests_passed -> "
                      "meets_deadlines"),
            ),
            parse("meets_deadlines"),
        )
        assert detect(argument).verdict is Verdict.VALID

    def test_syllogism_detection(self):
        assert detect_syllogism(socrates_syllogism()).verdict is \
            Verdict.VALID
        from repro.logic.syllogism import Syllogism

        undistributed = Syllogism(
            CategoricalProposition(PropositionForm.A, "dogs", "mammals"),
            CategoricalProposition(PropositionForm.A, "cats", "mammals"),
            CategoricalProposition(PropositionForm.A, "cats", "dogs"),
        )
        result = detect_syllogism(undistributed)
        assert FormalFallacy.UNDISTRIBUTED_MIDDLE in result.fallacies

    def test_false_conversion(self):
        premise = CategoricalProposition(PropositionForm.A, "s", "p")
        from repro.logic.syllogism import converse

        result = detect_conversion(premise, converse(premise))
        assert FormalFallacy.FALSE_CONVERSION in result.fallacies
        valid_premise = CategoricalProposition(
            PropositionForm.E, "s", "p"
        )
        assert detect_conversion(
            valid_premise, converse(valid_premise)
        ).verdict is Verdict.VALID


class TestInjector:
    def test_every_propositional_injection_detected(self, rng):
        for fallacy in (
            FormalFallacy.BEGGING_THE_QUESTION,
            FormalFallacy.INCOMPATIBLE_PREMISES,
            FormalFallacy.PREMISE_CONCLUSION_CONTRADICTION,
            FormalFallacy.DENYING_THE_ANTECEDENT,
            FormalFallacy.AFFIRMING_THE_CONSEQUENT,
        ):
            for _ in range(5):
                seeded = inject_formal(rng, fallacy)
                result = detect(seeded.argument)
                assert fallacy in result.fallacies, fallacy

    def test_clean_arguments_pass(self, rng):
        for _ in range(10):
            argument = make_formal_argument(rng, valid=True,
                                            size=rng.randrange(2, 6))
            assert detect(argument).verdict is Verdict.VALID

    def test_syllogistic_injection_rejected(self, rng):
        with pytest.raises(ValueError):
            inject_formal(rng, FormalFallacy.UNDISTRIBUTED_MIDDLE)

    def test_informal_injection_records_location(self, rng,
                                                  hazard_argument):
        mutated, record = inject_informal(
            hazard_argument, InformalFallacy.RED_HERRING, rng
        )
        assert record.fallacy is InformalFallacy.RED_HERRING
        assert record.location in mutated
        # The original is untouched.
        assert record.location not in hazard_argument

    def test_informal_injections_evade_formal_checks(self, rng,
                                                     hazard_argument):
        # Injected informal fallacies leave the argument syntactically
        # well-formed — nothing for a formal checker to find (§IV.C).
        for fallacy in (
            InformalFallacy.RED_HERRING,
            InformalFallacy.USING_WRONG_REASONS,
            InformalFallacy.FALLACY_OF_COMPOSITION,
            InformalFallacy.ARGUING_FROM_IGNORANCE,
        ):
            mutated, _ = inject_informal(hazard_argument, fallacy, rng)
            assert is_well_formed(mutated), fallacy

    def test_greenwell_seeding_counts(self, rng):
        builder = ArgumentBuilder("base")
        top = builder.goal("The system is acceptably safe")
        strategy = builder.strategy("Argument over hazards", under=top)
        for index in range(10):
            goal = builder.goal(
                f"Hazard H{index} is acceptably managed", under=strategy
            )
            builder.solution(f"Analysis record AR-{index}", under=goal)
        base = builder.build()
        mutated, records = seed_greenwell_argument(base, rng)
        assert len(records) == 45
        by_kind: dict[InformalFallacy, int] = {}
        for record in records:
            by_kind[record.fallacy] = by_kind.get(record.fallacy, 0) + 1
        assert by_kind == dict(GREENWELL_FINDINGS)

    def test_greenwell_seeding_deterministic(self):
        builder = ArgumentBuilder("base")
        top = builder.goal("The system is acceptably safe")
        strategy = builder.strategy("Argument over hazards", under=top)
        for index in range(10):
            goal = builder.goal(
                f"Hazard H{index} is acceptably managed", under=strategy
            )
            builder.solution(f"Analysis record AR-{index}", under=goal)
        base = builder.build()
        _, records_a = seed_greenwell_argument(base, random.Random(3))
        _, records_b = seed_greenwell_argument(base, random.Random(3))
        assert [str(r) for r in records_a] == [str(r) for r in records_b]


class TestDesertBank:
    def test_formally_derivable_but_false(self):
        witness = desert_bank_equivocation()
        assert witness.formally_derivable
        assert not witness.real_world_true
        assert not witness.is_sound

    def test_explanation_names_both_senses(self):
        text = desert_bank_equivocation().explain()
        assert "financial institution" in text
        assert "river" in text


class TestHeuristics:
    def test_homonym_heuristic_false_positive(self):
        # Consistent reuse of 'bus' (data bus in both nodes) is flagged
        # anyway — senses are invisible to the machine.
        builder = ArgumentBuilder("fp")
        top = builder.goal("The data bus is acceptably reliable")
        strategy = builder.strategy("Argument over bus fault modes",
                                    under=top)
        goal = builder.goal("The bus parity check detects corruption",
                            under=strategy)
        builder.solution("Parity injection test report", under=goal)
        flags = homonym_heuristic(builder.build())
        assert flags  # false positives, by construction

    def test_homonym_heuristic_false_negative(self):
        # An equivocation on a term absent from the lexicon is missed.
        builder = ArgumentBuilder("fn")
        top = builder.goal(
            "Every critical operation is covered by a second check"
        )
        strategy = builder.strategy(
            "Argument over the independent check", under=top
        )
        goal = builder.goal(
            "A second check arrives with each payment instruction",
            under=strategy,
        )  # 'check' as bank draft vs verification: not in lexicon
        builder.solution("Payment workflow audit", under=goal)
        flags = homonym_heuristic(builder.build())
        assert flags == []

    def test_hasty_generalisation_heuristic(self, rng, hazard_argument):
        mutated, record = inject_informal(
            hazard_argument,
            InformalFallacy.HASTY_INDUCTIVE_GENERALISATION, rng,
        )
        flags = hasty_generalisation_heuristic(mutated)
        assert any(f.node_id == record.location for f in flags)

    def test_ignorance_heuristic_flags_sound_arguments_too(self):
        # §IV.B's householder: sound, but flagged.
        builder = ArgumentBuilder("garage")
        top = builder.goal("There is no car in the garage")
        strategy = builder.strategy(
            "Argument from direct inspection", under=top
        )
        goal = builder.goal(
            "No car was observed after opening the garage and looking "
            "inside", under=strategy,
        )
        builder.solution("Inspection note", under=goal)
        flags = ignorance_heuristic(builder.build())
        assert flags

    def test_wrong_reasons_check_with_ontology(self, hazard_argument):
        case = AssuranceCase("wr", hazard_argument)
        case.add_evidence(
            EvidenceItem("unit_tests", EvidenceKind.TESTING,
                         "unit test results"),
            cited_by="Sn1",
        )
        flags = wrong_reasons_check(case, {"G2": "timing"})
        assert flags
        assert flags[0].fallacy is InformalFallacy.USING_WRONG_REASONS

    def test_wrong_reasons_needs_the_ontology(self, hazard_argument):
        # Without a topic judgment there is nothing to check — the
        # 'mechanical' check is cached human knowledge.
        case = AssuranceCase("wr", hazard_argument)
        case.add_evidence(
            EvidenceItem("unit_tests", EvidenceKind.TESTING,
                         "unit test results"),
            cited_by="Sn1",
        )
        assert wrong_reasons_check(case, {}) == []
