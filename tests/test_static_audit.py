"""The rule-scope auditor, proven against a gallery of unsound rules.

Two halves of the acceptance criterion:

* every **shipped** rule set audits clean — the engine's own rules keep
  the locality contract that makes the four execution modes agree;
* every **deliberately unsound** gallery rule below is flagged with the
  correct finding kind *and* a source location pointing into this file.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis_static import (
    KIND_HYDRATION,
    KIND_MUTATION,
    KIND_NONDETERMINISM,
    KIND_UNDECLARED,
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    audit_rule,
    audit_streaming_scan,
    errors_only,
)
from repro.analysis_static.gate import (
    SHIPPED_FINDINGS,
    SHIPPED_RULE_SETS,
    STREAMING_SCANS,
    AuditGateError,
    assert_shipped_clean,
)
from repro.core.analysis import Violation, global_rule, per_link, per_node
from repro.core.wellformed import (
    DENNEY_PAI_RULES,
    GSN_STANDARD_RULES,
    Rule,
    RuleSet,
    scoped_from_legacy,
)
from repro.fallacies.informal import PER_NODE_HEURISTICS

pytestmark = pytest.mark.static


# -- the gallery: one deliberately unsound rule per finding kind ------------
#
# Module-level functions so ``inspect.getsource`` sees real file lines;
# the location assertions below anchor on each function's first line.


def _gallery_undeclared(node, ctx) -> "list[Violation]":
    # A NODE-scope rule may ask only ctx.cites_support; node_type is a
    # LINK-scope service.
    if ctx.node_type(node.identifier) is None:
        return [Violation("g-undeclared", node.identifier, "bad")]
    return []


def _gallery_hydrating(node, ctx) -> "list[Violation]":
    argument = ctx.argument()  # the hydration escape hatch
    return [] if argument else []


def _gallery_mutating(node, ctx) -> "list[Violation]":
    ctx.scratch = {}
    node.metadata.update({"audited": True})
    return []


def _gallery_random(node, ctx) -> "list[Violation]":
    if random.random() < 0.5:
        return [Violation("g-random", node.identifier, "flaky")]
    return []


def _gallery_set_iteration(ctx) -> "list[Violation]":
    out: "list[Violation]" = []
    pending = {root for root in ctx.roots()}
    for identifier in pending:  # hash order feeds violation order
        out.append(Violation("g-set-iter", identifier, "unordered"))
    return out


def _nondet_helper(context) -> float:
    import time

    return time.time()


def _gallery_helper_nondet(ctx) -> "list[Violation]":
    _nondet_helper(ctx)  # nondeterminism one call level down
    return []


def _gallery_link_overreach(link, ctx) -> "list[Violation]":
    # LINK scope declares name/node_type; cites_support is NODE-scope.
    if ctx.cites_support(link.source):
        return [Violation("g-link-overreach", link.source, "bad")]
    return []


GALLERY = [
    # (rule, expected kind, the function carrying the defect)
    (
        per_node("g-undeclared", "reads node_type", _gallery_undeclared),
        KIND_UNDECLARED,
        _gallery_undeclared,
    ),
    (
        per_node("g-hydrating", "hydrates", _gallery_hydrating),
        KIND_HYDRATION,
        _gallery_hydrating,
    ),
    (
        per_node("g-mutating", "mutates", _gallery_mutating),
        KIND_MUTATION,
        _gallery_mutating,
    ),
    (
        per_node("g-random", "rolls dice", _gallery_random),
        KIND_NONDETERMINISM,
        _gallery_random,
    ),
    (
        global_rule("g-set-iter", "set order", _gallery_set_iteration),
        KIND_NONDETERMINISM,
        _gallery_set_iteration,
    ),
    (
        global_rule("g-helper", "nondet helper", _gallery_helper_nondet),
        KIND_NONDETERMINISM,
        _nondet_helper,
    ),
    (
        per_link("g-link-overreach", "overreaches", _gallery_link_overreach),
        KIND_UNDECLARED,
        _gallery_link_overreach,
    ),
]


@pytest.mark.parametrize(
    "rule, kind, defective_fn",
    GALLERY,
    ids=[rule.name for rule, _, _ in GALLERY],
)
def test_gallery_rule_flagged_with_kind_and_location(
    rule, kind, defective_fn
) -> None:
    findings = audit_rule(rule)
    matching = [f for f in findings if f.kind == kind]
    assert matching, (
        f"{rule.name} should earn a {kind} finding, got "
        f"{[str(f) for f in findings]}"
    )
    finding = matching[0]
    assert finding.rule.startswith(rule.name)
    assert finding.severity == SEVERITY_ERROR
    assert finding.path == __file__
    first = defective_fn.__code__.co_firstlineno
    body_lines = [
        line for _, _, line in defective_fn.__code__.co_lines()
        if line is not None
    ]
    last = max(body_lines + [first])
    assert first <= finding.line <= last, (
        f"finding at line {finding.line}, function spans "
        f"{first}..{last}"
    )
    assert finding.location == f"{__file__}:{finding.line}"


def test_mutation_gallery_flags_both_ctx_and_subject() -> None:
    rule = per_node("g-mutating", "mutates", _gallery_mutating)
    kinds = [
        f.message for f in audit_rule(rule) if f.kind == KIND_MUTATION
    ]
    assert any("ctx" in message for message in kinds)
    assert any("subject" in message for message in kinds)


def test_closure_based_rule_is_audited_through_the_cell() -> None:
    threshold = 0.5

    def flaky(node, ctx) -> "list[Violation]":
        if random.random() < threshold:
            return [Violation("g-closure", node.identifier, "flaky")]
        return []

    findings = audit_rule(per_node("g-closure", "closure", flaky))
    assert any(f.kind == KIND_NONDETERMINISM for f in findings)


def test_legacy_adapter_earns_hydration_warning_not_error() -> None:
    legacy = Rule(
        "legacy-everything",
        "a whole-argument rule",
        lambda argument: [],
    )
    adapted = scoped_from_legacy(legacy)
    findings = audit_rule(adapted)
    hydration = [f for f in findings if f.kind == KIND_HYDRATION]
    assert hydration, "the adapter's ctx.argument() call must surface"
    assert all(f.severity == SEVERITY_WARNING for f in hydration)
    assert not errors_only(hydration)


def test_streaming_scan_flagging_ensure_argument() -> None:
    from repro.fallacies.informal import hasty_generalisation_heuristic

    findings = audit_streaming_scan(hasty_generalisation_heuristic)
    assert any(f.kind == KIND_HYDRATION for f in findings), (
        "the documented hydrating heuristic must be flagged when held "
        "to the streaming contract"
    )


# -- the shipped sets must be clean ------------------------------------------


@pytest.mark.parametrize(
    "rule_set", SHIPPED_RULE_SETS, ids=[rs.name for rs in SHIPPED_RULE_SETS]
)
def test_shipped_rule_set_audits_clean(rule_set: RuleSet) -> None:
    assert rule_set.audit() == []


@pytest.mark.parametrize(
    "scan", STREAMING_SCANS, ids=[s.__name__ for s in STREAMING_SCANS]
)
def test_shipped_streaming_scan_audits_clean(scan) -> None:
    assert audit_streaming_scan(scan) == []


def test_gate_import_found_nothing_and_passes() -> None:
    assert SHIPPED_FINDINGS == []
    assert_shipped_clean()  # must not raise


def test_gate_raises_listing_every_error() -> None:
    rule = per_node("g-hydrating", "hydrates", _gallery_hydrating)
    with pytest.raises(AuditGateError, match="g-hydrating") as excinfo:
        assert_shipped_clean(audit_rule(rule))
    assert "hydration-forcing" in str(excinfo.value)


def test_gate_tracks_all_shipped_rule_sets() -> None:
    assert GSN_STANDARD_RULES in SHIPPED_RULE_SETS
    assert DENNEY_PAI_RULES in SHIPPED_RULE_SETS
    assert STREAMING_SCANS == PER_NODE_HEURISTICS
