"""Durability and multi-editor concurrency of the sharded store.

The bugs this suite pins down (and their fixes):

* **durability** — sealed shard/segment/manifest files must be fsynced
  *before* their content-addressed rename and the directory *after* the
  manifest swap, else a power loss can publish a name with torn content
  or make the commit point itself vanish (``set_durability`` /
  ``REPRO_STORE_FSYNC=0`` is the test opt-out);
* **tmp collisions** — in-flight files carry a pid+random infix, so two
  processes saving into one directory can never scribble over each
  other's half-written data (and ``gc()``/fsck recognise both the
  unique and the legacy deterministic form);
* **lost updates** — ``save(journal=True)`` onto a store that moved
  past the argument's baseline raises
  :class:`~repro.store.StoreConflictError` (``force=True`` overwrites
  deliberately) instead of silently rewriting another writer's commit;
* **torn-overlay refresh** — a reader that recovered a torn journal
  tail must rebuild, not extend, its overlay when the journal grows or
  the segment is repaired in place;
* and the **multi-process torture test**: concurrent writer processes
  and snapshot readers over one directory — every committed update
  survives, no reader ever observes a torn generation, and the final
  store is fsck-clean.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path
from typing import Any

import pytest

from conftest import store_files
from repro.core.argument import Argument, LinkKind
from repro.core.nodes import Node, NodeType
from repro.store import (
    StoreConflictError,
    StoredArgument,
    set_durability,
)
from repro.store import writer as writer_module
from repro.store.format import MANIFEST_NAME, tmp_name

pytestmark = pytest.mark.service

SRC = str(Path(__file__).resolve().parent.parent / "src")


def small_argument(name: str = "concurrency-case") -> Argument:
    argument = Argument(name)
    argument.add_node(Node("G0", NodeType.GOAL, "The claim holds"))
    argument.add_node(Node("Sn0", NodeType.SOLUTION, "Evidence record"))
    argument.add_link("G0", "Sn0", LinkKind.SUPPORTED_BY)
    return argument


class _FsyncLog:
    """Record fsync and rename events, in order, with resolved names."""

    def __init__(self, monkeypatch: Any) -> None:
        self.events: "list[tuple[str, str]]" = []
        original_fsync = os.fsync
        original_replace = os.replace

        def logging_fsync(fd: int) -> None:
            try:
                target = os.readlink(f"/proc/self/fd/{fd}")
            except OSError:  # pragma: no cover - non-procfs platform
                target = "?"
            self.events.append(("fsync", target))
            original_fsync(fd)

        def logging_replace(src: Any, dst: Any, **kwargs: Any) -> None:
            original_replace(src, dst, **kwargs)
            self.events.append(("rename", os.fspath(dst)))

        monkeypatch.setattr(os, "fsync", logging_fsync)
        monkeypatch.setattr(os, "replace", logging_replace)

    def fsyncs_before(self, rename_suffix: str) -> "list[str]":
        """Paths fsynced before the first rename ending in the suffix."""
        synced: "list[str]" = []
        for kind, target in self.events:
            if kind == "fsync":
                synced.append(target)
            elif target.endswith(rename_suffix):
                return synced
        raise AssertionError(f"no rename to ...{rename_suffix} happened")


class TestDurability:
    def test_save_fsyncs_files_before_rename_and_directory_after(
        self, tmp_path, monkeypatch
    ):
        store = tmp_path / "case.store"
        set_durability(True)  # the autouse fixture turned it off
        try:
            log = _FsyncLog(monkeypatch)
            manifest = small_argument().save(store)
        finally:
            set_durability(False)
        # Every sealed shard's rename was preceded by an fsync of the
        # tmp file that became it.
        for name in manifest["shards"]:
            synced = log.fsyncs_before(name)
            assert any(".tmp" in path for path in synced), (
                f"shard {name} was renamed without fsyncing its tmp file"
            )
        # The manifest swap: tmp fsynced before the rename, the
        # *directory* fsynced after it.
        manifest_index = next(
            index for index, (kind, target) in enumerate(log.events)
            if kind == "rename" and target.endswith(MANIFEST_NAME)
        )
        after = log.events[manifest_index + 1:]
        assert ("fsync", str(store)) in after, (
            "the store directory must be fsynced after the manifest "
            "swap, or the commit can vanish on power loss"
        )

    def test_journal_append_fsyncs_the_segment(
        self, tmp_path, monkeypatch
    ):
        store = tmp_path / "case.store"
        argument = small_argument()
        argument.save(store)
        argument.add_node(Node("X1", NodeType.GOAL, "A late claim holds"))
        set_durability(True)
        try:
            log = _FsyncLog(monkeypatch)
            manifest = argument.save(store, journal=True)
        finally:
            set_durability(False)
        (segment,) = manifest["journal"]
        assert any(".tmp" in path for path in log.fsyncs_before(segment)), (
            "journal segment renamed without fsyncing its content first"
        )

    def test_opt_out_skips_every_fsync(self, tmp_path, monkeypatch):
        calls: "list[int]" = []
        original = os.fsync
        monkeypatch.setattr(
            os, "fsync", lambda fd: (calls.append(fd), original(fd))
        )
        set_durability(False)
        small_argument().save(tmp_path / "case.store")
        assert not calls, "durability off must mean zero fsync calls"

    def test_set_durability_returns_previous_value(self):
        previous = set_durability(True)
        assert set_durability(previous) is True


class TestTmpCollisions:
    def test_tmp_names_are_unique_per_call(self):
        names = {tmp_name("nodes-0003") for _ in range(64)}
        assert len(names) == 64
        for name in names:
            assert name.startswith("nodes-0003.")
            assert name.endswith(".tmp")

    def test_gc_sweeps_unique_and_legacy_tmp_forms(self, tmp_path):
        store = tmp_path / "case.store"
        small_argument().save(store)
        legacy = "links-0002.tmp"
        unique = tmp_name("nodes-0001")
        manifest_tmp = tmp_name(MANIFEST_NAME)
        for name in (legacy, unique, manifest_tmp):
            (store / name).write_bytes(b"half-written junk")
        removed = StoredArgument(store).gc()
        assert set(removed) == {legacy, unique, manifest_tmp}

    def test_interrupted_writer_cannot_be_overwritten_midflight(
        self, tmp_path, monkeypatch
    ):
        """A second save's in-flight files never share the first's names.

        Simulated by capturing the tmp paths a save opens and asserting
        a concurrent save in the same directory opens disjoint ones —
        the exact collision the deterministic ``<base>.tmp`` scheme had.
        """
        store = tmp_path / "case.store"
        opened: "list[str]" = []
        original_init = writer_module._ShardWriter.__init__

        def spying_init(self, directory, base, compression=None):
            original_init(self, directory, base, compression)
            opened.append(self._tmp.name)

        monkeypatch.setattr(writer_module._ShardWriter, "__init__", spying_init)
        small_argument().save(store)
        first = set(opened)
        opened.clear()
        small_argument().save(store)
        assert first.isdisjoint(opened), (
            "two saves opened the same in-flight filename"
        )


class TestCrashWindows:
    def _crash_on_rename_to(self, monkeypatch, suffix: str) -> None:
        original = os.replace

        def crashing_replace(src: Any, dst: Any, **kwargs: Any) -> None:
            if os.fspath(dst).endswith(suffix):
                raise OSError(28, "simulated crash at the rename window")
            original(src, dst, **kwargs)

        monkeypatch.setattr(os, "replace", crashing_replace)

    def test_crash_before_manifest_swap_preserves_the_old_store(
        self, tmp_path, monkeypatch
    ):
        store = tmp_path / "case.store"
        argument = small_argument()
        argument.save(store)
        before = store_files(store)
        changed = small_argument()
        changed.add_node(Node("X1", NodeType.GOAL, "A doomed claim"))
        self._crash_on_rename_to(monkeypatch, MANIFEST_NAME)
        with pytest.raises(OSError, match="simulated crash"):
            changed.save(store)
        monkeypatch.undo()
        loaded = StoredArgument(store).load()
        assert loaded == argument, "interrupted save damaged the old store"
        # The sealed-but-unreferenced files are exactly gc's inventory;
        # after the sweep the directory is byte-identical to before.
        StoredArgument(store).gc()
        assert store_files(store) == before

    def test_crash_during_append_leaves_previous_state_loadable(
        self, tmp_path, monkeypatch
    ):
        store = tmp_path / "case.store"
        argument = small_argument()
        argument.save(store)
        snapshot = argument.copy()
        argument.add_node(Node("X1", NodeType.GOAL, "A doomed claim"))
        self._crash_on_rename_to(monkeypatch, MANIFEST_NAME)
        with pytest.raises(OSError, match="simulated crash"):
            argument.save(store, journal=True)
        monkeypatch.undo()
        assert StoredArgument(store).load() == snapshot
        report_orphans = StoredArgument(store).gc()
        assert any(name.startswith("journal-") for name in report_orphans)

    def test_crash_sealing_a_shard_leaves_only_tmp_litter(
        self, tmp_path, monkeypatch
    ):
        store = tmp_path / "case.store"
        argument = small_argument()
        argument.save(store)
        before = store_files(store)

        def crashing_finish(self):
            raise OSError(28, "simulated crash sealing a shard")

        monkeypatch.setattr(
            writer_module._ShardWriter, "finish", crashing_finish
        )
        with pytest.raises(OSError, match="sealing a shard"):
            small_argument().save(store)
        monkeypatch.undo()
        assert StoredArgument(store).load() == argument
        StoredArgument(store).gc()
        assert store_files(store) == before


class TestLostUpdateProtocol:
    def test_force_true_overwrites_a_diverged_store(self, tmp_path):
        store = tmp_path / "case.store"
        ours = small_argument()
        ours.save(store)
        theirs = Argument.load(store)
        theirs.add_node(Node("T1", NodeType.GOAL, "Their claim holds"))
        theirs.save(store, journal=True)
        ours.add_node(Node("O1", NodeType.GOAL, "Our claim holds"))
        with pytest.raises(StoreConflictError):
            ours.save(store, journal=True)
        manifest = ours.save(store, journal=True, force=True)
        assert "journal" not in manifest, "force falls back to a rewrite"
        final = StoredArgument(store).load()
        assert "O1" in final and "T1" not in final, (
            "force=True means: deliberately overwrite their committed edit"
        )

    def test_clean_appends_never_pay_the_conflict_path(self, tmp_path):
        store = tmp_path / "case.store"
        argument = small_argument()
        argument.save(store)
        for index in range(3):
            argument.add_node(Node(
                f"X{index}", NodeType.GOAL, f"Claim {index} holds",
            ))
            manifest = argument.save(store, journal=True)
            assert manifest["journal"], "single-writer appends must append"


class TestTornOverlayRefresh:
    def _store_with_journal(self, tmp_path):
        store = tmp_path / "case.store"
        argument = small_argument()
        argument.save(store)
        argument.add_node(Node("X1", NodeType.GOAL, "First edit holds"))
        argument.save(store, journal=True)
        return store, argument

    def test_repaired_tail_is_served_after_refresh(self, tmp_path):
        store, argument = self._store_with_journal(tmp_path)
        (segment,) = StoredArgument(store).journal_segments
        intact = (store / segment).read_bytes()
        (store / segment).write_bytes(intact[: len(intact) // 2])
        reader = StoredArgument(store, ignore_torn_tail=True)
        assert "X1" not in reader, "torn tail recovered to pre-append state"
        # The operator restores the segment in place: same manifest,
        # content back.  refresh() must NOT keep serving the recovered
        # overlay.
        (store / segment).write_bytes(intact)
        assert reader.refresh() == "unchanged"
        assert "X1" in reader, (
            "refresh carried a torn overlay across an in-place repair"
        )

    def test_grown_journal_rebuilds_a_torn_overlay(self, tmp_path):
        store, argument = self._store_with_journal(tmp_path)
        (segment,) = StoredArgument(store).journal_segments
        intact = (store / segment).read_bytes()
        (store / segment).write_bytes(intact[: len(intact) // 2])
        reader = StoredArgument(store, ignore_torn_tail=True)
        assert "X1" not in reader  # overlay built, tail dropped
        # Repair + a second writer appends: the journal grew past the
        # segment this reader recovered around.
        (store / segment).write_bytes(intact)
        writer = Argument.load(store)
        writer.add_node(Node("X2", NodeType.GOAL, "Second edit holds"))
        writer.save(store, journal=True)
        assert reader.refresh() == "journal"
        assert "X1" in reader and "X2" in reader, (
            "the journal-grew refresh path extended a torn overlay "
            "instead of rebuilding it"
        )


class TestCoalescing:
    def _appends(self, store, argument, count: int) -> None:
        for index in range(count):
            argument.add_node(Node(
                f"C{index}", NodeType.GOAL, f"Claim {index} holds",
            ))
            argument.save(store, journal=True)

    def test_coalesce_merges_segments_preserving_state(self, tmp_path):
        store = tmp_path / "case.store"
        argument = small_argument()
        argument.save(store)
        self._appends(store, argument, 5)
        handle = StoredArgument(store)
        assert len(handle.journal_segments) == 5
        handle.coalesce()
        assert len(handle.journal_segments) == 1
        assert handle.load() == argument
        assert StoredArgument(store).load() == argument

    def test_refresh_reports_coalesced_and_keeps_base_caches(
        self, tmp_path
    ):
        store = tmp_path / "case.store"
        argument = small_argument()
        argument.save(store)
        self._appends(store, argument, 3)
        reader = StoredArgument(store)
        reader.node("G0")  # hydrate a base shard
        shards_before = set(reader.shards_read)
        assert shards_before
        StoredArgument(store).coalesce()
        assert reader.refresh() == "coalesced"
        assert shards_before <= reader.shards_read, (
            "a coalesce must not invalidate base shard caches"
        )
        assert reader.load() == argument

    def test_append_auto_coalesces_past_the_bound(
        self, tmp_path, monkeypatch
    ):
        from repro.store import journal as journal_module

        monkeypatch.setattr(journal_module, "COALESCE_AFTER", 4)
        store = tmp_path / "case.store"
        argument = small_argument()
        argument.save(store)
        self._appends(store, argument, 10)
        segments = StoredArgument(store).journal_segments
        assert len(segments) <= 4 + 1, (
            f"the manifest grew unboundedly: {len(segments)} segments"
        )
        assert StoredArgument(store).load() == argument

    def test_coalesce_baseline_still_appends(self, tmp_path):
        """A coalesce mid-session must not break the session's appends:
        save(journal=True) records the post-coalesce fingerprint."""
        from repro.store import journal as journal_module

        store = tmp_path / "case.store"
        argument = small_argument()
        argument.save(store)
        self._appends(store, argument, journal_module.COALESCE_AFTER)
        # The next save crosses the bound: coalesce + append, one call.
        argument.add_node(Node("AFTER", NodeType.GOAL, "Still appending"))
        manifest = argument.save(store, journal=True)
        assert len(manifest["journal"]) == 2, (
            "expected [coalesced segment, fresh append]"
        )
        assert StoredArgument(store).load() == argument


# -- the multi-process torture test -----------------------------------------

_WRITER_SCRIPT = """
import sys
from repro.core.argument import Argument
from repro.core.nodes import Node, NodeType
from repro.store import StoreConflictError

store, worker, rounds = sys.argv[1], sys.argv[2], int(sys.argv[3])
landed = 0
for round_index in range(rounds):
    while True:
        argument = Argument.load(store)
        argument.add_node(Node(
            f"W{worker}R{round_index}", NodeType.GOAL,
            f"Claim {worker}/{round_index} holds",
        ))
        try:
            argument.save(store, journal=True)
            landed += 1
            break
        except StoreConflictError:
            continue
print(landed)
"""

_READER_SCRIPT = """
import sys
from repro.store import StoredArgument

store, passes = sys.argv[1], int(sys.argv[2])
for _ in range(passes):
    handle = StoredArgument(store)
    generation = handle.pin()
    nodes = {node.identifier for node in handle.iter_nodes()}
    links = list(handle.iter_links())
    assert len(nodes) == handle.node_count, "torn node view"
    assert len(links) == handle.link_count, "torn link view"
    for link in links:
        assert link.source in nodes and link.target in nodes, (
            "dangling link in a pinned snapshot"
        )
    assert handle.pin() == generation, "generation moved under a reader"
print("clean")
"""


@pytest.mark.slow
def test_multiprocess_writers_and_readers_torture(tmp_path):
    """2 writer processes + 3 snapshot readers over one directory.

    No lost updates (every writer's every round lands), no torn reads
    (each reader verifies node/link counts and referential integrity on
    pinned snapshots), and the final store is fsck-clean.
    """
    store = tmp_path / "case.store"
    base = small_argument("torture")
    base.save(store)
    rounds = 6
    env = dict(
        os.environ,
        PYTHONPATH=SRC,
        REPRO_STORE_FSYNC="0",
    )
    writers = [
        subprocess.Popen(
            [sys.executable, "-c", _WRITER_SCRIPT,
             str(store), str(worker), str(rounds)],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True,
        )
        for worker in range(2)
    ]
    readers = [
        subprocess.Popen(
            [sys.executable, "-c", _READER_SCRIPT, str(store), "12"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True,
        )
        for _ in range(3)
    ]
    for process in writers + readers:
        out, err = process.communicate(timeout=300)
        assert process.returncode == 0, (
            f"worker failed:\nstdout: {out}\nstderr: {err}"
        )
        process._last_out = out  # type: ignore[attr-defined]
    for process in writers:
        assert process._last_out.strip() == str(rounds)  # type: ignore
    for process in readers:
        assert process._last_out.strip() == "clean"  # type: ignore

    final = StoredArgument(store).load()
    expected = {
        f"W{worker}R{round_index}"
        for worker in range(2) for round_index in range(rounds)
    }
    got = {node.identifier for node in final.nodes}
    assert expected <= got, f"lost updates: {sorted(expected - got)}"

    from repro.analysis_static.fsck import fsck_store

    report = fsck_store(store)
    assert report.ok, (
        f"store not fsck-clean after torture: {report.fatal}"
    )
