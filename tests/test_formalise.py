"""Tests for the repro.formalise package."""

from __future__ import annotations

import random

import pytest

from repro.core.builder import ArgumentBuilder
from repro.core.nodes import NodeType, looks_propositional
from repro.formalise.kaos import (
    GoalCategory,
    flawed_uav_model,
    kaos_to_argument,
    uav_model,
    uav_traces,
)
from repro.formalise.policy import (
    build_location_policy,
    check_availability,
    check_denial,
    explain_disclosure,
)
from repro.formalise.proof_to_argument import (
    abstract_argument,
    proof_to_argument,
    report,
    resolution_to_argument,
)
from repro.formalise.security import haley_example
from repro.formalise.translator import (
    classify_residue,
    formalise_argument,
)
from repro.logic.event_calculus import Event, Narrative
from repro.logic.natural_deduction import haley_outer_proof
from repro.logic.resolution import FolClause, FolLiteral, prove
from repro.logic.terms import parse_atom


@pytest.fixture
def formalisable_argument():
    builder = ArgumentBuilder("formalisable")
    top = builder.goal("The system is acceptably safe to operate")
    strategy = builder.strategy(
        "Argument over the protection functions", under=top
    )
    g_a = builder.goal("The interlock blocks unsafe commands",
                       under=strategy)
    g_b = builder.goal("The monitor detects interlock failure",
                       under=strategy)
    builder.solution("Interlock verification report", under=g_a)
    builder.solution("Monitor test campaign record", under=g_b)
    return builder.build()


class TestRushbyTranslator:
    def test_structure(self, formalisable_argument):
        formalisation = formalise_argument(formalisable_argument)
        assert len(formalisation.claim_atoms) == 4  # 3 goals + 1 strategy
        assert len(formalisation.evidence_atoms) == 2
        assert len(formalisation.rules) + len(
            formalisation.assumed_rules
        ) == 4

    def test_unassented_proof_fails(self, formalisable_argument):
        formalisation = formalise_argument(formalisable_argument)
        assert not formalisation.check()

    def test_assent_all_proves_root(self, formalisable_argument):
        formalisation = formalise_argument(formalisable_argument)
        formalisation.assent_all()
        assert formalisation.check()

    def test_good_doc_atom_naming(self, formalisable_argument):
        # Rushby's reviewers 'indicate their assent by adding
        # good_doc(...) as an axiom'.
        formalisation = formalise_argument(formalisable_argument)
        atom = formalisation.assent("Sn1")
        assert atom.name.startswith("good_doc_")

    def test_retract_breaks_proof(self, formalisable_argument):
        formalisation = formalise_argument(formalisable_argument)
        formalisation.assent_all()
        formalisation.retract("Sn1")
        assert not formalisation.check()

    def test_what_if_probing(self, formalisable_argument):
        formalisation = formalise_argument(formalisable_argument)
        formalisation.assent_all()
        # Both evidence items are load-bearing in this argument.
        assert not formalisation.what_if_without("Sn1")
        assert not formalisation.what_if_without("Sn2")
        # Probing must not change the state.
        assert formalisation.check()

    def test_load_bearing_evidence(self, formalisable_argument):
        formalisation = formalise_argument(formalisable_argument)
        formalisation.assent_all()
        assert formalisation.load_bearing_evidence() == ["Sn1", "Sn2"]

    def test_redundant_evidence_not_load_bearing(self):
        builder = ArgumentBuilder("redundant")
        top = builder.goal("The valve closes on demand")
        builder.solution("Proof test record", under=top)
        builder.solution("Field actuation data", under=top)
        argument = builder.build()
        formalisation = formalise_argument(argument)
        formalisation.assent_all()
        # Either record alone suffices: neither is load-bearing.
        assert formalisation.load_bearing_evidence() == []

    def test_residue_classification(self):
        builder = ArgumentBuilder("residue")
        top = builder.goal("The system is acceptably safe to operate")
        strategy = builder.strategy("Argument over risk", under=top)
        g_prob = builder.goal(
            "Failure probability is below 1e-6 per hour", under=strategy
        )
        g_enum = builder.goal(
            "All identified hazards are acceptably managed",
            under=strategy,
        )
        g_judge = builder.goal(
            "Expert judgement confirms the design margins are adequate",
            under=strategy,
        )
        for goal in (g_prob, g_enum, g_judge):
            builder.solution(f"Record for {goal}", under=goal)
        formalisation = formalise_argument(builder.build())
        categories = {r.node_id: r.category for r in formalisation.residue}
        assert categories["G2"] == "probabilistic"
        assert categories["G3"] == "open-enumeration"
        assert categories["G4"] == "judgement"

    def test_classify_residue_none_for_plain_claim(self):
        from repro.core.nodes import Node

        node = Node("G1", NodeType.GOAL, "The interlock blocks commands")
        assert classify_residue(node) is None

    def test_summary_text(self, formalisable_argument):
        formalisation = formalise_argument(formalisable_argument)
        assert "claims" in formalisation.summary()


class TestProofToArgument:
    def test_generated_from_haley(self):
        argument = proof_to_argument(haley_outer_proof(), "HR system")
        assert len(argument.goals) == 11
        roots = {r.identifier for r in argument.roots()}
        assert "G11" in roots  # the conclusion
        # Line 8 (V) is derived but never used — the generated argument
        # faithfully carries the proof's clutter ('too many details').
        assert "G8" in roots

    def test_paper_goal_style_fails_propositionality(self):
        # §III.E: 'Formal proof that ... holds' is not a proposition.
        argument = proof_to_argument(
            haley_outer_proof(), "HR system", proposition_style=False
        )
        assert all(
            not looks_propositional(goal.text)
            for goal in argument.goals
        )

    def test_premises_get_solutions(self):
        argument = proof_to_argument(haley_outer_proof(), "HR system")
        assert len(argument.solutions) == 5

    def test_abstraction_reduces_detail(self):
        argument = proof_to_argument(haley_outer_proof(), "HR system")
        abstracted = abstract_argument(argument)
        assert len(abstracted) < len(argument)
        before = report(argument, "nd")
        after = report(abstracted, "abstracted")
        assert after.node_count < before.node_count

    def test_resolution_rendering_more_obscure(self):
        clauses = [
            FolClause.of(FolLiteral(parse_atom("man(socrates)"))),
            FolClause.of(
                FolLiteral(parse_atom("man(X)"), False),
                FolLiteral(parse_atom("mortal(X)")),
            ),
        ]
        proof = prove(clauses, parse_atom("mortal(socrates)"))
        argument = resolution_to_argument(proof, "Socrates")
        # Refutation arguments mention the contradiction explicitly.
        assert any(
            "contradiction" in node.text for node in argument.nodes
        )

    def test_resolution_requires_found_proof(self):
        clauses = [FolClause.of(FolLiteral(parse_atom("p(a)")))]
        proof = prove(clauses, parse_atom("q(b)"), max_clauses=50)
        with pytest.raises(ValueError):
            resolution_to_argument(proof)


class TestKaos:
    def test_model_validates_on_nominal_traces(self):
        model = uav_model()
        traces = uav_traces(random.Random(1), count=30)
        result = model.validate(traces)
        assert result.valid and result.complete

    def test_flawed_model_caught(self):
        flawed = flawed_uav_model()
        traces = uav_traces(random.Random(2), count=40, fault_rate=0.5)
        result = flawed.validate(traces)
        assert not result.valid
        assert result.counterexamples[0].parent == \
            "DetectAndAvoidCorrect"

    def test_domain_property_closes_the_hole(self):
        model = uav_model()
        traces = uav_traces(random.Random(2), count=40, fault_rate=0.5)
        assert model.validate(traces).valid

    def test_incomplete_model_reported(self):
        from repro.formalise.kaos import KaosGoal, KaosModel

        root = KaosGoal("Top", "The system is safe")  # no formal spec
        child = KaosGoal("Sub", "A sub-claim")
        root.refine(child)
        result = KaosModel(root).validate([])
        assert not result.complete
        assert "Top" in result.unformalised
        assert "Sub" in result.unrefined

    def test_argument_mirrors_structure(self):
        argument = kaos_to_argument(uav_model())
        assert "G_DetectAndAvoidCorrect" in argument
        assert "G_IntrusionDetected" in argument
        # Domain property becomes context, not a goal.
        texts = [
            n.text for n in argument.nodes
            if n.node_type is NodeType.CONTEXT
        ]
        assert any("Closure dynamics" in t for t in texts)

    def test_argument_embeds_ltl(self):
        argument = kaos_to_argument(uav_model())
        root = argument.node("G_DetectAndAvoidCorrect")
        assert "[LTL:" in root.text


class TestSecurity:
    def test_example_checks(self):
        example = haley_example()
        result = example.check()
        assert result.proof_checks
        assert result.requirement_proved

    def test_unsupported_assumptions_listed(self):
        example = haley_example()
        result = example.check()
        # Only (C -> H) has an inner argument in the worked example.
        assert "(C -> H)" not in result.unsupported_assumptions
        assert "(I -> V)" in result.unsupported_assumptions
        assert not result.satisfied

    def test_critical_assumptions(self):
        example = haley_example()
        critical = example.critical_domain_properties()
        # (I -> V) plays no role in deriving D -> H.
        assert "(I -> V)" not in critical
        assert "(C -> H)" in critical
        assert "(D -> Y)" in critical

    def test_fully_supported_example_satisfied(self):
        from repro.core.toulmin import Statement, ToulminArgument

        example = haley_example()
        for premise in example.check().unsupported_assumptions:
            example.support(premise, ToulminArgument(
                claim=Statement("C", f"support for {premise}"),
                grounds=(Statement("G", "operational records"),),
            ))
        assert example.check().satisfied

    def test_rebuttals_collected(self):
        example = haley_example()
        assert "HR member is dishonest" in example.rebuttals()

    def test_unknown_premise_rejected(self):
        from repro.core.toulmin import Statement, ToulminArgument

        example = haley_example()
        with pytest.raises(KeyError):
            example.support("(X -> Y)", ToulminArgument(
                claim=Statement("C", "bogus")
            ))

    def test_invalid_proof_reports_failure_not_crash(self):
        """A ProofError is a negative check result: proof_checks False."""
        import repro.formalise.security as security_module
        from repro.logic.natural_deduction import ProofError

        example = haley_example()

        def rejecting(proof):
            raise ProofError(proof.lines[0], "deliberately rejected")

        original = security_module.check_proof
        security_module.check_proof = rejecting
        try:
            result = example.check()
        finally:
            security_module.check_proof = original
        assert not result.proof_checks
        assert not result.requirement_proved

    def test_unexpected_checker_error_propagates(self):
        """Only ProofError means 'proof fails'; a crashed checker must
        surface, not be silently reported as a failing proof."""
        import repro.formalise.security as security_module

        example = haley_example()

        def broken(proof):
            raise RuntimeError("checker bug")

        original = security_module.check_proof
        security_module.check_proof = broken
        try:
            with pytest.raises(RuntimeError, match="checker bug"):
                example.check()
        finally:
            security_module.check_proof = original


class TestPolicy:
    @pytest.fixture
    def model(self):
        return build_location_policy(
            ("alice", "bob", "carol"),
            {"alice": "lab", "bob": "office", "carol": "cafe"},
        )

    def test_availability_for_friend(self, model):
        narrative = Narrative()
        narrative.happens(Event("Befriend", ("alice", "bob")), 0)
        model.tap(narrative, "alice", "bob", 2)
        assert check_availability(model, narrative, "alice", "bob")

    def test_denial_for_stranger(self, model):
        narrative = Narrative()
        model.tap(narrative, "carol", "bob", 2)
        assert check_denial(model, narrative, "carol", "bob")
        assert not check_availability(model, narrative, "carol", "bob")

    def test_same_platform_also_authorises(self, model):
        narrative = Narrative()
        narrative.happens(Event("JoinPlatform", ("carol", "bob")), 0)
        model.tap(narrative, "carol", "bob", 3)
        assert check_availability(model, narrative, "carol", "bob")

    def test_unfriending_revokes(self, model):
        narrative = Narrative()
        narrative.happens(Event("Befriend", ("alice", "bob")), 0)
        narrative.happens(Event("Unfriend", ("alice", "bob")), 2)
        model.tap(narrative, "alice", "bob", 4)
        assert check_denial(model, narrative, "alice", "bob")

    def test_explanation_chain(self, model):
        narrative = Narrative()
        narrative.happens(Event("Befriend", ("alice", "bob")), 0)
        model.tap(narrative, "alice", "bob", 2)
        explanations = explain_disclosure(model, narrative, "alice", "bob")
        assert len(explanations) == 1
        explanation = explanations[0]
        assert explanation.tap_time == 2
        assert explanation.disclosed_at == 4
        assert explanation.basis == "Friends"
        assert "because of Tap" in str(explanation)

    def test_no_explanations_without_disclosure(self, model):
        narrative = Narrative()
        model.tap(narrative, "carol", "bob", 1)
        assert explain_disclosure(model, narrative, "carol", "bob") == []
