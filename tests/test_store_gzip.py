"""Optional per-shard gzip compression for the persistent store.

The contracts behind the manifest's ``compression: "gzip"`` flag:

* **transparent reads** — loading, streaming, lazy per-shard access, and
  the streaming well-formedness check behave identically on compressed
  and plain stores;
* **byte-stability on the decompressed records** — counts, CRC-32s, and
  content-addressed names are computed over the decompressed JSONL, and
  the gzip stream itself is deterministic (fixed mtime, no embedded
  filename), so save → load → save reproduces identical files;
* **corruption stays loud and located** — a damaged compressed shard
  raises the same typed :class:`~repro.store.StoreCorruptionError`
  naming the shard;
* plain stores are untouched: their manifests carry no ``compression``
  key, byte for byte as PR 3 wrote them.
"""

from __future__ import annotations

import json

import pytest

from repro.core.argument import Argument, LinkKind
from repro.core.case import AssuranceCase
from repro.core.nodes import Node, NodeType
from repro.core.wellformed import check
from repro.store import StoredArgument, StoreCorruptionError, StoreError

pytestmark = pytest.mark.store


@pytest.fixture
def argument() -> Argument:
    argument = Argument("gzip-case")
    argument.add_nodes([
        Node("G1", NodeType.GOAL, "The system is acceptably safe"),
        Node("S1", NodeType.STRATEGY, "Argument over the hazards"),
        Node("G2", NodeType.GOAL, "Hazard H1 is acceptably managed",
             metadata=(("hazard", ("H1", "remote", "catastrophic")),)),
        Node("Sn1", NodeType.SOLUTION, "Fault tree analysis FTA-1"),
        Node("C1", NodeType.CONTEXT, "Operating context: urban rail"),
    ])
    argument.add_links([
        ("G1", "S1", LinkKind.SUPPORTED_BY),
        ("S1", "G2", LinkKind.SUPPORTED_BY),
        ("G2", "Sn1", LinkKind.SUPPORTED_BY),
        ("G1", "C1", LinkKind.IN_CONTEXT_OF),
    ])
    return argument


def _store_files(store_dir) -> dict[str, bytes]:
    return {
        path.name: path.read_bytes()
        for path in sorted(store_dir.iterdir())
    }


def test_round_trip_equality_and_manifest_flag(argument, tmp_path):
    store_dir = tmp_path / "gz.store"
    manifest = argument.save(store_dir, compression="gzip")
    assert manifest["compression"] == "gzip"
    assert all(name.endswith(".jsonl.gz") for name in manifest["shards"])
    stored = StoredArgument(store_dir)
    assert stored.compression == "gzip"
    assert stored.load() == argument


def test_plain_manifests_carry_no_compression_key(argument, tmp_path):
    manifest = argument.save(tmp_path / "plain.store")
    assert "compression" not in manifest
    assert all(name.endswith(".jsonl") for name in manifest["shards"])


def test_byte_stability_on_compressed_stores(argument, tmp_path):
    first = tmp_path / "first.store"
    second = tmp_path / "second.store"
    argument.save(first, compression="gzip")
    Argument.load(first).save(second, compression="gzip")
    assert _store_files(first) == _store_files(second)


def test_checksums_cover_decompressed_records(argument, tmp_path):
    plain_dir = tmp_path / "plain.store"
    gz_dir = tmp_path / "gz.store"
    plain = argument.save(plain_dir)
    compressed = argument.save(gz_dir, compression="gzip")
    # Same decompressed content -> same CRC-32s and record counts, and
    # the content-addressed stems differ only in suffix.
    plain_meta = {
        name.removesuffix(".jsonl"): meta
        for name, meta in plain["shards"].items()
    }
    gz_meta = {
        name.removesuffix(".jsonl.gz"): meta
        for name, meta in compressed["shards"].items()
    }
    assert plain_meta == gz_meta


def test_streaming_wellformedness_matches_plain(argument, tmp_path):
    argument.save(tmp_path / "plain.store")
    argument.save(tmp_path / "gz.store", compression="gzip")
    plain = StoredArgument(tmp_path / "plain.store")
    compressed = StoredArgument(tmp_path / "gz.store")
    assert check(compressed) == check(plain) == check(argument)
    assert not compressed.hydrated


def test_lazy_partial_access_is_transparent(argument, tmp_path):
    store_dir = tmp_path / "gz.store"
    argument.save(store_dir, compression="gzip")
    stored = StoredArgument(store_dir)
    assert stored.node("G2").metadata_dict()["hazard"] == (
        "H1", "remote", "catastrophic"
    )
    fragment = stored.subtree("G2")
    assert fragment == argument.subtree("G2")
    assert len(stored.shards_read) < 2 * stored.shard_count


def test_case_round_trips_compressed(argument, tmp_path, sample_case):
    store_dir = tmp_path / "case.store"
    manifest = sample_case.save(store_dir, compression="gzip")
    assert manifest["compression"] == "gzip"
    loaded = AssuranceCase.load(store_dir)
    assert loaded.argument == sample_case.argument
    assert sorted(item.identifier for item in loaded.evidence) == \
        sorted(item.identifier for item in sample_case.evidence)


def test_corrupt_gzip_shard_names_the_shard(argument, tmp_path):
    store_dir = tmp_path / "gz.store"
    manifest = argument.save(store_dir, compression="gzip")
    shard = next(
        name for name, meta in manifest["shards"].items()
        if name.startswith("nodes-") and meta["records"] > 0
    )
    data = bytearray((store_dir / shard).read_bytes())
    data[len(data) // 2] ^= 0xFF
    (store_dir / shard).write_bytes(bytes(data))
    with pytest.raises(StoreCorruptionError, match=shard):
        StoredArgument(store_dir).load()


def test_truncated_gzip_shard_is_corruption(argument, tmp_path):
    store_dir = tmp_path / "gz.store"
    manifest = argument.save(store_dir, compression="gzip")
    shard = next(
        name for name, meta in manifest["shards"].items()
        if name.startswith("links-") and meta["records"] > 0
    )
    data = (store_dir / shard).read_bytes()
    (store_dir / shard).write_bytes(data[: max(1, len(data) // 2)])
    with pytest.raises(StoreCorruptionError, match=shard):
        list(StoredArgument(store_dir).iter_links())


def test_recompressing_sweeps_the_old_shards(argument, tmp_path):
    store_dir = tmp_path / "switch.store"
    argument.save(store_dir)
    plain_names = set(json.loads(
        (store_dir / "manifest.json").read_text()
    )["shards"])
    argument.save(store_dir, compression="gzip")
    remaining = {path.name for path in store_dir.iterdir()}
    assert not plain_names & remaining, (
        "plain shards must be swept after the compressed commit"
    )
    assert StoredArgument(store_dir).load() == argument


def test_unsupported_compression_rejected_at_save(argument, tmp_path):
    with pytest.raises(StoreError, match="unsupported shard compression"):
        argument.save(tmp_path / "bad.store", compression="zstd")


def test_unsupported_compression_rejected_at_open(argument, tmp_path):
    store_dir = tmp_path / "tampered.store"
    argument.save(store_dir)
    manifest = json.loads((store_dir / "manifest.json").read_text())
    manifest["compression"] = "zstd"
    (store_dir / "manifest.json").write_text(json.dumps(manifest))
    with pytest.raises(StoreError, match="unsupported shard compression"):
        StoredArgument(store_dir)
