"""Tests for repro.core.metadata and repro.core.query."""

from __future__ import annotations

import pytest

from repro.core.metadata import (
    AnnotationError,
    BaseType,
    EnumType,
    Ontology,
    annotate,
    aviation_ontology,
    validate_annotations,
)
from repro.core.query import (
    attribute_equals,
    attribute_param,
    has_attribute,
    node_type_is,
    select,
    text_contains,
    text_search,
    traceability_view,
)
from repro.core.nodes import NodeType


class TestOntology:
    def test_enum_declaration(self):
        ontology = Ontology()
        element = ontology.declare_enum("element", ("aileron", "flaps"))
        assert element.accepts("aileron")
        assert not element.accepts("rudder")

    def test_duplicate_enum_rejected(self):
        ontology = Ontology()
        ontology.declare_enum("element", ("a",))
        with pytest.raises(AnnotationError):
            ontology.declare_enum("element", ("b",))

    def test_empty_enum_rejected(self):
        with pytest.raises(AnnotationError):
            EnumType("empty", frozenset())

    def test_base_types(self):
        assert BaseType.NAT.accepts(0)
        assert not BaseType.NAT.accepts(-1)
        assert not BaseType.INT.accepts(True)
        assert BaseType.FLOAT.accepts(2)
        assert BaseType.STRING.accepts("x")

    def test_attribute_validation(self):
        ontology = aviation_ontology()
        assert ontology.validate(
            {"hazard": ("H1", "remote", "catastrophic")}
        ) == []
        problems = ontology.validate(
            {"hazard": ("H1", "often", "catastrophic")}
        )
        assert problems
        assert "parameter 1" in problems[0]

    def test_undeclared_attribute(self):
        problems = aviation_ontology().validate({"ghost": ()})
        assert any("undeclared" in p for p in problems)

    def test_arity_mismatch(self):
        problems = aviation_ontology().validate({"hazard": ("H1",)})
        assert any("takes 3" in p for p in problems)


class TestAnnotate:
    def test_annotate_node(self, hazard_argument):
        ontology = aviation_ontology()
        node = annotate(
            hazard_argument, "G2", ontology,
            {"hazard": ("H1", "remote", "catastrophic")},
        )
        assert node.metadata_dict()["hazard"] == (
            "H1", "remote", "catastrophic"
        )
        assert hazard_argument.node("G2").metadata

    def test_annotate_rejects_ill_typed(self, hazard_argument):
        ontology = aviation_ontology()
        with pytest.raises(AnnotationError):
            annotate(
                hazard_argument, "G2", ontology,
                {"criticality_level": (-3,)},
            )

    def test_validate_annotations_over_argument(self, hazard_argument):
        ontology = aviation_ontology()
        annotate(hazard_argument, "G2", ontology,
                 {"reviewed": (True,)})
        # Sneak in a bad annotation via the raw node API.
        bad = hazard_argument.node("G3").with_metadata(
            {"reviewed": ("yes",)}
        )
        hazard_argument.replace_node(bad)
        report = validate_annotations(hazard_argument, ontology)
        assert "G3" in report and "G2" not in report


@pytest.fixture
def annotated_argument(hazard_argument):
    ontology = aviation_ontology()
    annotate(hazard_argument, "G2", ontology,
             {"hazard": ("H1", "remote", "catastrophic")})
    annotate(hazard_argument, "G3", ontology,
             {"hazard": ("H2", "frequent", "minor")})
    annotate(hazard_argument, "G4", ontology,
             {"hazard": ("H3", "remote", "catastrophic")})
    return hazard_argument


class TestQuery:
    def test_has_attribute(self, annotated_argument):
        matches = select(annotated_argument, has_attribute("hazard"))
        assert {n.identifier for n in matches} == {"G2", "G3", "G4"}

    def test_denney_naylor_pai_example(self, annotated_argument):
        # 'traceability to only those hazards whose likelihood of
        # occurrence is remote, and whose severity is catastrophic'.
        query = attribute_param("hazard", 1, "remote") & \
            attribute_param("hazard", 2, "catastrophic")
        matches = select(annotated_argument, query)
        assert {n.identifier for n in matches} == {"G2", "G4"}

    def test_attribute_equals(self, annotated_argument):
        query = attribute_equals(
            "hazard", ("H2", "frequent", "minor")
        )
        assert [n.identifier for n in
                select(annotated_argument, query)] == ["G3"]

    def test_boolean_combinators(self, annotated_argument):
        remote = attribute_param("hazard", 1, "remote")
        frequent = attribute_param("hazard", 1, "frequent")
        both = select(annotated_argument, remote | frequent)
        assert len(both) == 3
        none = select(annotated_argument, remote & frequent)
        assert none == []
        inverted = select(
            annotated_argument, ~has_attribute("hazard")
            & node_type_is(NodeType.GOAL),
        )
        assert {n.identifier for n in inverted} == {"G1", "G5"}

    def test_text_search_baseline(self, annotated_argument):
        hits = text_search(annotated_argument, "hazard")
        assert hits  # matches node text, not metadata
        assert all("hazard" in n.text.lower() for n in hits)

    def test_text_contains_case_sensitivity(self, annotated_argument):
        insensitive = select(
            annotated_argument, text_contains("HAZARD")
        )
        sensitive = select(
            annotated_argument, text_contains("HAZARD",
                                              case_sensitive=True)
        )
        assert insensitive and not sensitive

    def test_traceability_view(self, annotated_argument):
        query = attribute_param("hazard", 2, "catastrophic")
        view = traceability_view(annotated_argument, query)
        # Matches plus their paths to the root plus attached context.
        assert "G2" in view and "G4" in view
        assert "G1" in view and "S1" in view
        assert "G3" not in view
        # Context of kept nodes is retained.
        assert "C1" in view

    def test_view_preserves_links_among_kept(self, annotated_argument):
        view = traceability_view(
            annotated_argument, has_attribute("hazard")
        )
        assert any(
            link.source == "S1" and link.target == "G2"
            for link in view.links
        )
