"""Tests for repro.core.metadata and repro.core.query."""

from __future__ import annotations

import pytest

from repro.core.metadata import (
    AnnotationError,
    BaseType,
    EnumType,
    Ontology,
    annotate,
    aviation_ontology,
    validate_annotations,
)
from repro.core.query import (
    attribute_equals,
    attribute_param,
    has_attribute,
    node_type_is,
    select,
    text_contains,
    text_search,
    traceability_view,
)
from repro.core.nodes import NodeType


class TestOntology:
    def test_enum_declaration(self):
        ontology = Ontology()
        element = ontology.declare_enum("element", ("aileron", "flaps"))
        assert element.accepts("aileron")
        assert not element.accepts("rudder")

    def test_duplicate_enum_rejected(self):
        ontology = Ontology()
        ontology.declare_enum("element", ("a",))
        with pytest.raises(AnnotationError):
            ontology.declare_enum("element", ("b",))

    def test_empty_enum_rejected(self):
        with pytest.raises(AnnotationError):
            EnumType("empty", frozenset())

    def test_base_types(self):
        assert BaseType.NAT.accepts(0)
        assert not BaseType.NAT.accepts(-1)
        assert not BaseType.INT.accepts(True)
        assert BaseType.FLOAT.accepts(2)
        assert BaseType.STRING.accepts("x")

    def test_attribute_validation(self):
        ontology = aviation_ontology()
        assert ontology.validate(
            {"hazard": ("H1", "remote", "catastrophic")}
        ) == []
        problems = ontology.validate(
            {"hazard": ("H1", "often", "catastrophic")}
        )
        assert problems
        assert "parameter 1" in problems[0]

    def test_undeclared_attribute(self):
        problems = aviation_ontology().validate({"ghost": ()})
        assert any("undeclared" in p for p in problems)

    def test_arity_mismatch(self):
        problems = aviation_ontology().validate({"hazard": ("H1",)})
        assert any("takes 3" in p for p in problems)


class TestAnnotate:
    def test_annotate_node(self, hazard_argument):
        ontology = aviation_ontology()
        node = annotate(
            hazard_argument, "G2", ontology,
            {"hazard": ("H1", "remote", "catastrophic")},
        )
        assert node.metadata_dict()["hazard"] == (
            "H1", "remote", "catastrophic"
        )
        assert hazard_argument.node("G2").metadata

    def test_annotate_rejects_ill_typed(self, hazard_argument):
        ontology = aviation_ontology()
        with pytest.raises(AnnotationError):
            annotate(
                hazard_argument, "G2", ontology,
                {"criticality_level": (-3,)},
            )

    def test_validate_annotations_over_argument(self, hazard_argument):
        ontology = aviation_ontology()
        annotate(hazard_argument, "G2", ontology,
                 {"reviewed": (True,)})
        # Sneak in a bad annotation via the raw node API.
        bad = hazard_argument.node("G3").with_metadata(
            {"reviewed": ("yes",)}
        )
        hazard_argument.replace_node(bad)
        report = validate_annotations(hazard_argument, ontology)
        assert "G3" in report and "G2" not in report


@pytest.fixture
def annotated_argument(hazard_argument):
    ontology = aviation_ontology()
    annotate(hazard_argument, "G2", ontology,
             {"hazard": ("H1", "remote", "catastrophic")})
    annotate(hazard_argument, "G3", ontology,
             {"hazard": ("H2", "frequent", "minor")})
    annotate(hazard_argument, "G4", ontology,
             {"hazard": ("H3", "remote", "catastrophic")})
    return hazard_argument


class TestQuery:
    def test_has_attribute(self, annotated_argument):
        matches = select(annotated_argument, has_attribute("hazard"))
        assert {n.identifier for n in matches} == {"G2", "G3", "G4"}

    def test_denney_naylor_pai_example(self, annotated_argument):
        # 'traceability to only those hazards whose likelihood of
        # occurrence is remote, and whose severity is catastrophic'.
        query = attribute_param("hazard", 1, "remote") & \
            attribute_param("hazard", 2, "catastrophic")
        matches = select(annotated_argument, query)
        assert {n.identifier for n in matches} == {"G2", "G4"}

    def test_attribute_equals(self, annotated_argument):
        query = attribute_equals(
            "hazard", ("H2", "frequent", "minor")
        )
        assert [n.identifier for n in
                select(annotated_argument, query)] == ["G3"]

    def test_boolean_combinators(self, annotated_argument):
        remote = attribute_param("hazard", 1, "remote")
        frequent = attribute_param("hazard", 1, "frequent")
        both = select(annotated_argument, remote | frequent)
        assert len(both) == 3
        none = select(annotated_argument, remote & frequent)
        assert none == []
        inverted = select(
            annotated_argument, ~has_attribute("hazard")
            & node_type_is(NodeType.GOAL),
        )
        assert {n.identifier for n in inverted} == {"G1", "G5"}

    def test_text_search_baseline(self, annotated_argument):
        hits = text_search(annotated_argument, "hazard")
        assert hits  # matches node text, not metadata
        assert all("hazard" in n.text.lower() for n in hits)

    def test_text_contains_case_sensitivity(self, annotated_argument):
        insensitive = select(
            annotated_argument, text_contains("HAZARD")
        )
        sensitive = select(
            annotated_argument, text_contains("HAZARD",
                                              case_sensitive=True)
        )
        assert insensitive and not sensitive

    def test_traceability_view(self, annotated_argument):
        query = attribute_param("hazard", 2, "catastrophic")
        view = traceability_view(annotated_argument, query)
        # Matches plus their paths to the root plus attached context.
        assert "G2" in view and "G4" in view
        assert "G1" in view and "S1" in view
        assert "G3" not in view
        # Context of kept nodes is retained.
        assert "C1" in view

    def test_view_preserves_links_among_kept(self, annotated_argument):
        view = traceability_view(
            annotated_argument, has_attribute("hazard")
        )
        assert any(
            link.source == "S1" and link.target == "G2"
            for link in view.links
        )

    def test_view_keeps_context_of_context(self):
        # Regression: a single pass over the link list dropped context
        # attached to retained context when the inner attachment was
        # inserted before the outer one.
        from repro.core.argument import Argument
        from repro.core.nodes import Node

        argument = Argument("ctx")
        argument.add_node(Node("G1", NodeType.GOAL,
                               "The system is acceptably safe"))
        argument.add_node(Node("G2", NodeType.GOAL,
                               "Hazard H1 is acceptably managed",
                               metadata=(("hazard", ("H1",)),)))
        argument.add_node(Node("C1", NodeType.CONTEXT,
                               "Operating context"))
        argument.add_node(Node("C2", NodeType.CONTEXT,
                               "Standard defining the context"))
        argument.add_node(Node("C3", NodeType.CONTEXT,
                               "Issue of the standard"))
        # Insert the inner attachments first — the order that broke the
        # seed's single-pass retention.
        argument.in_context_of("C2", "C3")
        argument.in_context_of("C1", "C2")
        argument.supported_by("G1", "G2")
        argument.in_context_of("G2", "C1")
        view = traceability_view(argument, has_attribute("hazard"))
        assert "C1" in view and "C2" in view and "C3" in view
        assert any(
            link.source == "C2" and link.target == "C3"
            for link in view.links
        )


class TestQueryPlanner:
    """The indexed planner must be invisible except for speed."""

    def _unplanned(self, query):
        from repro.core.query import Query
        return Query(query.description, query.predicate)

    @pytest.mark.parametrize("factory", [
        lambda: has_attribute("hazard"),
        lambda: attribute_param("hazard", 1, "remote"),
        lambda: attribute_equals("hazard", ("H2", "frequent", "minor")),
        lambda: node_type_is(NodeType.GOAL),
        lambda: text_contains("HAZARD"),
        lambda: text_contains("Hazard", case_sensitive=True),
        lambda: attribute_param("hazard", 1, "remote")
        & attribute_param("hazard", 2, "catastrophic"),
        lambda: attribute_param("hazard", 1, "remote")
        | node_type_is(NodeType.SOLUTION),
        lambda: ~has_attribute("hazard") & node_type_is(NodeType.GOAL),
    ])
    def test_planned_matches_unplanned(self, annotated_argument, factory):
        query = factory()
        planned = select(annotated_argument, query)
        scanned = select(annotated_argument, self._unplanned(query))
        assert planned == scanned

    def test_factory_queries_carry_plans(self):
        assert has_attribute("hazard").plan is not None
        assert node_type_is(NodeType.GOAL).plan is not None
        folded = text_contains("x")
        assert folded.plan is not None and folded.exact
        # Case-sensitive text search plans a trigram superset; the
        # predicate arbitrates case, so the plan is not exact.
        sensitive = text_contains("x", case_sensitive=True)
        assert sensitive.plan is not None and not sensitive.exact

    def test_index_invalidated_on_mutation(self, annotated_argument):
        from repro.core.nodes import Node

        query = has_attribute("hazard")
        before = select(annotated_argument, query)
        annotated_argument.add_node(Node(
            "G99", NodeType.GOAL, "Hazard H99 is acceptably managed",
            metadata=(("hazard", ("H99", "remote", "minor")),),
        ))
        after = select(annotated_argument, query)
        assert {n.identifier for n in after} == (
            {n.identifier for n in before} | {"G99"}
        )

    def test_results_stay_in_insertion_order(self, annotated_argument):
        matches = select(annotated_argument, has_attribute("hazard"))
        order = {
            node.identifier: position
            for position, node in enumerate(annotated_argument.nodes)
        }
        positions = [order[n.identifier] for n in matches]
        assert positions == sorted(positions)
