"""Tests for repro.logic.propositional."""

from __future__ import annotations

import pytest

from repro.logic.propositional import (
    FALSE,
    TRUE,
    And,
    Atom,
    Falsum,
    Iff,
    Implies,
    Not,
    Or,
    PropositionalSyntaxError,
    Verum,
    all_valuations,
    atoms_of,
    cnf_clauses,
    conjoin,
    disjoin,
    equivalent,
    evaluate,
    is_contradiction,
    is_satisfiable_bruteforce,
    is_tautology,
    models_of,
    parse,
    substitute,
    to_cnf,
    to_nnf,
)


class TestParse:
    def test_atom(self):
        assert parse("p") == Atom("p")

    def test_underscored_atom(self):
        assert parse("on_grnd") == Atom("on_grnd")

    def test_negation_tilde(self):
        assert parse("~p") == Not(Atom("p"))

    def test_negation_bang(self):
        assert parse("!p") == Not(Atom("p"))

    def test_double_negation(self):
        assert parse("~~p") == Not(Not(Atom("p")))

    def test_conjunction(self):
        assert parse("p & q") == And(Atom("p"), Atom("q"))

    def test_disjunction(self):
        assert parse("p | q") == Or(Atom("p"), Atom("q"))

    def test_implication(self):
        assert parse("p -> q") == Implies(Atom("p"), Atom("q"))

    def test_biconditional(self):
        assert parse("p <-> q") == Iff(Atom("p"), Atom("q"))

    def test_implication_right_associative(self):
        assert parse("p -> q -> r") == Implies(
            Atom("p"), Implies(Atom("q"), Atom("r"))
        )

    def test_and_binds_tighter_than_or(self):
        assert parse("p | q & r") == Or(
            Atom("p"), And(Atom("q"), Atom("r"))
        )

    def test_or_binds_tighter_than_implies(self):
        assert parse("p | q -> r") == Implies(
            Or(Atom("p"), Atom("q")), Atom("r")
        )

    def test_parentheses(self):
        assert parse("(p | q) & r") == And(
            Or(Atom("p"), Atom("q")), Atom("r")
        )

    def test_constants(self):
        assert parse("true") == TRUE
        assert parse("false") == FALSE

    def test_thrust_reverser_example(self):
        # The paper's §II.B symbolic claim.
        formula = parse("~on_grnd -> ~threv_en")
        assert formula == Implies(
            Not(Atom("on_grnd")), Not(Atom("threv_en"))
        )

    def test_rejects_trailing_input(self):
        with pytest.raises(PropositionalSyntaxError):
            parse("p q")

    def test_rejects_empty(self):
        with pytest.raises(PropositionalSyntaxError):
            parse("")

    def test_rejects_unbalanced_paren(self):
        with pytest.raises(PropositionalSyntaxError):
            parse("(p & q")

    def test_rejects_bad_character(self):
        with pytest.raises(PropositionalSyntaxError):
            parse("p @ q")

    def test_roundtrip_via_str(self):
        formula = parse("(a -> b) & ~(c | d) <-> e")
        assert equivalent(parse(str(formula)), formula)


class TestEvaluate:
    def test_atom_lookup(self):
        assert evaluate(Atom("p"), {Atom("p"): True})
        assert not evaluate(Atom("p"), {Atom("p"): False})

    def test_missing_atom_raises(self):
        with pytest.raises(KeyError):
            evaluate(Atom("p"), {})

    def test_implication_truth_table(self):
        formula = parse("p -> q")
        p, q = Atom("p"), Atom("q")
        assert evaluate(formula, {p: False, q: False})
        assert evaluate(formula, {p: False, q: True})
        assert not evaluate(formula, {p: True, q: False})
        assert evaluate(formula, {p: True, q: True})

    def test_iff_truth_table(self):
        formula = parse("p <-> q")
        p, q = Atom("p"), Atom("q")
        assert evaluate(formula, {p: False, q: False})
        assert not evaluate(formula, {p: True, q: False})

    def test_constants(self):
        assert evaluate(TRUE, {})
        assert not evaluate(FALSE, {})


class TestClassification:
    def test_excluded_middle_is_tautology(self):
        assert is_tautology(parse("p | ~p"))

    def test_contradiction(self):
        assert is_contradiction(parse("p & ~p"))

    def test_contingent_is_neither(self):
        formula = parse("p -> q")
        assert not is_tautology(formula)
        assert not is_contradiction(formula)
        assert is_satisfiable_bruteforce(formula)

    def test_models_count(self):
        assert len(models_of(parse("p | q"))) == 3

    def test_all_valuations_count(self):
        atoms = [Atom("a"), Atom("b"), Atom("c")]
        assert len(list(all_valuations(atoms))) == 8


class TestNnf:
    def test_eliminates_implication(self):
        nnf = to_nnf(parse("p -> q"))
        assert nnf == Or(Not(Atom("p")), Atom("q"))

    def test_de_morgan_and(self):
        nnf = to_nnf(parse("~(p & q)"))
        assert nnf == Or(Not(Atom("p")), Not(Atom("q")))

    def test_de_morgan_or(self):
        nnf = to_nnf(parse("~(p | q)"))
        assert nnf == And(Not(Atom("p")), Not(Atom("q")))

    def test_negated_implication(self):
        nnf = to_nnf(parse("~(p -> q)"))
        assert nnf == And(Atom("p"), Not(Atom("q")))

    def test_double_negation_collapses(self):
        assert to_nnf(parse("~~p")) == Atom("p")

    def test_negated_constants(self):
        assert to_nnf(Not(TRUE)) == FALSE
        assert to_nnf(Not(FALSE)) == TRUE

    def test_preserves_equivalence(self):
        for text in ("p -> q", "~(p <-> q)", "~(p & (q | ~r))"):
            formula = parse(text)
            assert equivalent(formula, to_nnf(formula))


class TestCnf:
    def test_distribution(self):
        cnf = to_cnf(parse("p | (q & r)"))
        assert equivalent(cnf, parse("(p | q) & (p | r)"))

    def test_preserves_equivalence(self):
        for text in (
            "p -> (q -> r)",
            "(p & q) | (r & s)",
            "~(p <-> (q | r))",
        ):
            formula = parse(text)
            assert equivalent(formula, to_cnf(formula))

    def test_clauses_shape(self):
        clauses = cnf_clauses(parse("(p | q) & ~r"))
        assert frozenset({("p", True), ("q", True)}) in clauses
        assert frozenset({("r", False)}) in clauses

    def test_tautological_clause_dropped(self):
        clauses = cnf_clauses(parse("p | ~p"))
        assert clauses == frozenset()

    def test_contradiction_yields_unsatisfiable_clauses(self):
        # p & ~p becomes the unit clauses {p} and {~p}; the *solver*
        # derives the empty clause, the transform does not.
        clauses = cnf_clauses(parse("p & ~p"))
        assert frozenset({("p", True)}) in clauses
        assert frozenset({("p", False)}) in clauses

    def test_false_constant_yields_empty_clause(self):
        assert frozenset() in cnf_clauses(FALSE)


class TestHelpers:
    def test_atoms_of(self):
        assert atoms_of(parse("(a -> b) & ~c")) == {
            Atom("a"), Atom("b"), Atom("c")
        }

    def test_conjoin_empty_is_true(self):
        assert conjoin([]) == TRUE

    def test_disjoin_empty_is_false(self):
        assert disjoin([]) == FALSE

    def test_conjoin_evaluates_as_and(self):
        formula = conjoin([Atom("a"), Atom("b"), Atom("c")])
        assert equivalent(formula, parse("a & b & c"))

    def test_substitute(self):
        formula = substitute(
            parse("p -> q"), {Atom("p"): parse("a & b")}
        )
        assert equivalent(formula, parse("(a & b) -> q"))
