"""Tests for repro.logic.terms and repro.logic.unification."""

from __future__ import annotations

import pytest

from repro.logic.terms import (
    Atom,
    Const,
    Func,
    Substitution,
    TermSyntaxError,
    Var,
    constants_of,
    parse_atom,
    parse_term,
    rename_apart,
    term_depth,
    term_size,
    variables_of,
)
from repro.logic.unification import unify, unify_atoms, unify_sequences


class TestTermConstruction:
    def test_func_requires_args(self):
        with pytest.raises(ValueError):
            Func("f", ())

    def test_str_rendering(self):
        term = Func("f", (Var("X"), Const("a")))
        assert str(term) == "f(X, a)"

    def test_atom_str(self):
        atom = Atom("adjacent", (Const("bank"), Const("river")))
        assert str(atom) == "adjacent(bank, river)"

    def test_zero_arity_atom(self):
        assert str(Atom("raining")) == "raining"
        assert Atom("raining").is_ground()


class TestParsing:
    def test_parse_variable(self):
        assert parse_term("X") == Var("X")
        assert parse_term("_anon") == Var("_anon")

    def test_parse_constant(self):
        assert parse_term("bank") == Const("bank")

    def test_parse_compound(self):
        assert parse_term("f(X, a)") == Func("f", (Var("X"), Const("a")))

    def test_parse_nested(self):
        term = parse_term("f(g(X), h(a, Y))")
        assert term == Func("f", (
            Func("g", (Var("X"),)),
            Func("h", (Const("a"), Var("Y"))),
        ))

    def test_parse_quoted_name(self):
        assert parse_term("'two words'") == Const("two words")

    def test_parse_atom(self):
        atom = parse_atom("is_a(desert_bank, bank)")
        assert atom == Atom(
            "is_a", (Const("desert_bank"), Const("bank"))
        )

    def test_rejects_trailing(self):
        with pytest.raises(TermSyntaxError):
            parse_term("f(X) extra")

    def test_rejects_unclosed(self):
        with pytest.raises(TermSyntaxError):
            parse_term("f(X")


class TestTermMetrics:
    def test_variables_of(self):
        term = parse_term("f(X, g(Y, X), a)")
        assert variables_of(term) == {Var("X"), Var("Y")}

    def test_constants_of(self):
        term = parse_term("f(X, g(a), b)")
        assert constants_of(term) == {Const("a"), Const("b")}

    def test_size_and_depth(self):
        term = parse_term("f(g(X), a)")
        assert term_size(term) == 4
        assert term_depth(term) == 3
        assert term_depth(Const("a")) == 1


class TestSubstitution:
    def test_apply_binds_variable(self):
        subst = Substitution({Var("X"): Const("a")})
        assert subst.apply(Var("X")) == Const("a")
        assert subst.apply(Var("Y")) == Var("Y")

    def test_apply_recurses_into_functions(self):
        subst = Substitution({Var("X"): Const("a")})
        assert subst.apply(parse_term("f(X, X)")) == parse_term("f(a, a)")

    def test_identity_bindings_dropped(self):
        subst = Substitution({Var("X"): Var("X")})
        assert len(subst) == 0

    def test_compose_order(self):
        first = Substitution({Var("X"): Var("Y")})
        second = Substitution({Var("Y"): Const("a")})
        composed = first.compose(second)
        assert composed.apply(Var("X")) == Const("a")

    def test_restrict(self):
        subst = Substitution({Var("X"): Const("a"), Var("Y"): Const("b")})
        restricted = subst.restrict([Var("X")])
        assert Var("X") in restricted
        assert Var("Y") not in restricted

    def test_equality_and_hash(self):
        a = Substitution({Var("X"): Const("a")})
        b = Substitution({Var("X"): Const("a")})
        assert a == b
        assert hash(a) == hash(b)


class TestRenameApart:
    def test_renames_all_variables(self):
        atoms = (parse_atom("p(X, Y)"), parse_atom("q(X)"))
        renamed, _ = rename_apart(atoms, "_1")
        names = set()
        for atom in renamed:
            names.update(v.name for v in atom.variables())
        assert names == {"X_1", "Y_1"}


class TestUnify:
    def test_identical_terms(self):
        subst = unify(parse_term("f(a)"), parse_term("f(a)"))
        assert subst is not None and len(subst) == 0

    def test_variable_to_constant(self):
        subst = unify(Var("X"), Const("a"))
        assert subst is not None
        assert subst.apply(Var("X")) == Const("a")

    def test_clash(self):
        assert unify(Const("a"), Const("b")) is None

    def test_functor_mismatch(self):
        assert unify(parse_term("f(X)"), parse_term("g(X)")) is None

    def test_arity_mismatch(self):
        assert unify(parse_term("f(X)"), parse_term("f(X, Y)")) is None

    def test_nested_unification(self):
        subst = unify(parse_term("f(X, g(Y))"), parse_term("f(a, g(b))"))
        assert subst is not None
        assert subst.apply(Var("X")) == Const("a")
        assert subst.apply(Var("Y")) == Const("b")

    def test_variable_chains(self):
        subst = unify(parse_term("f(X, Y)"), parse_term("f(Y, a)"))
        assert subst is not None
        assert subst.apply(Var("X")) == Const("a")
        assert subst.apply(Var("Y")) == Const("a")

    def test_occurs_check_blocks_infinite_term(self):
        assert unify(Var("X"), parse_term("f(X)")) is None

    def test_occurs_check_can_be_disabled(self):
        subst = unify(Var("X"), parse_term("f(X)"), occurs_check=False)
        assert subst is not None  # unsound, but Prolog-compatible

    def test_unifier_equalises(self):
        left = parse_term("f(X, g(Y), Z)")
        right = parse_term("f(h(W), g(a), W)")
        subst = unify(left, right)
        assert subst is not None
        assert subst.apply(left) == subst.apply(right)


class TestUnifyAtoms:
    def test_predicate_mismatch(self):
        assert unify_atoms(parse_atom("p(X)"), parse_atom("q(X)")) is None

    def test_matching_atoms(self):
        subst = unify_atoms(
            parse_atom("adjacent(X, river)"),
            parse_atom("adjacent(bank, Y)"),
        )
        assert subst is not None
        assert subst.apply(Var("X")) == Const("bank")
        assert subst.apply(Var("Y")) == Const("river")

    def test_sequences(self):
        subst = unify_sequences(
            [Var("X"), Const("b")], [Const("a"), Const("b")]
        )
        assert subst is not None
        assert subst.apply(Var("X")) == Const("a")

    def test_sequences_length_mismatch(self):
        assert unify_sequences([Var("X")], []) is None
