"""Tier-1 smoke check for ``benchmarks/results.py``.

The results pipeline is the one artifact every PR's perf claims land
in (``BENCH_trajectory.json`` + rendered report); this smoke keeps the
runner healthy: the saturation matrix executes at tiny sizes, every
cell asserts parallel == streaming == serial before recording, runs
append (never rewrite), and the trajectory report renders a comparison
row per recorded run.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

pytestmark = pytest.mark.analysis

_BENCHMARKS = Path(__file__).resolve().parent.parent / "benchmarks"


@pytest.fixture(scope="module")
def results_module():
    sys.path.insert(0, str(_BENCHMARKS))
    try:
        import results

        yield results
    finally:
        sys.path.remove(str(_BENCHMARKS))


@pytest.fixture(scope="module")
def trajectory(results_module, tmp_path_factory):
    out = tmp_path_factory.mktemp("trajectory") / "BENCH_trajectory.json"
    report = out.with_suffix(".md")
    argv = [
        "--smoke", "--label", "smoke-a", "--repeats", "1",
        "--sizes", "400", "--out", str(out), "--report", str(report),
    ]
    assert results_module.main(argv) == 0
    assert results_module.main(
        argv[:2] + ["smoke-b"] + argv[3:]
    ) == 0
    return json.loads(out.read_text()), report.read_text()


def test_runs_append_with_schema(trajectory):
    data, _ = trajectory
    assert data["schema"] == 1
    assert [run["label"] for run in data["runs"]] == [
        "smoke-a", "smoke-b",
    ]


def test_cells_cover_matrix_and_assert_equivalence(trajectory):
    data, _ = trajectory
    for run in data["runs"]:
        assert run["workers_tested"] == [2]
        skews = {cell["skew"] for cell in run["cells"]}
        assert skews == {"uniform", "skewed"}
        for cell in run["cells"]:
            assert cell["equivalent"] is True
            assert cell["violations"] > 0  # gsn_case smoke still checks
            assert cell["parallel_s"]["2"]["min_s"] > 0
            assert cell["streaming_s"]["min_s"] > 0
            assert cell["journal_rounds"] > 0


def test_skewed_cells_actually_skew(trajectory):
    data, _ = trajectory
    cells = {
        cell["skew"]: cell for cell in data["runs"][-1]["cells"]
    }
    assert cells["skewed"]["max_shard_fraction"] >= 0.4
    assert cells["uniform"]["max_shard_fraction"] <= 0.3


def test_report_renders_latest_and_trajectory(trajectory):
    _, report = trajectory
    assert "## Latest run: `smoke-b`" in report
    assert "`smoke-a`" in report  # trajectory table includes prior runs
    assert "speedup" in report


def test_schema_mismatch_fails_loudly(results_module, tmp_path):
    out = tmp_path / "BENCH_trajectory.json"
    out.write_text(json.dumps({"schema": 99, "runs": []}))
    with pytest.raises(SystemExit, match="schema"):
        results_module.load_trajectory(out)
