"""The asyncio HTTP/JSON argument service, end to end.

Every endpoint through a real socket (server on a background event-loop
thread, :class:`~repro.service.ServiceClient` over ``http.client``),
the error contract (400/404/405/409), the optimistic-concurrency append
protocol with ``expect_generation``, the offline-edit bridge
(``ops_for_delta``), lazy store discovery, and — the point of the
subsystem — concurrent mixed traffic: reader threads hammering query /
node / check while writer threads append, with every response naming a
coherent generation and no request ever failing.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Any

import pytest

from repro.core import ArgumentBuilder
from repro.core.argument import Argument, LinkKind
from repro.core.nodes import Node, NodeType
from repro.service import ArgumentService, ServiceClient, ServiceClientError
from repro.service.client import ops_for_delta
from repro.store import StoredArgument

pytestmark = pytest.mark.service

STORE = "braking.store"


def build_case() -> Argument:
    builder = ArgumentBuilder("braking-system")
    top = builder.goal("The braking system is acceptably safe")
    strategy = builder.strategy(
        "Argument over each identified hazard", under=top
    )
    for index in (1, 2):
        hazard = builder.goal(
            f"Hazard H{index} is acceptably managed", under=strategy
        )
        builder.solution(f"Mitigation record MR-{index}", under=hazard)
    return builder.build()


class ServiceFixture:
    """A served root directory: background loop, bound port, clients."""

    def __init__(self, root) -> None:
        self.root = root
        self.loop = asyncio.new_event_loop()
        self.service = ArgumentService(root)
        bound: "dict[str, tuple[str, int]]" = {}
        ready = threading.Event()

        def serve() -> None:
            asyncio.set_event_loop(self.loop)
            bound["address"] = self.loop.run_until_complete(
                self.service.start()
            )
            ready.set()
            self.loop.run_forever()

        self.thread = threading.Thread(target=serve, daemon=True)
        self.thread.start()
        assert ready.wait(10), "service failed to start"
        self.host, self.port = bound["address"]
        self._clients: "list[ServiceClient]" = []

    def client(self) -> ServiceClient:
        client = ServiceClient(self.host, self.port)
        self._clients.append(client)
        return client

    def stop(self) -> None:
        for client in self._clients:
            client.close()
        future = asyncio.run_coroutine_threadsafe(
            self.service.close(), self.loop
        )
        future.result(10)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(10)


@pytest.fixture()
def served(tmp_path):
    build_case().save(tmp_path / STORE)
    fixture = ServiceFixture(tmp_path)
    try:
        yield fixture
    finally:
        fixture.stop()


class TestReadEndpoints:
    def test_health_counts_stores(self, served):
        payload = served.client().health()
        assert payload == {"status": "ok", "stores": 1}

    def test_stores_lists_summaries(self, served):
        (summary,) = served.client().stores()
        assert summary["name"] == STORE
        assert summary["argument"] == "braking-system"
        assert summary["nodes"] == 6
        assert summary["journal_segments"] == 0
        assert "+" in summary["generation"]

    def test_store_summary_and_node(self, served):
        client = served.client()
        summary = client.store(STORE)
        assert summary["links"] == 5
        top = client.node(STORE, "G1")
        assert top["node"]["type"] == "goal"
        assert top["generation"] == summary["generation"]

    def test_subtree_is_closed_over_links(self, served):
        subtree = served.client().subtree(STORE, "S1")
        identifiers = {node["id"] for node in subtree["nodes"]}
        for link in subtree["links"]:
            assert link["source"] in identifiers
            assert link["target"] in identifiers
        assert len(identifiers) == 5, "strategy + 2 hazards + 2 solutions"

    def test_query_json_mirrors_the_combinators(self, served):
        client = served.client()
        goals = client.query(STORE, {"type": "goal"})
        assert len(goals["nodes"]) == 3
        hazard_goals = client.query(STORE, {"all": [
            {"type": "goal"}, {"text_contains": "hazard"},
        ]})
        assert len(hazard_goals["nodes"]) == 2
        non_goals = client.query(STORE, {"not": {"type": "goal"}})
        assert len(non_goals["nodes"]) == 3
        either = client.query(STORE, {"any": [
            {"type": "solution"}, {"type": "strategy"},
        ]})
        assert len(either["nodes"]) == 3
        case_sensitive = client.query(STORE, {"text_contains": {
            "needle": "Hazard", "case_sensitive": True,
        }})
        assert len(case_sensitive["nodes"]) == 2

    def test_check_streams_the_rules(self, served):
        verdict = served.client().check(STORE)
        assert verdict["well_formed"] is True
        assert verdict["violations"] == []

    def test_check_reports_violations_with_rule_names(self, served, tmp_path):
        broken = Argument("broken")
        broken.add_node(Node("G0", NodeType.GOAL, "An unsupported claim"))
        broken.save(tmp_path / "broken.store")
        verdict = served.client().check("broken.store")
        assert verdict["well_formed"] is False
        assert any(v["subject"] == "G0" for v in verdict["violations"])

    def test_lazy_discovery_of_new_stores(self, served, tmp_path):
        client = served.client()
        assert client.health()["stores"] == 1
        build_case().save(tmp_path / "late.store")
        assert client.health()["stores"] == 2
        assert client.store("late.store")["argument"] == "braking-system"


class TestSearchEndpoint:
    def test_search_ranks_marks_and_renders_neighbourhoods(self, served):
        payload = served.client().search(STORE, "hazard mitigation")
        assert payload["q"] == "hazard mitigation"
        assert "+" in payload["generation"]
        hits = payload["hits"]
        assert hits, "both hazard goals and the strategy match"
        assert {hit["id"] for hit in hits} >= {"G2", "G3", "S1"}
        top = hits[0]
        assert any(
            "[hazard]" in hit["snippet"].lower() for hit in hits
        ), "matched terms must be marked in the snippets"
        assert top["matched_terms"]
        assert isinstance(top["score"], float)
        strategy = next(hit for hit in hits if hit["id"] == "S1")
        assert strategy["neighbourhood"], (
            "the strategy's supporting goals must render"
        )
        assert "└─" in strategy["summary"]
        scores = [hit["score"] for hit in hits]
        assert scores == sorted(scores, reverse=True)

    def test_search_limit_caps_the_hits(self, served):
        payload = served.client().search(STORE, "hazard", limit=1)
        assert len(payload["hits"]) == 1

    def test_search_agrees_between_indexed_and_unindexed_stores(
        self, served, tmp_path
    ):
        build_case().save(tmp_path / "indexed.store", search_index=True)
        client = served.client()
        plain = client.search(STORE, "mitigation record")
        indexed = client.search("indexed.store", "mitigation record")
        assert [
            (hit["id"], hit["score"]) for hit in plain["hits"]
        ] == [(hit["id"], hit["score"]) for hit in indexed["hits"]]

    def test_malformed_search_bodies_are_400(self, served):
        client = served.client()
        for bad_body in (
            {},
            {"q": ""},
            {"q": "   "},
            {"q": 7},
            {"q": "hazard", "limit": 0},
            {"q": "hazard", "limit": True},
            {"q": "hazard", "limit": "ten"},
            "not an object",
        ):
            with pytest.raises(ServiceClientError) as excinfo:
                client._request(
                    "POST", f"/stores/{STORE}/search", bad_body
                )
            assert excinfo.value.status == 400, bad_body
            assert excinfo.value.detail

    def test_search_on_unknown_store_is_404(self, served):
        with pytest.raises(ServiceClientError) as excinfo:
            served.client().search("nope.store", "hazard")
        assert excinfo.value.status == 404


class TestErrorContract:
    def test_unknown_store_and_node_are_404(self, served):
        client = served.client()
        with pytest.raises(ServiceClientError) as excinfo:
            client.store("nope.store")
        assert excinfo.value.status == 404
        with pytest.raises(ServiceClientError) as excinfo:
            client.node(STORE, "NOPE")
        assert excinfo.value.status == 404

    def test_unknown_route_is_404_and_wrong_method_405(self, served):
        client = served.client()
        with pytest.raises(ServiceClientError) as excinfo:
            client._request("GET", "/frobnicate")
        assert excinfo.value.status == 404
        with pytest.raises(ServiceClientError) as excinfo:
            client._request("POST", "/health")
        assert excinfo.value.status == 405

    def test_store_names_cannot_escape_the_root(self, served):
        with pytest.raises(ServiceClientError) as excinfo:
            served.client()._request("GET", "/stores/..%2f..%2fetc")
        assert excinfo.value.status == 404

    def test_malformed_queries_are_400_with_guidance(self, served):
        client = served.client()
        for bad in (
            {"type": "gaol"},
            {"frobnicate": 1},
            {"all": []},
            {"type": "goal", "extra": 1},
            "not an object",
        ):
            with pytest.raises(ServiceClientError) as excinfo:
                client.query(STORE, bad)  # type: ignore[arg-type]
            assert excinfo.value.status == 400, bad
            assert excinfo.value.detail, "errors must explain themselves"

    def test_malformed_append_bodies_are_400(self, served):
        client = served.client()
        for bad_body in (
            {"not_ops": []},
            {"ops": ["a string"]},
            {"ops": [{"op": "frobnicate"}]},
            {"ops": [{"op": "add_node"}]},
        ):
            with pytest.raises(ServiceClientError) as excinfo:
                client._request("POST", f"/stores/{STORE}/append", bad_body)
            assert excinfo.value.status == 400, bad_body

    def test_non_json_body_is_400(self, served):
        import http.client

        connection = http.client.HTTPConnection(
            served.host, served.port, timeout=10
        )
        try:
            connection.request(
                "POST", f"/stores/{STORE}/query", b"{not json",
                {"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            assert response.status == 400
            assert b"JSON" in response.read()
        finally:
            connection.close()


class TestAppendProtocol:
    HAZARD_OPS = [
        {"op": "add_node", "node": {
            "id": "G-H3", "type": "goal",
            "text": "Hazard H3 is acceptably managed",
        }},
        {"op": "add_link", "link": {
            "source": "S1", "target": "G-H3", "kind": "supported_by",
        }},
    ]

    def test_append_advances_the_generation(self, served):
        client = served.client()
        before = client.store(STORE)["generation"]
        result = client.append(STORE, self.HAZARD_OPS)
        assert result["applied"] == 2
        assert result["nodes"] == 7
        assert result["generation"] != before
        assert client.node(STORE, "G-H3")["node"]["type"] == "goal"

    def test_expect_generation_matching_lands(self, served):
        client = served.client()
        generation = client.store(STORE)["generation"]
        result = client.append(
            STORE, self.HAZARD_OPS, expect_generation=generation
        )
        assert result["applied"] == 2

    def test_stale_expect_generation_is_409_then_rebases(self, served):
        first = served.client()
        second = served.client()
        generation = first.store(STORE)["generation"]
        first.append(STORE, self.HAZARD_OPS, expect_generation=generation)
        evidence = [{"op": "add_node", "node": {
            "id": "Sn-H3", "type": "solution", "text": "Report DR-3",
        }}]
        with pytest.raises(ServiceClientError) as excinfo:
            second.append(STORE, evidence, expect_generation=generation)
        assert excinfo.value.status == 409
        assert "rebase" in excinfo.value.detail
        current = second.store(STORE)["generation"]
        result = second.append(
            STORE, evidence, expect_generation=current
        )
        assert result["nodes"] == 8, "both editors' nodes present"

    def test_append_is_durable_not_just_in_memory(self, served, tmp_path):
        served.client().append(STORE, self.HAZARD_OPS)
        reloaded = StoredArgument(tmp_path / STORE)
        assert "G-H3" in reloaded, "append must hit the store directory"
        assert reloaded.journal_segments, "service appends journal"

    def test_ops_for_delta_bridges_offline_edits(self, served, tmp_path):
        store = tmp_path / STORE
        argument = Argument.load(store)
        argument.add_node(Node(
            "C1", NodeType.CONTEXT, "Operating on public roads",
        ))
        argument.add_link("G1", "C1", LinkKind.IN_CONTEXT_OF)
        delta = argument.persisted_delta(store)
        assert delta is not None
        client = served.client()
        result = client.append(STORE, delta)
        assert result["applied"] == len(delta)
        assert client.node(STORE, "C1")["node"]["type"] == "context"

    def test_compact_and_gc_fold_the_journal(self, served, tmp_path):
        client = served.client()
        client.append(STORE, self.HAZARD_OPS)
        assert client.store(STORE)["journal_segments"] == 1
        compacted = client.compact(STORE)
        assert client.store(STORE)["journal_segments"] == 0
        swept = client.gc(STORE)
        assert swept["generation"] == compacted["generation"]
        assert swept["removed"], "superseded journal files reclaimed"
        assert "G-H3" in StoredArgument(tmp_path / STORE)


class TestConcurrentTraffic:
    def test_mixed_readers_and_writers_never_fail(self, served):
        """8 threads × mixed traffic: every response coherent, no 5xx."""
        rounds = 12
        errors: "list[BaseException]" = []
        generations: "list[str]" = []

        def writer(worker: int) -> None:
            client = served.client()
            try:
                for round_index in range(rounds):
                    while True:
                        generation = client.store(STORE)["generation"]
                        ops = [{"op": "add_node", "node": {
                            "id": f"W{worker}R{round_index}",
                            "type": "context",
                            "text": f"Edit {worker}/{round_index}",
                        }}]
                        try:
                            result = client.append(
                                STORE, ops, expect_generation=generation
                            )
                            generations.append(result["generation"])
                            break
                        except ServiceClientError as error:
                            if error.status != 409:
                                raise
            except BaseException as error:  # pragma: no cover
                errors.append(error)

        def reader() -> None:
            client = served.client()
            try:
                for _ in range(rounds * 2):
                    payload = client.query(STORE, {"type": "goal"})
                    assert len(payload["nodes"]) >= 3
                    summary = client.store(STORE)
                    assert summary["nodes"] >= 6
                    client.node(STORE, "G1")
            except BaseException as error:  # pragma: no cover
                errors.append(error)

        threads = (
            [threading.Thread(target=writer, args=(w,)) for w in range(2)]
            + [threading.Thread(target=reader) for _ in range(6)]
        )
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(120)
        assert not errors, errors
        assert len(generations) == 2 * rounds
        assert len(set(generations)) == len(generations), (
            "every committed append must mint a distinct generation"
        )
        final = served.client().store(STORE)
        assert final["nodes"] == 6 + 2 * rounds, "a service append was lost"
