"""Tests for the repro.experiments package (§VI studies)."""

from __future__ import annotations

import random

import pytest

from repro.experiments.audience_study import (
    AudienceStudyConfig,
    run_audience_study,
    specimen_argument,
)
from repro.experiments.effort_study import (
    EffortStudyConfig,
    run_effort_study,
)
from repro.experiments.instantiation_study import (
    InstantiationStudyConfig,
    run_instantiation_study,
)
from repro.experiments.review_study import (
    ReviewStudyConfig,
    build_materials,
    run_review_study,
)
from repro.experiments.stats import (
    bootstrap_ci,
    cliffs_delta,
    cohens_d,
    cohens_kappa,
    mann_whitney,
    mean_pairwise_agreement,
    summarise,
)
from repro.experiments.subjects import (
    Background,
    comprehension_probability,
    informal_detection_probability,
    manual_formal_detection_probability,
    reading_minutes,
    sample_pool,
    sample_subject,
)
from repro.experiments.sufficiency_study import (
    SufficiencyStudyConfig,
    build_case,
    run_sufficiency_study,
)
from repro.fallacies.taxonomy import FormalFallacy, InformalFallacy

_SMALL_A = ReviewStudyConfig(subjects=8, arguments=2, formal_steps=4)
_SMALL_B = EffortStudyConfig(subjects_per_group=5, tasks=3)
_SMALL_C = AudienceStudyConfig(subjects_per_background=5)
_SMALL_D = InstantiationStudyConfig(subjects_per_group=6, tasks=3)
_SMALL_E = SufficiencyStudyConfig(assessors_per_group=5)


class TestStats:
    def test_summary_fields(self):
        summary = summarise([1.0, 2.0, 3.0, 4.0], seed=1)
        assert summary.n == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.ci_low <= summary.mean <= summary.ci_high

    def test_summary_rejects_empty(self):
        with pytest.raises(ValueError):
            summarise([])

    def test_bootstrap_deterministic(self):
        values = [1.0, 5.0, 2.0, 8.0, 3.0]
        assert bootstrap_ci(values, seed=3) == bootstrap_ci(values, seed=3)

    def test_mann_whitney_separated_samples(self):
        left = [1.0, 2.0, 3.0, 2.5, 1.5]
        right = [10.0, 12.0, 11.0, 13.0, 10.5]
        _, p_value = mann_whitney(left, right)
        assert p_value < 0.05

    def test_cohens_d_sign(self):
        assert cohens_d([5.0, 6.0, 7.0], [1.0, 2.0, 3.0]) > 0
        assert cohens_d([1.0, 2.0, 3.0], [5.0, 6.0, 7.0]) < 0

    def test_cliffs_delta_bounds(self):
        delta = cliffs_delta([5, 6], [1, 2])
        assert delta == 1.0
        assert cliffs_delta([1, 2], [5, 6]) == -1.0
        assert -1 <= cliffs_delta([1, 5], [2, 4]) <= 1

    def test_cohens_kappa_perfect_agreement(self):
        assert cohens_kappa(["a", "b", "a"], ["a", "b", "a"]) == \
            pytest.approx(1.0)

    def test_cohens_kappa_chance_level(self):
        # Independent coin-flip raters: kappa near zero.
        rng = random.Random(5)
        a = [rng.random() < 0.5 for _ in range(2000)]
        b = [rng.random() < 0.5 for _ in range(2000)]
        assert abs(cohens_kappa(a, b)) < 0.1

    def test_pairwise_agreement(self):
        judgments = [[1, 2, 3], [1, 2, 3], [1, 2, 4]]
        agreement = mean_pairwise_agreement(judgments)
        assert agreement == pytest.approx((1 + 2 / 3 + 2 / 3) / 3)

    def test_pairwise_agreement_needs_two(self):
        with pytest.raises(ValueError):
            mean_pairwise_agreement([[1, 2]])


class TestSubjects:
    def test_profiles_bounded(self, rng):
        for background in Background:
            subject = sample_subject(rng, background)
            assert 0 <= subject.logic_skill <= 1
            assert 0 <= subject.domain_knowledge <= 1
            assert subject.reading_wpm >= 50

    def test_pool_cycles_backgrounds(self, rng):
        pool = sample_pool(rng, 12)
        backgrounds = {s.background for s in pool}
        assert backgrounds == set(Background)

    def test_logic_skill_drives_formal_detection(self, rng):
        strong = sample_subject(rng, Background.SOFTWARE_ENGINEER)
        weak = sample_subject(rng, Background.MANAGER)
        fallacy = FormalFallacy.DENYING_THE_ANTECEDENT
        # Compare population means via many draws.
        strong_p = sum(
            manual_formal_detection_probability(
                sample_subject(rng, Background.SOFTWARE_ENGINEER),
                fallacy, 12,
            )
            for _ in range(50)
        )
        weak_p = sum(
            manual_formal_detection_probability(
                sample_subject(rng, Background.MANAGER), fallacy, 12
            )
            for _ in range(50)
        )
        assert strong_p > weak_p

    def test_size_decays_detection(self, rng):
        subject = sample_subject(rng, Background.SAFETY_ENGINEER)
        small = manual_formal_detection_probability(
            subject, FormalFallacy.BEGGING_THE_QUESTION, 5
        )
        large = manual_formal_detection_probability(
            subject, FormalFallacy.BEGGING_THE_QUESTION, 100
        )
        assert large < small

    def test_informal_detection_rides_on_domain_knowledge(self, rng):
        expert = sample_subject(rng, Background.SAFETY_ENGINEER)
        novice = sample_subject(rng, Background.MANAGER)
        kind = InformalFallacy.OMISSION_OF_KEY_EVIDENCE
        expert_total = sum(
            informal_detection_probability(
                sample_subject(rng, Background.SAFETY_ENGINEER), kind, 12
            )
            for _ in range(50)
        )
        novice_total = sum(
            informal_detection_probability(
                sample_subject(rng, Background.MANAGER), kind, 12
            )
            for _ in range(50)
        )
        assert expert_total > novice_total

    def test_formal_reading_slower_for_everyone(self, rng):
        for background in Background:
            subject = sample_subject(rng, background)
            assert reading_minutes(subject, 500, formal=True) > \
                reading_minutes(subject, 500, formal=False)

    def test_comprehension_gated_by_logic_for_formal(self, rng):
        engineer = sample_subject(rng, Background.SOFTWARE_ENGINEER)
        manager = sample_subject(rng, Background.MANAGER)
        assert comprehension_probability(engineer, formal=True) > \
            comprehension_probability(manager, formal=True)


class TestExperimentA:
    def test_deterministic(self):
        first = run_review_study(_SMALL_A)
        second = run_review_study(_SMALL_A)
        assert first.rows() == second.rows()

    def test_tool_finds_all_and_only_injected(self):
        result = run_review_study(_SMALL_A)
        assert result.tool_detected_all_injected
        assert result.tool_false_positives == 0

    def test_tool_eliminates_formal_misses(self):
        # More trials than the smoke config so manual misses are near-
        # certain to appear (per-instance detection tops out below 0.9).
        result = run_review_study(
            ReviewStudyConfig(subjects=16, arguments=4, formal_steps=6)
        )
        assert result.manual_plus_tool.formal_miss_rate == 0.0
        assert result.manual_both.formal_miss_rate > 0.0

    def test_tool_cannot_touch_informal_misses(self):
        # §IV.C: the tool is blind to informal fallacies; both groups
        # miss them at comparable (non-zero) rates.
        result = run_review_study(_SMALL_A)
        assert result.manual_both.informal_miss_rate > 0.0
        assert result.manual_plus_tool.informal_miss_rate > 0.0

    def test_tool_saves_time(self):
        result = run_review_study(_SMALL_A)
        assert result.manual_plus_tool.time.mean < \
            result.manual_both.time.mean

    def test_materials_ground_truth(self):
        rng = random.Random(5)
        packs = build_materials(_SMALL_A, rng)
        assert len(packs) == _SMALL_A.arguments
        for pack in packs:
            assert pack.injected_informal == \
                _SMALL_A.informal_per_argument
            assert len(pack.formal_steps) == _SMALL_A.formal_steps

    def test_render(self):
        text = run_review_study(_SMALL_A).render()
        assert "manual_both" in text and "manual_plus_tool" in text


class TestExperimentB:
    def test_deterministic(self):
        assert run_effort_study(_SMALL_B).rows() == \
            run_effort_study(_SMALL_B).rows()

    def test_expertise_gap(self):
        result = run_effort_study(_SMALL_B)
        assert result.expertise_gap_final_task > 1.5

    def test_learning_effect_present(self):
        result = run_effort_study(_SMALL_B)
        assert result.learning_ratio_trained > 1.0
        assert result.learning_ratio_untrained > 1.0

    def test_formalisation_costs_nontrivial_fraction(self):
        result = run_effort_study(_SMALL_B)
        overheads = [c.overhead_ratio for c in result.cells]
        assert max(overheads) > 0.5  # a real cost, as §VI.B supposes

    def test_cells_cover_groups_and_tasks(self):
        result = run_effort_study(_SMALL_B)
        groups = {c.group for c in result.cells}
        tasks = {c.task_index for c in result.cells}
        assert groups == {"trained", "untrained"}
        assert tasks == set(range(_SMALL_B.tasks))


class TestExperimentC:
    def test_deterministic(self):
        assert run_audience_study(_SMALL_C).rows() == \
            run_audience_study(_SMALL_C).rows()

    def test_specimen_is_well_formed(self):
        from repro.core.wellformed import is_well_formed

        assert is_well_formed(specimen_argument())

    def test_everyone_slows_down(self):
        result = run_audience_study(_SMALL_C)
        for background in Background:
            assert result.slowdown(background) > 1.0

    def test_non_logicians_hit_hardest(self):
        result = run_audience_study(_SMALL_C)
        assert result.slowdown(Background.MANAGER) > \
            result.slowdown(Background.SOFTWARE_ENGINEER)
        assert result.comprehension_drop(Background.OPERATOR) > \
            result.comprehension_drop(Background.SOFTWARE_ENGINEER)

    def test_questionnaire_records_training(self):
        result = run_audience_study(_SMALL_C)
        assert any(r.formal_methods_training for r in result.records)
        assert any(
            not r.formal_methods_training for r in result.records
        )

    def test_cells_complete(self):
        result = run_audience_study(_SMALL_C)
        assert len(result.cells) == len(Background) * 2


class TestExperimentD:
    def test_deterministic(self):
        assert run_instantiation_study(_SMALL_D).rows() == \
            run_instantiation_study(_SMALL_D).rows()

    def test_tool_blocks_every_typing_error(self):
        result = run_instantiation_study(_SMALL_D)
        assert result.tool_rejected_every_typing_error
        assert result.tool.defects.omissions == 0
        assert result.tool.defects.type_errors == 0
        assert result.tool.defects.incompatible == 0

    def test_informal_condition_leaves_defects(self):
        result = run_instantiation_study(
            InstantiationStudyConfig(subjects_per_group=12, tasks=6)
        )
        assert result.informal.defects.total > 0

    def test_semantic_misuse_survives_both(self):
        result = run_instantiation_study(
            InstantiationStudyConfig(subjects_per_group=14, tasks=8)
        )
        assert result.tool.defects.semantic > 0
        assert result.informal.defects.semantic > 0

    def test_time_measured_for_both(self):
        result = run_instantiation_study(_SMALL_D)
        assert result.informal.minutes.mean > 0
        assert result.tool.minutes.mean > 0


class TestExperimentE:
    def test_deterministic(self):
        assert run_sufficiency_study(_SMALL_E).rows() == \
            run_sufficiency_study(_SMALL_E).rows()

    def test_ground_truth_varies(self):
        result = run_sufficiency_study(_SMALL_E)
        assert len(set(result.ground_truth)) > 1

    def test_graph_tracing_more_accurate_and_agreeing(self):
        result = run_sufficiency_study(_SMALL_E)
        assert result.graph.exact_accuracy > result.proof.exact_accuracy
        assert result.graph.agreement > result.proof.agreement

    def test_case_builder_integrity(self):
        case = build_case(seed=3)
        assert case.integrity_report().ok

    def test_render(self):
        text = run_sufficiency_study(_SMALL_E).render()
        assert "graph_tracing" in text and "proof_probing" in text
