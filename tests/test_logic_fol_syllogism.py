"""Tests for repro.logic.fol and repro.logic.syllogism."""

from __future__ import annotations

import itertools

import pytest

from repro.logic.fol import (
    Exists,
    FolAtom,
    FolImplies,
    FolNot,
    ForAll,
    Signature,
    SortError,
    evaluate_fol,
    fol_entails,
    fol_valid,
    ground,
    sort_check,
)
from repro.logic.syllogism import (
    VALID_MOODS,
    CategoricalProposition,
    PropositionForm,
    Syllogism,
    SyllogismError,
    check_syllogism,
    converse,
    is_valid_syllogism,
    socrates_syllogism,
    valid_conversion,
)
from repro.logic.terms import Atom, Const, Var


@pytest.fixture
def signature() -> Signature:
    sig = Signature()
    hazard = sig.declare_sort("Hazard")
    system = sig.declare_sort("System")
    sig.declare_constant("overrun", hazard)
    sig.declare_constant("fire", hazard)
    sig.declare_constant("brake", system)
    sig.declare_predicate("mitigated", hazard)
    sig.declare_predicate("affects", hazard, system)
    return sig


class TestSorts:
    def test_sort_inference(self, signature: Signature):
        assert signature.sort_of_term(Const("overrun"), {}).name == "Hazard"

    def test_undeclared_constant(self, signature: Signature):
        with pytest.raises(SortError):
            signature.sort_of_term(Const("ghost"), {})

    def test_predicate_check(self, signature: Signature):
        signature.check_atom(
            Atom("affects", (Const("fire"), Const("brake"))), {}
        )

    def test_predicate_sort_mismatch(self, signature: Signature):
        with pytest.raises(SortError):
            signature.check_atom(
                Atom("affects", (Const("brake"), Const("fire"))), {}
            )

    def test_arity_mismatch(self, signature: Signature):
        with pytest.raises(SortError):
            signature.check_atom(Atom("mitigated", ()), {})

    def test_quantifier_binds_sort(self, signature: Signature):
        hazard = next(s for s in signature.sorts if s.name == "Hazard")
        formula = ForAll(
            Var("H"), hazard, FolAtom(Atom("mitigated", (Var("H"),)))
        )
        sort_check(signature, formula)

    def test_unbound_variable_rejected(self, signature: Signature):
        with pytest.raises(SortError):
            sort_check(
                signature, FolAtom(Atom("mitigated", (Var("H"),)))
            )

    def test_duplicate_declaration_conflict(self, signature: Signature):
        hazard = next(s for s in signature.sorts if s.name == "Hazard")
        system = next(s for s in signature.sorts if s.name == "System")
        with pytest.raises(SortError):
            signature.declare_constant("overrun", system)


class TestGrounding:
    def test_forall_expands_over_domain(self, signature: Signature):
        hazard = next(s for s in signature.sorts if s.name == "Hazard")
        formula = ForAll(
            Var("H"), hazard, FolAtom(Atom("mitigated", (Var("H"),)))
        )
        grounded = ground(signature, formula)
        text = str(grounded)
        assert "mitigated__overrun" in text
        assert "mitigated__fire" in text

    def test_exists_is_disjunction(self, signature: Signature):
        hazard = next(s for s in signature.sorts if s.name == "Hazard")
        formula = Exists(
            Var("H"), hazard, FolAtom(Atom("mitigated", (Var("H"),)))
        )
        grounded = ground(signature, formula)
        assert "|" in str(grounded)

    def test_empty_domain_rejected(self, signature: Signature):
        empty = signature.declare_sort("Empty")
        formula = ForAll(
            Var("X"), empty, FolAtom(Atom("mitigated", (Var("X"),)))
        )
        with pytest.raises(SortError):
            ground(signature, formula)

    def test_evaluation_closed_world(self, signature: Signature):
        hazard = next(s for s in signature.sorts if s.name == "Hazard")
        formula = ForAll(
            Var("H"), hazard, FolAtom(Atom("mitigated", (Var("H"),)))
        )
        assert evaluate_fol(
            signature, formula,
            {"mitigated__overrun": True, "mitigated__fire": True},
        )
        assert not evaluate_fol(
            signature, formula, {"mitigated__overrun": True}
        )

    def test_entailment_via_grounding(self, signature: Signature):
        hazard = next(s for s in signature.sorts if s.name == "Hazard")
        every = ForAll(
            Var("H"), hazard, FolAtom(Atom("mitigated", (Var("H"),)))
        )
        one = FolAtom(Atom("mitigated", (Const("fire"),)))
        assert fol_entails(signature, [every], one)
        assert not fol_entails(signature, [one], every)

    def test_validity(self, signature: Signature):
        hazard = next(s for s in signature.sorts if s.name == "Hazard")
        tautology = ForAll(
            Var("H"), hazard,
            FolImplies(
                FolAtom(Atom("mitigated", (Var("H"),))),
                FolAtom(Atom("mitigated", (Var("H"),))),
            ),
        )
        assert fol_valid(signature, tautology)


class TestSyllogismStructure:
    def test_socrates_is_barbara(self):
        syllogism = socrates_syllogism()
        assert syllogism.mood() == "AAA"
        assert syllogism.figure() == 1
        assert is_valid_syllogism(syllogism)

    def test_middle_term(self):
        assert socrates_syllogism().middle_term() == "men"

    def test_malformed_rejected(self):
        with pytest.raises(SyllogismError):
            Syllogism(
                CategoricalProposition(PropositionForm.A, "a", "b"),
                CategoricalProposition(PropositionForm.A, "c", "d"),
                CategoricalProposition(PropositionForm.A, "a", "c"),
            )

    def test_distribution(self):
        all_s_p = CategoricalProposition(PropositionForm.A, "s", "p")
        assert all_s_p.distributes("s")
        assert not all_s_p.distributes("p")
        no_s_p = CategoricalProposition(PropositionForm.E, "s", "p")
        assert no_s_p.distributes("s")
        assert no_s_p.distributes("p")
        some_s_p = CategoricalProposition(PropositionForm.I, "s", "p")
        assert not some_s_p.distributes("s")
        some_s_not_p = CategoricalProposition(PropositionForm.O, "s", "p")
        assert some_s_not_p.distributes("p")


class TestSyllogismRules:
    def test_undistributed_middle_detected(self):
        syllogism = Syllogism(
            CategoricalProposition(PropositionForm.A, "dogs", "mammals"),
            CategoricalProposition(PropositionForm.A, "cats", "mammals"),
            CategoricalProposition(PropositionForm.A, "cats", "dogs"),
        )
        rules = {v.rule for v in check_syllogism(syllogism)}
        assert "undistributed middle" in rules

    def test_illicit_major_detected(self):
        # All M are P; No S are M; therefore No S are P (AEE-1: illicit
        # major — P distributed in conclusion, not in major premise).
        syllogism = Syllogism(
            CategoricalProposition(PropositionForm.A, "m", "p"),
            CategoricalProposition(PropositionForm.E, "s", "m"),
            CategoricalProposition(PropositionForm.E, "s", "p"),
        )
        rules = {v.rule for v in check_syllogism(syllogism)}
        assert "illicit major" in rules

    def test_exclusive_premises_detected(self):
        syllogism = Syllogism(
            CategoricalProposition(PropositionForm.E, "m", "p"),
            CategoricalProposition(PropositionForm.E, "s", "m"),
            CategoricalProposition(PropositionForm.E, "s", "p"),
        )
        rules = {v.rule for v in check_syllogism(syllogism)}
        assert "exclusive premises" in rules

    def test_rule_checker_agrees_with_valid_mood_table(self):
        # Exhaustive: all 256 mood x figure combinations.
        forms = list(PropositionForm)
        for major_form, minor_form, conclusion_form in \
                itertools.product(forms, repeat=3):
            for figure in (1, 2, 3, 4):
                syllogism = _make_syllogism(
                    major_form, minor_form, conclusion_form, figure
                )
                mood = (
                    major_form.value + minor_form.value
                    + conclusion_form.value
                )
                expected = (mood, figure) in VALID_MOODS
                assert is_valid_syllogism(syllogism) == expected, (
                    f"{mood}-{figure}"
                )


def _make_syllogism(
    major_form: PropositionForm,
    minor_form: PropositionForm,
    conclusion_form: PropositionForm,
    figure: int,
) -> Syllogism:
    middle, major_term, minor_term = "m", "p", "s"
    if figure == 1:
        major = (middle, major_term)
        minor = (minor_term, middle)
    elif figure == 2:
        major = (major_term, middle)
        minor = (minor_term, middle)
    elif figure == 3:
        major = (middle, major_term)
        minor = (middle, minor_term)
    else:
        major = (major_term, middle)
        minor = (middle, minor_term)
    return Syllogism(
        CategoricalProposition(major_form, *major),
        CategoricalProposition(minor_form, *minor),
        CategoricalProposition(conclusion_form, minor_term, major_term),
    )


class TestConversion:
    def test_e_and_i_convert(self):
        assert valid_conversion(
            CategoricalProposition(PropositionForm.E, "s", "p")
        )
        assert valid_conversion(
            CategoricalProposition(PropositionForm.I, "s", "p")
        )

    def test_a_and_o_do_not_convert(self):
        assert not valid_conversion(
            CategoricalProposition(PropositionForm.A, "s", "p")
        )
        assert not valid_conversion(
            CategoricalProposition(PropositionForm.O, "s", "p")
        )

    def test_converse_swaps_terms(self):
        proposition = CategoricalProposition(
            PropositionForm.A, "s", "p"
        )
        assert converse(proposition).subject == "p"
        assert converse(proposition).predicate == "s"
