"""Tests for the repro.notation package."""

from __future__ import annotations

import json

import pytest

from repro.core.case import AssuranceCase
from repro.core.hicases import HiView
from repro.core.nodes import Node, NodeType
from repro.notation.ascii_art import render_tree, render_view
from repro.notation.cae import (
    CaeCase,
    CaeNode,
    CaeNodeType,
    cae_to_gsn,
    gsn_to_cae,
)
from repro.notation.dot import to_dot
from repro.notation.gsn_text import GsnTextError, parse, serialise
from repro.notation.json_io import (
    argument_from_json,
    argument_to_json,
    case_from_json,
    case_to_json,
)
from repro.notation.prose import render_prose
from repro.notation.tabular import render_table, rows


class TestGsnText:
    def test_roundtrip_simple(self, simple_argument):
        assert parse(serialise(simple_argument)) == simple_argument

    def test_roundtrip_rich(self, hazard_argument):
        assert parse(serialise(hazard_argument)) == hazard_argument

    def test_roundtrip_away_goal_and_undeveloped(self):
        from repro.core.argument import Argument

        argument = Argument(name="modules")
        argument.add_node(Node("G1", NodeType.GOAL, "The system is safe"))
        argument.add_node(Node(
            "AG1", NodeType.AWAY_GOAL, "Power is safe", module="power"
        ))
        argument.add_node(Node(
            "G2", NodeType.GOAL, "Rest is safe", undeveloped=True
        ))
        argument.supported_by("G1", "AG1")
        argument.supported_by("G1", "G2")
        assert parse(serialise(argument)) == argument

    def test_quotes_in_text_roundtrip(self):
        from repro.core.argument import Argument

        argument = Argument(name="q")
        argument.add_node(Node(
            "G1", NodeType.GOAL, 'The "safe state" is reachable',
            undeveloped=True,
        ))
        assert parse(serialise(argument)) == argument

    def test_comments_ignored(self, simple_argument):
        text = serialise(simple_argument) + "# a trailing comment\n"
        assert parse(text) == simple_argument

    def test_error_carries_line_number(self):
        with pytest.raises(GsnTextError) as info:
            parse('argument "x"\nbogus Gx "text"')
        assert info.value.line_number == 2

    def test_must_start_with_argument(self):
        with pytest.raises(GsnTextError):
            parse('goal G1 "claim text here"')

    def test_unknown_link_target_rejected(self):
        with pytest.raises(GsnTextError):
            parse('argument "x"\nG1 -> G2')


class TestCae:
    def test_gsn_to_cae_mapping(self, hazard_argument):
        cae = gsn_to_cae(hazard_argument)
        kinds = {n.node_type for n in cae.nodes}
        assert CaeNodeType.CLAIM in kinds
        assert CaeNodeType.ARGUMENT in kinds
        assert CaeNodeType.EVIDENCE in kinds
        assert CaeNodeType.SIDE_WARRANT in kinds

    def test_roundtrip(self, hazard_argument):
        assert cae_to_gsn(gsn_to_cae(hazard_argument)) == hazard_argument

    def test_goal_to_goal_synthesises_bridge(self):
        from repro.core.argument import Argument

        argument = Argument(name="g2g")
        argument.add_node(Node("G1", NodeType.GOAL, "The system is safe"))
        argument.add_node(Node("G2", NodeType.GOAL, "The unit is safe",
                               undeveloped=True))
        argument.supported_by("G1", "G2")
        cae = gsn_to_cae(argument)
        bridges = [n for n in cae.nodes if n.identifier.startswith("_arg")]
        assert len(bridges) == 1
        # And the bridge collapses on the way back.
        restored = cae_to_gsn(cae)
        assert restored == argument

    def test_cae_validation(self):
        case = CaeCase()
        case.add(CaeNode("C1", CaeNodeType.CLAIM, "The system is safe"))
        case.add(CaeNode("E1", CaeNodeType.EVIDENCE, "Test report"))
        case.add(CaeNode("W1", CaeNodeType.SIDE_WARRANT, "Test adequacy"))
        case.support("E1", "W1")  # evidence cannot be supported
        case.support("C1", "W1")  # warrant must attach to argument
        problems = case.validate()
        assert len(problems) == 2

    def test_cae_duplicate_rejected(self):
        case = CaeCase()
        case.add(CaeNode("C1", CaeNodeType.CLAIM, "Claim"))
        with pytest.raises(ValueError):
            case.add(CaeNode("C1", CaeNodeType.CLAIM, "Claim again"))


class TestProse:
    def test_numbered_sections(self, hazard_argument):
        text = render_prose(hazard_argument)
        assert "1. " in text
        assert "1.1. " in text
        assert "1.1.1. " in text

    def test_context_phrases(self, hazard_argument):
        text = render_prose(hazard_argument)
        assert "In the context of" in text
        assert "Assuming that" in text

    def test_evidence_marked(self, hazard_argument):
        assert "Evidence:" in render_prose(hazard_argument)

    def test_empty_argument(self):
        from repro.core.argument import Argument

        assert "no top-level claim" in render_prose(Argument(name="x"))


class TestTabular:
    def test_rows_structure(self, simple_argument):
        table = rows(simple_argument)
        by_id = {r["id"]: r for r in table}
        assert by_id["G1"]["supported_by"] == ["S1"]
        assert by_id["S1"]["kind"] == "strategy"

    def test_render_contains_headers(self, simple_argument):
        text = render_table(simple_argument)
        assert "Id" in text and "Supported by" in text

    def test_long_text_truncated(self):
        from repro.core.argument import Argument

        argument = Argument(name="long")
        argument.add_node(Node(
            "G1", NodeType.GOAL, "The system is safe " * 20,
            undeveloped=True,
        ))
        text = render_table(argument, max_text_width=30)
        assert "..." in text


class TestDot:
    def test_digraph_structure(self, hazard_argument):
        dot = to_dot(hazard_argument)
        assert dot.startswith("digraph")
        assert '"G1" -> "S1"' in dot
        assert "parallelogram" in dot  # strategy shape

    def test_context_link_dashed(self, hazard_argument):
        dot = to_dot(hazard_argument)
        assert "style=dashed" in dot

    def test_escaping(self):
        from repro.core.argument import Argument

        argument = Argument(name='with "quotes"')
        argument.add_node(Node(
            "G1", NodeType.GOAL, 'The "safe" mode is entered',
            undeveloped=True,
        ))
        dot = to_dot(argument)
        assert '\\"safe\\"' in dot


class TestAsciiArt:
    def test_tree_shape(self, hazard_argument):
        text = render_tree(hazard_argument)
        assert "(G) G1" in text
        assert "`-- " in text or "|-- " in text

    def test_undeveloped_marker(self):
        from repro.core.argument import Argument

        argument = Argument(name="u")
        argument.add_node(Node(
            "G1", NodeType.GOAL, "The system is safe", undeveloped=True
        ))
        assert "<>" in render_tree(argument)

    def test_render_view_respects_folds(self, hazard_argument):
        view = HiView(hazard_argument)
        view.fold("S1")
        text = render_view(view)
        assert "G2" not in text


class TestJsonIo:
    def test_argument_roundtrip(self, hazard_argument):
        assert argument_from_json(
            argument_to_json(hazard_argument)
        ) == hazard_argument

    def test_metadata_roundtrip(self, hazard_argument):
        annotated = hazard_argument.node("G2").with_metadata(
            {"hazard": ("H1", "remote", "catastrophic")}
        )
        hazard_argument.replace_node(annotated)
        restored = argument_from_json(argument_to_json(hazard_argument))
        assert restored.node("G2").metadata_dict() == {
            "hazard": ("H1", "remote", "catastrophic")
        }

    def test_schema_version_checked(self):
        with pytest.raises(ValueError, match="schema"):
            argument_from_json(json.dumps({"schema": 99, "name": "x",
                                           "nodes": [], "links": []}))

    def test_case_roundtrip(self, sample_case):
        restored = case_from_json(case_to_json(sample_case))
        assert restored.argument == sample_case.argument
        assert len(restored.evidence) == len(sample_case.evidence)
        assert restored.citations("Sn1")[0].identifier == "ev1"
        assert restored.criterion.threshold == pytest.approx(1e-6)
