"""Tests for the repro.survey package — the §III pipeline and Table I."""

from __future__ import annotations

import random

import pytest

from repro.survey.corpus import LIBRARIES, build_corpus
from repro.survey.records import (
    Domain,
    SELECTED_PAPERS,
    TABLE_I,
    TABLE_I_UNIQUE,
    papers_claiming_mechanical_confidence,
    papers_formalising_content,
    papers_formalising_pattern_parameters,
    papers_formalising_pattern_structure,
    papers_formalising_syntax,
    papers_informal_first,
    papers_mentioning_mechanical_verification,
)
from repro.survey.report import render_table_i, run_survey
from repro.survey.search import DigitalLibrary, run_searches
from repro.survey.selection import (
    noisy_phase1,
    phase1_keep,
    phase2_keep,
    select_phase1,
    select_phase2,
)


class TestRecords:
    def test_twenty_selected_papers(self):
        assert len(SELECTED_PAPERS) == 20

    def test_unique_keys_and_references(self):
        keys = [p.key for p in SELECTED_PAPERS]
        assert len(set(keys)) == 20
        references = [p.reference for p in SELECTED_PAPERS]
        assert len(set(references)) == 20

    def test_six_claim_mechanical_confidence(self):
        # §IV: refs [9], [11], [16], [17], [18], [39].
        papers = papers_claiming_mechanical_confidence()
        assert sorted(p.reference for p in papers) == [
            9, 11, 16, 17, 18, 39
        ]

    def test_four_formalise_syntax(self):
        # §V.A: refs [11], [12], [17], [18].
        papers = papers_formalising_syntax()
        assert sorted(p.reference for p in papers) == [11, 12, 17, 18]

    def test_eleven_formalise_content(self):
        # §V.B: refs [8], [9], [14]-[16], [19], [20], [22], [24], [25],
        # [39].
        papers = papers_formalising_content()
        assert sorted(p.reference for p in papers) == [
            8, 9, 14, 15, 16, 19, 20, 22, 24, 25, 39
        ]

    def test_four_mention_mechanical_verification(self):
        # §V.B: refs [9], [19], [20], [22].
        papers = papers_mentioning_mechanical_verification()
        assert sorted(p.reference for p in papers) == [9, 19, 20, 22]

    def test_three_informal_first(self):
        # §VI.B: refs [9], [19], [22].
        papers = papers_informal_first()
        assert sorted(p.reference for p in papers) == [9, 19, 22]

    def test_pattern_counts(self):
        # §VI.D: structure [11], [17], [18]; parameters [17], [18].
        assert sorted(
            p.reference for p in papers_formalising_pattern_structure()
        ) == [11, 17, 18]
        assert sorted(
            p.reference for p in papers_formalising_pattern_parameters()
        ) == [17, 18]

    def test_no_paper_provides_substantial_evidence(self):
        # The survey's headline finding: 'none supplies substantial
        # empirical evidence'.
        assert not any(
            p.provides_substantial_evidence for p in SELECTED_PAPERS
        )

    def test_table_i_published_values(self):
        assert TABLE_I["IEEE Xplore"] == {"safety": 12, "security": 13}
        assert TABLE_I["ACM Digital Library"] == {
            "safety": 17, "security": 7
        }
        assert TABLE_I["Springer Link"] == {"safety": 24, "security": 2}
        assert TABLE_I["Google Scholar"] == {"safety": 8, "security": 1}
        assert TABLE_I_UNIQUE == {
            "total": 72, "safety": 54, "security": 23
        }


class TestCorpus:
    def test_deterministic(self):
        a = build_corpus(seed=2014)
        b = build_corpus(seed=2014)
        assert [p.key for p in a.papers] == [p.key for p in b.papers]

    def test_relevant_population_is_72(self):
        corpus = build_corpus()
        assert len(corpus.relevant()) == 72

    def test_selected_papers_embedded(self):
        corpus = build_corpus()
        for record in SELECTED_PAPERS:
            paper = corpus.paper(record.key)
            assert paper.record is record

    def test_noise_papers_excluded_by_phase1(self):
        corpus = build_corpus()
        noise = [p for p in corpus.papers if p.key.startswith("noise_")]
        assert noise
        assert all(not phase1_keep(p) for p in noise)

    def test_library_membership(self):
        corpus = build_corpus()
        for library in LIBRARIES:
            assert corpus.in_library(library)


class TestSearch:
    def test_first_sixty_cap(self):
        corpus = build_corpus()
        library = DigitalLibrary("Springer Link", corpus)
        result = library.search(Domain.SECURITY)
        assert len(result.examined) <= 60

    def test_springer_claims_forty_thousand(self):
        # The paper's anecdote: 40,283 hits for 'formal security
        # argument'.
        corpus = build_corpus()
        library = DigitalLibrary("Springer Link", corpus)
        result = library.search(Domain.SECURITY)
        assert result.claimed_total == 40_283

    def test_results_ranked_by_relevance(self):
        corpus = build_corpus()
        library = DigitalLibrary("IEEE Xplore", corpus)
        result = library.search(Domain.SAFETY)
        relevances = [p.relevance for p in result.examined]
        assert relevances == sorted(relevances, reverse=True)

    def test_eight_searches(self):
        corpus = build_corpus()
        assert len(run_searches(corpus)) == 8

    def test_unknown_library_rejected(self):
        with pytest.raises(ValueError):
            DigitalLibrary("Library of Alexandria", build_corpus())


class TestSelection:
    def test_phase1_criteria(self):
        corpus = build_corpus()
        # A selected paper passes; every noise paper fails on one of the
        # three criteria.
        assert phase1_keep(corpus.paper("rushby2010"))
        noise = [p for p in corpus.papers if p.key.startswith("noise_")]
        assert all(not phase1_keep(p) for p in noise)

    def test_phase2_criteria(self):
        corpus = build_corpus()
        assert phase2_keep(corpus.paper("haley2008"))
        synth = [p for p in corpus.papers if p.key.startswith("synth_")]
        assert synth
        assert all(not phase2_keep(p) for p in synth)

    def test_phase1_unique_union(self):
        corpus = build_corpus()
        phase1 = select_phase1(run_searches(corpus))
        assert len(phase1.unique) == 72

    def test_phase2_yields_twenty(self):
        corpus = build_corpus()
        phase1 = select_phase1(run_searches(corpus))
        phase2 = select_phase2(phase1)
        assert len(phase2) == 20
        assert {p.key for p in phase2} == {
            p.key for p in SELECTED_PAPERS
        }

    def test_noisy_phase1_miss_rate(self):
        corpus = build_corpus()
        searches = run_searches(corpus)
        rng = random.Random(99)
        noisy = noisy_phase1(searches, rng, miss_rate=0.2,
                             false_keep_rate=0.0)
        assert len(noisy.unique) < 72

    def test_noisy_phase1_zero_error_matches_exact(self):
        corpus = build_corpus()
        searches = run_searches(corpus)
        rng = random.Random(1)
        noisy = noisy_phase1(searches, rng, miss_rate=0.0,
                             false_keep_rate=0.0)
        exact = select_phase1(searches)
        assert {p.key for p in noisy.unique} == {
            p.key for p in exact.unique
        }


class TestTableI:
    def test_pipeline_reproduces_published_table(self):
        outcome = run_survey(seed=2014)
        assert outcome.matches_published_table()

    def test_cells_exact(self):
        outcome = run_survey(seed=2014)
        table = outcome.table()
        for library, cells in TABLE_I.items():
            assert table[library] == dict(cells), library

    def test_unique_row_exact(self):
        outcome = run_survey(seed=2014)
        assert outcome.unique_counts() == dict(TABLE_I_UNIQUE)

    def test_reproduces_under_different_seeds(self):
        # The calibration is structural, not a numeric fluke of one seed.
        for seed in (1, 7, 2014, 99):
            outcome = run_survey(seed=seed)
            assert outcome.matches_published_table(), seed

    def test_render_contains_counts(self):
        outcome = run_survey()
        text = render_table_i(outcome)
        assert "72 total" in text
        assert "20 selected papers" in text

    def test_selected_records_resolved(self):
        outcome = run_survey()
        records = outcome.selected_records()
        assert len(records) == 20
