"""Batch mutation, delta log, and incremental-index regression tests.

Pin the mutation edge cases the randomized harness
(``tests/test_invariants.py``) covers only probabilistically, plus the
batch/delta protocol semantics other layers rely on:

* ``remove_node`` of a node with both in- *and* out-links;
* ``replace_node`` changing the node type (the type index — both the
  argument's own and the planner's incremental one — must move);
* ``remove_link`` followed by re-``add_link`` of the same pair (the
  O(1) duplicate-check set must not go stale);
* ``Argument.copy`` independence: the copy has its own version counter,
  delta log, and derived-index slot, so mutating one side never dirties
  the other's cached planner index;
* batch semantics: one version bump per outermost batch, atomic bulk
  validation, coherent mid-batch reads, non-transactional exceptions.
"""

from __future__ import annotations

import pytest

from repro.core.argument import (
    Argument,
    ArgumentError,
    Link,
    LinkKind,
    MutationDelta,
)
from repro.core.nodes import Node, NodeType
from repro.core.query import (
    ArgumentIndex,
    argument_index,
    attribute_equals,
    node_type_is,
    select,
)

from test_invariants import canonical_index


def goal(identifier: str, text: str | None = None, **kwargs) -> Node:
    return Node(
        identifier, NodeType.GOAL, text or f"Claim {identifier} holds",
        **kwargs,
    )


@pytest.fixture
def chain() -> Argument:
    """A -> B -> C with context attached to the middle node."""
    argument = Argument("chain")
    for identifier in ("A", "B", "C"):
        argument.add_node(goal(identifier))
    argument.add_node(Node("Ctx", NodeType.CONTEXT, "Operating context"))
    argument.supported_by("A", "B")
    argument.supported_by("B", "C")
    argument.in_context_of("B", "Ctx")
    return argument


# -- mutation edge cases ----------------------------------------------------


class TestRemoveNodeWithInAndOutLinks:
    def test_all_touching_links_removed(self, chain: Argument) -> None:
        assert argument_index(chain) is not None  # prime the index
        chain.remove_node("B")
        assert "B" not in chain
        assert all("B" not in (l.source, l.target) for l in chain.links)
        assert chain.supporters("A") == []
        assert chain.parents("C") == []
        stats = chain.statistics()
        assert stats["node_count"] == 3
        assert stats["link_count"] == 0
        # The incremental index patched over the removal correctly.
        assert canonical_index(argument_index(chain)) == \
            canonical_index(ArgumentIndex(chain))

    def test_one_version_bump_for_node_and_links(
        self, chain: Argument
    ) -> None:
        before = chain.version
        chain.remove_node("B")  # takes three links with it
        assert chain.version == before + 1

    def test_endpoints_can_relink_afterwards(self, chain: Argument) -> None:
        chain.remove_node("B")
        chain.supported_by("A", "C")  # dup set must not remember A->B->C
        assert [n.identifier for n in chain.supporters("A")] == ["C"]


class TestReplaceNodeRetype:
    def test_type_index_moves_incrementally(self, chain: Argument) -> None:
        index = argument_index(chain)
        chain.replace_node(Node("C", NodeType.SOLUTION, "Test evidence"))
        patched = argument_index(chain)
        assert patched is index, "retype should patch, not rebuild"
        assert canonical_index(patched) == \
            canonical_index(ArgumentIndex(chain))
        assert [n.identifier for n in select(
            chain, node_type_is(NodeType.SOLUTION)
        )] == ["C"]
        assert "C" not in [n.identifier for n in select(
            chain, node_type_is(NodeType.GOAL)
        )]

    def test_duplicate_metadata_names_match_predicate_semantics(
        self,
    ) -> None:
        # Regression: exact plans skip the predicate, so the index must
        # agree with metadata_dict() — where a duplicated attribute
        # name keeps only its *last* entry — not with the raw pairs.
        argument = Argument("dup-meta")
        argument.add_node(goal(
            "G1", metadata=(("a", (1,)), ("a", (2,)))
        ))
        first_entry = attribute_equals("a", (1,))
        last_entry = attribute_equals("a", (2,))
        assert select(argument, first_entry) == \
            [n for n in argument.nodes if first_entry(n)] == []
        assert [n.identifier for n in select(argument, last_entry)] == \
            [n.identifier for n in argument.nodes if last_entry(n)] == \
            ["G1"]

    def test_metadata_postings_follow_replacement(self) -> None:
        argument = Argument("meta")
        argument.add_node(goal(
            "G1", metadata=(("hazard", ("H1", "remote")),)
        ))
        index = argument_index(argument)
        assert [n.identifier for n in select(
            argument, attribute_equals("hazard", ("H1", "remote"))
        )] == ["G1"]
        argument.replace_node(goal(
            "G1", metadata=(("hazard", ("H1", "frequent")),)
        ))
        assert argument_index(argument) is index
        assert select(
            argument, attribute_equals("hazard", ("H1", "remote"))
        ) == []
        assert [n.identifier for n in select(
            argument, attribute_equals("hazard", ("H1", "frequent"))
        )] == ["G1"]


class TestRemoveThenReAddLink:
    def test_same_pair_reinserts_cleanly(self, chain: Argument) -> None:
        link = Link("A", "B", LinkKind.SUPPORTED_BY)
        chain.remove_link(link)
        assert chain.supporters("A") == []
        chain.supported_by("A", "B")
        assert [n.identifier for n in chain.supporters("A")] == ["B"]
        # The duplicate check sees the re-added link...
        with pytest.raises(ArgumentError):
            chain.supported_by("A", "B")
        # ...and a second remove/re-add cycle still works.
        chain.remove_link(link)
        chain.supported_by("A", "B")
        assert chain.statistics()["supported_by_count"] == 2

    def test_churn_inside_batch(self, chain: Argument) -> None:
        link = Link("A", "B", LinkKind.SUPPORTED_BY)
        before = chain.version
        with chain.batch():
            chain.remove_link(link)
            chain.supported_by("A", "B")
        assert chain.version == before + 1
        assert canonical_index(argument_index(chain)) == \
            canonical_index(ArgumentIndex(chain))


# -- copy independence ------------------------------------------------------


class TestCopyIndependence:
    def test_mutating_copy_never_dirties_original(
        self, chain: Argument
    ) -> None:
        index = argument_index(chain)
        version = chain.version
        seq = chain.mutation_seq
        duplicate = chain.copy()
        duplicate.add_node(goal("D"))
        duplicate.supported_by("C", "D")
        duplicate.remove_node("Ctx")
        assert chain.version == version
        assert chain.mutation_seq == seq
        assert argument_index(chain) is index, (
            "the original's cached index must survive copy mutation"
        )
        assert "D" not in chain and "Ctx" in chain

    def test_copy_has_independent_delta_log(self, chain: Argument) -> None:
        duplicate = chain.copy()
        baseline = duplicate.mutation_seq
        chain.add_node(goal("E"))
        delta = duplicate.delta_since(baseline)
        assert delta is not None and not delta, (
            "the original's mutations must not appear in the copy's log"
        )
        duplicate.add_node(goal("F"))
        records = duplicate.delta_since(baseline)
        assert [n.identifier for n in records.nodes_added] == ["F"]

    def test_copy_does_not_share_derived_index(
        self, chain: Argument
    ) -> None:
        original_index = argument_index(chain)
        duplicate = chain.copy()
        assert argument_index(duplicate) is not original_index
        duplicate.replace_node(Node(
            "A", NodeType.STRATEGY, "Argument over hazards"
        ))
        assert [n.identifier for n in select(
            chain, node_type_is(NodeType.STRATEGY)
        )] == []

    def test_copy_is_equal_and_single_version_bump(
        self, chain: Argument
    ) -> None:
        duplicate = chain.copy()
        assert duplicate == chain
        assert duplicate.version == 1, (
            "a copy is one batched construction, one version bump"
        )


# -- batch semantics --------------------------------------------------------


class TestBatchSemantics:
    def test_single_version_bump_and_per_op_seq(self) -> None:
        argument = Argument("batched")
        version = argument.version
        seq = argument.mutation_seq
        with argument.batch():
            argument.add_node(goal("A"))
            argument.add_node(goal("B"))
            argument.supported_by("A", "B")
        assert argument.version == version + 1
        assert argument.mutation_seq == seq + 3

    def test_nested_batches_bump_once(self) -> None:
        argument = Argument("nested")
        version = argument.version
        with argument.batch():
            argument.add_node(goal("A"))
            with argument.batch():
                argument.add_node(goal("B"))
            argument.add_node(goal("C"))
            assert argument.version == version, (
                "no bump before the outermost batch closes"
            )
        assert argument.version == version + 1

    def test_empty_batch_does_not_bump(self) -> None:
        argument = Argument("empty")
        version = argument.version
        with argument.batch():
            pass
        assert argument.version == version

    def test_exception_keeps_applied_mutations_and_bumps(self) -> None:
        argument = Argument("failed")
        version = argument.version
        with pytest.raises(RuntimeError):
            with argument.batch():
                argument.add_node(goal("A"))
                raise RuntimeError("interrupted mid-batch")
        assert "A" in argument, "batches are not transactions"
        assert argument.version == version + 1

    def test_mid_batch_reads_are_coherent(self) -> None:
        argument = Argument("reads")
        with argument.batch():
            argument.add_node(goal("A"))
            argument.add_node(goal("B"))
            argument.supported_by("A", "B")
            assert argument.depth() == 2
            assert [r.identifier for r in argument.roots()] == ["A"]
            assert [n.identifier for n in select(
                argument, node_type_is(NodeType.GOAL)
            )] == ["A", "B"]
            argument.add_node(goal("C"))
            argument.supported_by("B", "C")
            assert argument.depth() == 3

    def test_builder_groups_node_and_link(self) -> None:
        from repro.core.builder import ArgumentBuilder

        builder = ArgumentBuilder("built")
        top = builder.goal("The system is acceptably safe")
        version = builder.argument.version
        builder.goal("Hazard is managed", under=top)
        assert builder.argument.version == version + 1
        with builder.bulk():
            strategy = builder.strategy("Argue over hazards", under=top)
            builder.solution("Test evidence", under=strategy)
        assert builder.argument.version == version + 2


class TestBulkValidation:
    def test_add_nodes_rejects_payload_duplicate_without_mutating(
        self,
    ) -> None:
        argument = Argument("bulk-nodes")
        argument.add_node(goal("A"))
        state = (argument.version, argument.mutation_seq, len(argument))
        with pytest.raises(ArgumentError):
            argument.add_nodes([goal("B"), goal("B")])
        with pytest.raises(ArgumentError):
            argument.add_nodes([goal("C"), goal("A")])
        assert (
            argument.version, argument.mutation_seq, len(argument)
        ) == state

    def test_add_links_rejects_bad_specs_without_mutating(self) -> None:
        argument = Argument("bulk-links")
        argument.add_nodes([goal("A"), goal("B"), goal("C")])
        argument.supported_by("A", "B")
        state = (argument.version, argument.mutation_seq,
                 len(argument.links))
        sup = LinkKind.SUPPORTED_BY
        for bad in (
            [("A", "C", sup), ("A", "missing", sup)],   # unknown target
            [("missing", "C", sup)],                    # unknown source
            [("A", "A", sup)],                          # self-link
            [("A", "C", sup), ("A", "B", sup)],         # dup vs existing
            [("A", "C", sup), ("A", "C", sup)],         # dup in payload
        ):
            with pytest.raises(ArgumentError):
                argument.add_links(bad)
        assert (
            argument.version, argument.mutation_seq, len(argument.links)
        ) == state

    def test_bulk_equals_one_at_a_time(self) -> None:
        bulk, single = Argument("bulk"), Argument("single")
        nodes = [goal(f"G{i}") for i in range(10)]
        specs = [
            (f"G{i}", f"G{i + 1}", LinkKind.SUPPORTED_BY)
            for i in range(9)
        ]
        bulk.add_nodes(nodes)
        bulk.add_links(specs)
        for node in nodes:
            single.add_node(node)
        for source, target, kind in specs:
            single.add_link(source, target, kind)
        assert bulk == single
        assert bulk.statistics() == single.statistics()
        assert canonical_index(argument_index(bulk)) == \
            canonical_index(argument_index(single))


class TestMutationDelta:
    def test_categorised_views_and_order(self, chain: Argument) -> None:
        baseline = chain.mutation_seq
        chain.add_node(goal("D"))
        chain.supported_by("C", "D")
        chain.replace_node(goal("A", "Claim A holds (reworded)"))
        chain.remove_link(Link("B", "Ctx", LinkKind.IN_CONTEXT_OF))
        chain.remove_node("Ctx")
        delta = chain.delta_since(baseline)
        assert isinstance(delta, MutationDelta)
        assert [n.identifier for n in delta.nodes_added] == ["D"]
        assert [n.identifier for n in delta.nodes_removed] == ["Ctx"]
        assert [
            (old.identifier, new.text) for old, new in delta.nodes_replaced
        ] == [("A", "Claim A holds (reworded)")]
        assert [str(l) for l in delta.links_added] == ["C -> D"]
        assert [l.target for l in delta.links_removed] == ["Ctx"]
        # Replay order is preserved verbatim.
        assert [op for op, _ in delta.records] == [
            "add_node", "add_link", "replace_node", "remove_link",
            "remove_node",
        ]

    def test_remove_then_readd_same_identifier_patches_correctly(
        self,
    ) -> None:
        # The ordering trap: aggregated adds-then-removes would drop the
        # re-added node; ordered replay must keep it (at the end).
        argument = Argument("readd")
        argument.add_nodes([goal("A"), goal("B"), goal("C")])
        index = argument_index(argument)
        with argument.batch():
            argument.remove_node("B")
            argument.add_node(goal("B", "Claim B holds again"))
        patched = argument_index(argument)
        assert patched is index
        assert canonical_index(patched) == \
            canonical_index(ArgumentIndex(argument))
        assert [n.identifier for n in argument.nodes] == ["A", "C", "B"]

    def test_empty_delta_for_current_seq(self, chain: Argument) -> None:
        delta = chain.delta_since(chain.mutation_seq)
        assert delta is not None and not delta and len(delta) == 0
