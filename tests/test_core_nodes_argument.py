"""Tests for repro.core.nodes and repro.core.argument."""

from __future__ import annotations

import pytest

from repro.core.argument import Argument, ArgumentError, LinkKind
from repro.core.nodes import Node, NodeType, looks_propositional


class TestNode:
    def test_requires_identifier(self):
        with pytest.raises(ValueError):
            Node("", NodeType.GOAL, "some text")

    def test_requires_text(self):
        with pytest.raises(ValueError):
            Node("G1", NodeType.GOAL, "   ")

    def test_away_goal_requires_module(self):
        with pytest.raises(ValueError):
            Node("AG1", NodeType.AWAY_GOAL, "Power is safe")
        node = Node(
            "AG1", NodeType.AWAY_GOAL, "Power is safe", module="power"
        )
        assert node.module == "power"

    def test_only_goals_and_strategies_undeveloped(self):
        Node("G1", NodeType.GOAL, "Claim text is here", undeveloped=True)
        Node("S1", NodeType.STRATEGY, "Argument text", undeveloped=True)
        with pytest.raises(ValueError):
            Node("Sn1", NodeType.SOLUTION, "Evidence", undeveloped=True)

    def test_letter_codes_match_denney_pai(self):
        # §III.I: {s, g, e, a, j, c}.
        assert NodeType.STRATEGY.letter == "s"
        assert NodeType.GOAL.letter == "g"
        assert NodeType.SOLUTION.letter == "e"
        assert NodeType.ASSUMPTION.letter == "a"
        assert NodeType.JUSTIFICATION.letter == "j"
        assert NodeType.CONTEXT.letter == "c"

    def test_metadata_merge(self):
        node = Node("G1", NodeType.GOAL, "The system is safe")
        annotated = node.with_metadata({"hazard": ("H1", "remote")})
        assert annotated.metadata_dict() == {"hazard": ("H1", "remote")}
        again = annotated.with_metadata({"reviewed": (True,)})
        assert set(again.metadata_dict()) == {"hazard", "reviewed"}


class TestLooksPropositional:
    def test_accepts_claims(self):
        assert looks_propositional("The system is acceptably safe")
        assert looks_propositional(
            "The thrust reversers are inhibited when the aircraft is "
            "not on the ground"
        )
        assert looks_propositional("Hazard H1 is acceptably managed")

    def test_rejects_the_denney_goal_style(self):
        # §III.E: 'Formal proof that Quat4::quat(NED, Body) holds for
        # Fc.cpp ... is not a proposition as GSN requires'.
        assert not looks_propositional(
            "Formal proof that Quat4::quat(NED, Body) holds for Fc.cpp"
        )

    def test_rejects_noun_phrases(self):
        assert not looks_propositional("Testing of module Y")
        assert not looks_propositional("Argument over all hazards")
        assert not looks_propositional("Evidence from the field")

    def test_rejects_questions_and_empty(self):
        assert not looks_propositional("Is the system safe?")
        assert not looks_propositional("")
        assert not looks_propositional("   ")

    def test_cannot_judge_meaning(self):
        # A shallow check accepts well-formed nonsense — the informal
        # gap the paper's §IV.C describes.
        assert looks_propositional(
            "The colourless green ideas are acceptably safe"
        )


class TestArgumentConstruction:
    def test_duplicate_identifier_rejected(self):
        argument = Argument()
        argument.add_node(Node("G1", NodeType.GOAL, "The system is safe"))
        with pytest.raises(ArgumentError):
            argument.add_node(Node("G1", NodeType.GOAL, "Another claim is made"))

    def test_link_requires_known_nodes(self):
        argument = Argument()
        argument.add_node(Node("G1", NodeType.GOAL, "The system is safe"))
        with pytest.raises(ArgumentError):
            argument.supported_by("G1", "missing")
        with pytest.raises(ArgumentError):
            argument.supported_by("missing", "G1")

    def test_self_link_rejected(self):
        argument = Argument()
        argument.add_node(Node("G1", NodeType.GOAL, "The system is safe"))
        with pytest.raises(ArgumentError):
            argument.supported_by("G1", "G1")

    def test_duplicate_link_rejected(self):
        argument = Argument()
        argument.add_node(Node("G1", NodeType.GOAL, "The system is safe"))
        argument.add_node(Node("G2", NodeType.GOAL, "A part is safe"))
        argument.supported_by("G1", "G2")
        with pytest.raises(ArgumentError):
            argument.supported_by("G1", "G2")

    def test_remove_node_removes_links(self, simple_argument):
        simple_argument.remove_node("S1")
        assert "S1" not in simple_argument
        assert all(
            link.source != "S1" and link.target != "S1"
            for link in simple_argument.links
        )

    def test_replace_node(self, simple_argument):
        node = simple_argument.node("G1")
        simple_argument.replace_node(node.with_text(
            "The system is tolerably safe"
        ))
        assert "tolerably" in simple_argument.node("G1").text


class TestArgumentStructure:
    def test_roots(self, hazard_argument):
        roots = hazard_argument.roots()
        assert [r.identifier for r in roots] == ["G1"]

    def test_supporters_and_context(self, hazard_argument):
        assert [
            n.identifier for n in hazard_argument.supporters("G1")
        ] == ["S1"]
        assert [
            n.identifier for n in hazard_argument.context_of("G1")
        ] == ["C1"]

    def test_walk_visits_reachable(self, hazard_argument):
        visited = [n.identifier for n in hazard_argument.walk("G1")]
        assert visited[0] == "G1"
        assert "Sn3" in visited

    def test_subtree(self, hazard_argument):
        fragment = hazard_argument.subtree("G2")
        assert "G2" in fragment
        assert "Sn1" in fragment
        assert "G1" not in fragment

    def test_paths_to_root(self, hazard_argument):
        paths = hazard_argument.paths_to_root("Sn1")
        assert paths == [["Sn1", "G2", "S1", "G1"]]

    def test_depth(self, hazard_argument):
        assert hazard_argument.depth() == 4

    def test_find_cycle_none(self, hazard_argument):
        assert hazard_argument.find_cycle() is None

    def test_find_cycle_detects(self):
        argument = Argument()
        for name in ("G1", "G2", "G3"):
            argument.add_node(Node(name, NodeType.GOAL, f"Claim {name} is true"))
        argument.supported_by("G1", "G2")
        argument.supported_by("G2", "G3")
        argument.supported_by("G3", "G1")
        cycle = argument.find_cycle()
        assert cycle is not None
        assert len(set(cycle)) >= 3

    def test_statistics(self, hazard_argument):
        stats = hazard_argument.statistics()
        assert stats["goal_count"] == 5
        assert stats["solution_count"] == 4
        assert stats["node_count"] == len(hazard_argument)
        assert stats["depth"] == 4

    def test_copy_is_equal_but_distinct(self, hazard_argument):
        duplicate = hazard_argument.copy()
        assert duplicate == hazard_argument
        duplicate.remove_node("Sn1")
        assert duplicate != hazard_argument

    def test_leaves(self, simple_argument):
        # G2 is supported by a solution, so the only claim-like leaf-
        # check looks at nodes without SupportedBy children.
        leaf_ids = {n.identifier for n in simple_argument.leaves()}
        assert leaf_ids == set()  # every goal/strategy has support

    def test_unsupported_goal_is_leaf(self):
        argument = Argument()
        argument.add_node(Node("G1", NodeType.GOAL, "The system is safe"))
        assert [n.identifier for n in argument.leaves()] == ["G1"]
