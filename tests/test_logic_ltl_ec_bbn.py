"""Tests for repro.logic.ltl, event_calculus, and bbn."""

from __future__ import annotations

import pytest

from repro.logic.bbn import BayesNet, BbnError, Cpt, noisy_or_cpt
from repro.logic.event_calculus import (
    EffectAxiom,
    Event,
    EventCalculus,
    Fluent,
    Narrative,
    TriggerRule,
)
from repro.logic.ltl import (
    Always,
    Eventually,
    LtlSyntaxError,
    Next,
    Prop,
    Until,
    atoms_of_ltl,
    detect_and_avoid_property,
    holds,
    holds_dp,
    parse_ltl,
)


def _trace(*states: str) -> list[frozenset[str]]:
    """Build a trace from comma-separated atom strings ('a,b', '', 'c')."""
    return [
        frozenset(s.split(",")) - {""} for s in states
    ]


class TestLtlParse:
    def test_atom(self):
        assert parse_ltl("p") == Prop("p")

    def test_unary_operators(self):
        assert parse_ltl("G p") == Always(Prop("p"))
        assert parse_ltl("F p") == Eventually(Prop("p"))
        assert parse_ltl("X p") == Next(Prop("p"))

    def test_until(self):
        assert parse_ltl("p U q") == Until(Prop("p"), Prop("q"))

    def test_paper_formula_shape(self):
        formula = detect_and_avoid_property()
        assert isinstance(formula, Always)

    def test_rejects_garbage(self):
        with pytest.raises(LtlSyntaxError):
            parse_ltl("G (p ->")

    def test_atoms_of(self):
        assert atoms_of_ltl(parse_ltl("G (a -> (b U c))")) == {
            "a", "b", "c"
        }


class TestLtlSemantics:
    def test_atom_at_position(self):
        trace = _trace("p", "")
        assert holds(Prop("p"), trace, 0)
        assert not holds(Prop("p"), trace, 1)

    def test_always(self):
        assert holds(parse_ltl("G p"), _trace("p", "p", "p"))
        assert not holds(parse_ltl("G p"), _trace("p", "", "p"))

    def test_eventually(self):
        assert holds(parse_ltl("F p"), _trace("", "", "p"))
        assert not holds(parse_ltl("F p"), _trace("", "", ""))

    def test_strong_next_fails_at_end(self):
        assert not holds(parse_ltl("X p"), _trace("p"))
        assert holds(parse_ltl("X p"), _trace("", "p"))

    def test_until_requires_eventual_right(self):
        assert holds(parse_ltl("p U q"), _trace("p", "p", "q"))
        assert not holds(parse_ltl("p U q"), _trace("p", "p", "p"))
        assert not holds(parse_ltl("p U q"), _trace("p", "", "q"))

    def test_until_immediate(self):
        assert holds(parse_ltl("p U q"), _trace("q"))

    def test_release(self):
        # q must hold up to and including the step where p releases it.
        assert holds(parse_ltl("p R q"), _trace("q", "q,p", ""))
        assert holds(parse_ltl("p R q"), _trace("q", "q", "q"))
        assert not holds(parse_ltl("p R q"), _trace("q", "", ""))

    def test_out_of_range_position(self):
        with pytest.raises(ValueError):
            holds(Prop("p"), _trace("p"), 5)

    def test_detect_and_avoid_nominal(self):
        trace = _trace(
            "no_collision",
            "intrusion,no_collision",
            "intrusion,no_collision",
            "separated,no_collision",
        )
        assert holds(detect_and_avoid_property(), trace)

    def test_detect_and_avoid_collision(self):
        trace = _trace(
            "no_collision",
            "intrusion",  # collision at intrusion onset
            "separated,no_collision",
        )
        assert not holds(detect_and_avoid_property(), trace)

    def test_dp_agrees_with_recursive(self):
        formulas = [
            "G p", "F p", "X p", "p U q", "p R q",
            "G (p -> F q)", "G (p -> (q U r))", "F (p & X q)",
            "!(p U q)", "G p | F q",
        ]
        traces = [
            _trace("p", "q", "r"),
            _trace("p,q", "p", "p,r"),
            _trace("", "", ""),
            _trace("q"),
            _trace("p", "p,q", "q,r", "r", ""),
        ]
        for text in formulas:
            formula = parse_ltl(text)
            for trace in traces:
                assert holds(formula, trace) == holds_dp(formula, trace), (
                    text, trace
                )


class TestEventCalculus:
    def test_initiation_and_inertia(self):
        light_on = Fluent("LightOn")
        calculus = EventCalculus(axioms=[
            EffectAxiom(Event("SwitchOn"), light_on, initiates=True),
            EffectAxiom(Event("SwitchOff"), light_on, initiates=False),
        ])
        narrative = Narrative()
        narrative.happens(Event("SwitchOn"), 1)
        narrative.happens(Event("SwitchOff"), 3)
        timeline = calculus.run(narrative, horizon=6)
        assert not timeline.holds_at(light_on, 0)
        assert not timeline.holds_at(light_on, 1)  # effect after event
        assert timeline.holds_at(light_on, 2)
        assert timeline.holds_at(light_on, 3)
        assert not timeline.holds_at(light_on, 4)

    def test_initially_true_fluents(self):
        power = Fluent("Power")
        calculus = EventCalculus(axioms=[
            EffectAxiom(Event("Cut"), power, initiates=False),
        ])
        narrative = Narrative(initially={power})
        narrative.happens(Event("Cut"), 2)
        timeline = calculus.run(narrative, horizon=5)
        assert timeline.holds_at(power, 0)
        assert not timeline.holds_at(power, 3)

    def test_conditional_effect(self):
        armed = Fluent("Armed")
        fired = Fluent("Fired")
        calculus = EventCalculus(axioms=[
            EffectAxiom(Event("Arm"), armed, initiates=True),
            EffectAxiom(Event("Trigger"), fired, initiates=True,
                        condition=(armed,)),
        ])
        narrative = Narrative()
        narrative.happens(Event("Trigger"), 1)  # not armed: no effect
        narrative.happens(Event("Arm"), 2)
        narrative.happens(Event("Trigger"), 4)
        timeline = calculus.run(narrative, horizon=7)
        assert not timeline.holds_at(fired, 2)
        assert timeline.holds_at(fired, 5)

    def test_trigger_rule_derives_events(self):
        friends = Fluent("Friends")
        calculus = EventCalculus(triggers=[
            TriggerRule(Event("Tap"), (friends,), Event("Query"),
                        delay=1),
        ])
        narrative = Narrative(initially={friends})
        narrative.happens(Event("Tap"), 2)
        timeline = calculus.run(narrative)
        assert timeline.happens(Event("Query"), 3)
        assert timeline.first_occurrence(Event("Query")) == 3

    def test_trigger_guard_blocks(self):
        friends = Fluent("Friends")
        calculus = EventCalculus(triggers=[
            TriggerRule(Event("Tap"), (friends,), Event("Query")),
        ])
        narrative = Narrative()  # not friends
        narrative.happens(Event("Tap"), 2)
        timeline = calculus.run(narrative)
        assert not timeline.ever_happens(Event("Query"))

    def test_negative_time_rejected(self):
        narrative = Narrative()
        with pytest.raises(ValueError):
            narrative.happens(Event("E"), -1)

    def test_all_occurrences_ordered(self):
        calculus = EventCalculus()
        narrative = Narrative()
        narrative.happens(Event("B"), 3)
        narrative.happens(Event("A"), 1)
        timeline = calculus.run(narrative)
        times = [o.time for o in timeline.all_occurrences()]
        assert times == sorted(times)


class TestBbn:
    def test_prior_query(self):
        net = BayesNet()
        net.add_prior("rain", 0.3)
        assert net.query("rain") == pytest.approx(0.3)

    def test_chain_inference(self):
        net = BayesNet()
        net.add_prior("a", 0.5)
        net.add(Cpt("b", ("a",), {(True,): 0.9, (False,): 0.1}))
        assert net.query("b") == pytest.approx(0.5)
        assert net.query("b", {"a": True}) == pytest.approx(0.9)

    def test_diagnostic_reasoning(self):
        net = BayesNet()
        net.add_prior("disease", 0.01)
        net.add(Cpt(
            "test_positive", ("disease",),
            {(True,): 0.95, (False,): 0.05},
        ))
        posterior = net.query("test_positive", {})
        assert posterior == pytest.approx(0.01 * 0.95 + 0.99 * 0.05)
        updated = net.query("disease", {"test_positive": True})
        assert 0.15 < updated < 0.17  # Bayes: ~0.161

    def test_noisy_or(self):
        cpt = noisy_or_cpt("c", ("a", "b"), (0.8, 0.6), leak=0.0)
        assert cpt.table[(False, False)] == pytest.approx(0.0)
        assert cpt.table[(True, False)] == pytest.approx(0.8)
        assert cpt.table[(False, True)] == pytest.approx(0.6)
        assert cpt.table[(True, True)] == pytest.approx(1 - 0.2 * 0.4)

    def test_variable_elimination_matches_bruteforce(self):
        net = BayesNet()
        net.add_prior("a", 0.4)
        net.add_prior("b", 0.7)
        net.add(noisy_or_cpt("c", ("a", "b"), (0.9, 0.5), leak=0.05))
        net.add(Cpt("d", ("c",), {(True,): 0.8, (False,): 0.2}))
        for variable in ("a", "b", "c", "d"):
            for evidence in ({}, {"d": True}, {"a": True, "d": False}):
                if variable in evidence:
                    continue
                assert net.query(variable, evidence) == pytest.approx(
                    net.query_bruteforce(variable, evidence)
                ), (variable, evidence)

    def test_invalid_cpt_rejected(self):
        with pytest.raises(BbnError):
            Cpt("x", ("p",), {(True,): 0.5})  # missing a row
        with pytest.raises(BbnError):
            Cpt("x", (), {(): 1.5})  # probability out of range

    def test_unknown_parent_rejected(self):
        net = BayesNet()
        with pytest.raises(BbnError):
            net.add(Cpt("x", ("ghost",), {(True,): 0.5, (False,): 0.5}))

    def test_zero_probability_evidence(self):
        net = BayesNet()
        net.add_prior("a", 1.0)
        with pytest.raises(BbnError):
            net.query("a", {"a": False})

    def test_joint_sums_to_one(self):
        import itertools

        net = BayesNet()
        net.add_prior("a", 0.3)
        net.add(Cpt("b", ("a",), {(True,): 0.6, (False,): 0.2}))
        total = sum(
            net.joint({"a": a, "b": b})
            for a, b in itertools.product((False, True), repeat=2)
        )
        assert total == pytest.approx(1.0)
