"""The writer lease: enforcement of the store's single-writer contract.

Covers the protocol from :mod:`repro.store.lease` directly — acquire /
release, contention timeout, stale-lease takeover (single winner),
per-thread reentrancy, renewal, payload recovery for torn lease files —
and its integration: every mutating store operation drops a lease while
it runs and cleans it up afterwards, and two *threads* contending over
one directory serialize their commits.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.core.argument import Argument, LinkKind
from repro.core.nodes import Node, NodeType
from repro.store import (
    StoreConflictError,
    StoredArgument,
    acquire_lease,
    lease_is_stale,
    read_lease,
    writer_lease,
)
from repro.store.format import LEASE_NAME
from repro.store.lease import WriterLease, _break_stale

pytestmark = pytest.mark.service


def small_argument(name: str = "lease-case") -> Argument:
    argument = Argument(name)
    argument.add_node(Node("G0", NodeType.GOAL, "The claim holds"))
    argument.add_node(Node("Sn0", NodeType.SOLUTION, "Evidence record"))
    argument.add_link("G0", "Sn0", LinkKind.SUPPORTED_BY)
    return argument


class TestAcquireRelease:
    def test_acquire_writes_payload_and_release_removes_it(self, tmp_path):
        with writer_lease(tmp_path) as lease:
            payload = read_lease(tmp_path)
            assert payload is not None
            assert payload["holder"] == lease.holder
            assert payload["expires"] > time.time()
            assert not lease_is_stale(payload)
        assert read_lease(tmp_path) is None
        assert not (tmp_path / LEASE_NAME).exists()

    def test_contention_times_out_naming_the_holder(self, tmp_path):
        foreign = WriterLease(tmp_path, holder="someone-else", ttl=60.0)
        (tmp_path / LEASE_NAME).write_text(json.dumps(foreign._payload()))
        # A *different thread* of this process must contend like a
        # foreign process (the registry is per-thread, and the file
        # belongs to nobody in our registry anyway).
        with pytest.raises(StoreConflictError, match="someone-else"):
            acquire_lease(tmp_path, timeout=0.2)

    def test_release_is_not_fooled_by_a_takeover(self, tmp_path):
        lease = acquire_lease(tmp_path, timeout=0.2)
        # Simulate a takeover while we stalled: someone else's lease
        # file now sits at our path.
        (tmp_path / LEASE_NAME).write_text(
            json.dumps({"holder": "usurper", "expires": time.time() + 60})
        )
        lease.release()
        payload = read_lease(tmp_path)
        assert payload is not None and payload["holder"] == "usurper", (
            "release must not unlink a lease it no longer holds"
        )
        (tmp_path / LEASE_NAME).unlink()


class TestStaleTakeover:
    def _plant_stale(self, tmp_path, *, holder: str = "crashed") -> None:
        (tmp_path / LEASE_NAME).write_text(json.dumps({
            "holder": holder, "expires": time.time() - 5.0,
        }))

    def test_expired_lease_is_taken_over_immediately(self, tmp_path):
        self._plant_stale(tmp_path)
        start = time.monotonic()
        with writer_lease(tmp_path, timeout=5.0) as lease:
            assert read_lease(tmp_path)["holder"] == lease.holder
        assert time.monotonic() - start < 2.0, "takeover must not wait TTL"

    def test_break_stale_has_one_winner(self, tmp_path):
        self._plant_stale(tmp_path)
        results = [_break_stale(tmp_path) for _ in range(3)]
        assert results.count(True) == 1, (
            "rename arbitration must elect exactly one breaker"
        )

    def test_unreadable_lease_is_live_until_mtime_grace(self, tmp_path):
        (tmp_path / LEASE_NAME).write_bytes(b"\x00garbage{{{")
        payload = read_lease(tmp_path)
        assert payload is not None and "mtime" in payload
        assert not lease_is_stale(payload), (
            "a torn lease gets the default TTL from its mtime"
        )
        assert lease_is_stale(payload, now=time.time() + 3600)

    def test_renew_extends_and_detects_takeover(self, tmp_path):
        lease = acquire_lease(tmp_path, timeout=1.0)
        first_expiry = lease.expires
        time.sleep(0.01)
        lease.renew()
        assert lease.expires > first_expiry
        (tmp_path / LEASE_NAME).write_text(
            json.dumps({"holder": "usurper", "expires": time.time() + 60})
        )
        with pytest.raises(StoreConflictError, match="taken over"):
            lease.renew()
        (tmp_path / LEASE_NAME).unlink()


class TestReentrancy:
    def test_same_thread_reenters_one_file(self, tmp_path):
        with writer_lease(tmp_path) as outer:
            with writer_lease(tmp_path) as inner:
                assert inner is outer
                assert read_lease(tmp_path)["holder"] == outer.holder
            # Inner exit must not drop the file out from under outer.
            assert read_lease(tmp_path)["holder"] == outer.holder
        assert read_lease(tmp_path) is None

    def test_other_thread_contends(self, tmp_path):
        outcome: "dict[str, object]" = {}

        def contender() -> None:
            try:
                acquire_lease(tmp_path, timeout=0.2)
                outcome["acquired"] = True
            except StoreConflictError as error:
                outcome["error"] = error

        with writer_lease(tmp_path):
            thread = threading.Thread(target=contender)
            thread.start()
            thread.join(10)
        assert "acquired" not in outcome, (
            "a second thread must not share the first thread's lease"
        )
        assert isinstance(outcome["error"], StoreConflictError)


class TestStoreIntegration:
    def test_save_runs_under_lease_and_cleans_up(self, tmp_path, monkeypatch):
        """A save must hold the lease at commit time and release after."""
        from repro.store import writer as writer_module

        store = tmp_path / "case.store"
        seen: "list[object]" = []
        original_commit = writer_module._commit

        def spying_commit(directory, manifest, **kwargs):
            seen.append(read_lease(directory))
            return original_commit(directory, manifest, **kwargs)

        monkeypatch.setattr(writer_module, "_commit", spying_commit)
        small_argument().save(store)
        assert seen and seen[0] is not None, (
            "the manifest swap must happen while the lease is held"
        )
        assert read_lease(store) is None, "lease must be released after save"

    def test_mutating_operations_leave_no_lease_behind(self, tmp_path):
        store = tmp_path / "case.store"
        argument = small_argument()
        argument.save(store)
        argument.add_node(Node("X1", NodeType.GOAL, "A late claim holds"))
        argument.save(store, journal=True)
        handle = StoredArgument(store)
        handle.coalesce()
        handle.compact()
        handle.gc()
        assert not (store / LEASE_NAME).exists()
        assert StoredArgument(store).load() == argument

    def test_two_threads_appending_serialize_without_loss(self, tmp_path):
        """N threads × M appends through one directory: all land."""
        store = tmp_path / "case.store"
        base = small_argument()
        base.save(store)
        errors: "list[BaseException]" = []

        def editor(worker: int) -> None:
            try:
                for round_index in range(4):
                    while True:
                        argument = Argument.load(store)
                        argument.add_node(Node(
                            f"W{worker}R{round_index}", NodeType.GOAL,
                            f"Claim {worker}/{round_index} holds",
                        ))
                        try:
                            argument.save(store, journal=True)
                            break
                        except StoreConflictError:
                            continue  # another thread landed first: rebase
            except BaseException as error:  # pragma: no cover
                errors.append(error)

        threads = [
            threading.Thread(target=editor, args=(worker,))
            for worker in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(60)
        assert not errors, errors
        final = StoredArgument(store).load()
        expected = {
            f"W{worker}R{round_index}"
            for worker in range(3) for round_index in range(4)
        }
        assert expected <= {node.identifier for node in final.nodes}, (
            "a concurrent append was lost"
        )

    def test_gc_refuses_while_another_writer_holds_the_lease(self, tmp_path):
        store = tmp_path / "case.store"
        small_argument().save(store)
        foreign = WriterLease(store, holder="busy-writer", ttl=60.0)
        (store / LEASE_NAME).write_text(json.dumps(foreign._payload()))
        handle = StoredArgument(store)
        with pytest.raises(StoreConflictError, match="busy-writer"):
            from repro.store.journal import gc

            gc(handle, timeout=0.2)
        (store / LEASE_NAME).unlink()
