"""Tier-1 smoke check for ``benchmarks/bench_graph_scale.py``.

Runs the graph-scale benchmark at small sizes on every test run so perf
regressions in the graph core fail loudly in CI, not months later on a
10k-node argument.  The full-size run (``python
benchmarks/bench_graph_scale.py``) writes the committed
``BENCH_graph_scale.json``; this smoke keeps that script healthy and
asserts the engine still beats the seed implementation by a wide margin
even at smoke sizes.
"""

from __future__ import annotations

import json

SMOKE_NODES = 800


def test_bench_graph_scale_smoke(graph_scale_bench, tmp_path):
    out = tmp_path / "BENCH_graph_scale.json"
    report = graph_scale_bench.run_bench(
        n=SMOKE_NODES, max_paths=100, out=out,
        wellformed_nodes=SMOKE_NODES,
    )

    # The report round-trips as JSON with the documented shape.
    on_disk = json.loads(out.read_text())
    assert on_disk["benchmark"] == "graph_scale"
    assert set(on_disk["shapes"]) == {
        "deep_chain", "wide_fan", "dense_dag"
    }

    # The persistence workload rides along (details are pinned by
    # tests/test_store_smoke.py).
    store = on_disk["store_workload"]
    assert store["partial_shards_read"] < store["full_shards_read"]

    # So does the well-formedness workload (details are pinned by
    # tests/test_analysis_engine.py) — the workload itself asserts all
    # four modes agree and that streaming/parallel never hydrate.
    wellformed = on_disk["wellformed_workload"]
    for key in ("full_hydrate_s", "streaming_s", "parallel_s",
                "incremental_s", "full_recheck_s"):
        assert wellformed[key] >= 0.0, key
    assert wellformed["edit_rounds"] >= 10

    # And the journal workload: appends must beat rewrites even at
    # smoke sizes, compaction must be byte-stable, and the store-backed
    # incremental recheck must never have hydrated.  (The workload
    # itself asserts replay equality and checker agreement.)
    journal = on_disk["journal_workload"]
    assert journal["journal_segments"] == journal["edit_rounds"]
    assert journal["compaction_byte_stable"] is True
    assert journal["from_store_hydrated"] is False
    assert journal["speedup_journal_vs_rewrite"] >= 1.5

    for shape, data in report["shapes"].items():
        assert data["nodes"] >= SMOKE_NODES * 0.9, shape
        for key in ("construct_s", "statistics_s", "find_cycle_s",
                    "paths_to_root_s", "count_paths_s", "walk_s",
                    "query_attr_s", "traceability_view_s"):
            assert data["new"][key] >= 0.0, (shape, key)
        assert data["walk_visited"] == data["nodes"]

    # Seed comparison ran on the chain and fan, and even at smoke sizes
    # the indexed engine must be comfortably faster than the seed's
    # O(L^2) construction + scanning statistics.  The full-size run
    # shows >=10x as the acceptance criteria require; >=2x here keeps
    # the assertion robust to CI noise, and — as with the mutation
    # workload below — one re-measurement absorbs a GC pause or CPU
    # contention squeeze: a genuine regression fails twice in a row.
    if report["min_speedup_construct_statistics"] < 2.0:
        report = graph_scale_bench.run_bench(
            n=SMOKE_NODES, max_paths=100, out=out,
            wellformed_nodes=SMOKE_NODES,
        )
    assert report["min_speedup_construct_statistics"] >= 2.0

    # The deep chain crossed the seed's ~1,000-frame recursion ceiling
    # in spirit; make sure depth really equals the chain length so the
    # smoke would catch a silently-truncated traversal.
    assert report["shapes"]["deep_chain"]["depth"] == SMOKE_NODES


def test_mutation_workload_smoke(graph_scale_bench):
    """The interleaved build/query/edit workload at small size.

    ``bench_mutation_workload`` itself asserts that the batched and
    per-mutation modes produce ``__eq__``-identical arguments and
    identical query matches; this smoke additionally pins the report
    shape and that batch + incremental index maintenance beats
    per-mutation invalidation even at small sizes.  The full-size run
    records >=5x in ``BENCH_graph_scale.json``; >=1.5x here (measured
    ~3.8x at this size) with one re-measurement on a miss keeps the
    assertion robust to CI noise.
    """
    result = graph_scale_bench.bench_mutation_workload(SMOKE_NODES)
    assert result["nodes"] >= SMOKE_NODES * 0.9
    assert result["rounds"] >= 10
    assert result["query_matches"] > 0
    assert result["batched_incremental_s"] > 0.0
    assert result["per_mutation_rebuild_s"] > 0.0
    if result["speedup_batched_incremental"] < 1.5:
        # A GC pause or CPU contention can squeeze one wall-clock run;
        # a genuine regression fails twice in a row.
        result = graph_scale_bench.bench_mutation_workload(SMOKE_NODES)
    assert result["speedup_batched_incremental"] >= 1.5
