"""Shared fixtures for the repro test suite.

Also home of the **round-trip equivalence oracle** shared by the store
conformance harness (``test_store_roundtrip.py``) and the legacy
notation round-trip properties (``test_notation_roundtrip.py``): one
canonical form for nodes/arguments, one randomized argument generator
(driving the seeded node generator from ``test_invariants.py``), so
every persistence format is judged against the same notion of
"the same argument".
"""

from __future__ import annotations

import importlib.util
import random
from pathlib import Path
from typing import Any

import pytest

from repro.core import ArgumentBuilder
from repro.core.argument import Argument, LinkKind
from repro.core.case import AssuranceCase, SafetyCriterion
from repro.core.evidence import EvidenceItem, EvidenceKind

_BENCHMARK_DIR = Path(__file__).resolve().parent.parent / "benchmarks"


# -- the shared round-trip equivalence oracle -------------------------------


def canonical_node(node, *, with_metadata: bool = True) -> tuple:
    """A node's format-independent identity.

    Metadata compares via ``metadata_dict()`` (duplicate attribute names
    collapse to the last entry) sorted by name — exactly the semantics
    every query predicate reads and every JSON-object-based format can
    represent.  ``with_metadata=False`` is for formats that do not carry
    metadata at all (textual GSN, CAE).
    """
    base: tuple[Any, ...] = (
        node.identifier,
        node.node_type,
        node.text,
        node.undeveloped,
        node.module,
    )
    if with_metadata:
        return base + (tuple(sorted(node.metadata_dict().items())),)
    return base


def canonical_argument(argument, *, with_metadata: bool = True) -> tuple:
    """An argument's format-independent identity: node set + link set."""
    return (
        frozenset(
            canonical_node(node, with_metadata=with_metadata)
            for node in argument.nodes
        ),
        frozenset(argument.links),
    )


def random_argument(
    seed: int,
    size: int,
    *,
    wellformed_kinds: bool = False,
    name: str | None = None,
) -> Argument:
    """A seeded random argument of ``size`` nodes, acyclic by construction.

    Node payloads (types, texts, metadata — including the deliberately
    awkward duplicate-attribute metadata) come from the randomized
    generator in ``test_invariants.py``; links run only from older to
    newer nodes.  With ``wellformed_kinds=True`` the link kind follows
    the target's nature (contextual targets get InContextOf, the rest
    SupportedBy) — the discipline the CAE conversion round-trips exactly;
    otherwise kinds are random, exercising ill-formed shapes too.
    """
    from test_invariants import _random_node

    rng = random.Random(seed)
    argument = Argument(name or f"random-{seed}-{size}")
    nodes = [_random_node(rng, f"n{index}") for index in range(size)]
    argument.add_nodes(nodes)
    specs: list[tuple[str, str, LinkKind]] = []
    seen: set[tuple[str, str, LinkKind]] = set()
    for index in range(1, size):
        target = nodes[index]
        for _ in range(rng.choice((1, 1, 2))):
            source = nodes[rng.randrange(index)]
            if wellformed_kinds:
                kind = (
                    LinkKind.IN_CONTEXT_OF
                    if target.node_type.is_contextual
                    else LinkKind.SUPPORTED_BY
                )
            else:
                kind = rng.choice(tuple(LinkKind))
            spec = (source.identifier, target.identifier, kind)
            if spec not in seen:
                seen.add(spec)
                specs.append(spec)
    argument.add_links(specs)
    return argument


def store_files(directory) -> dict[str, bytes]:
    """Every file in a store directory, by name — the byte-stability
    oracle shared by the round-trip, journal, and invariant suites."""
    return {
        path.name: path.read_bytes()
        for path in sorted(Path(directory).iterdir())
    }


def load_benchmark_module(name: str):
    """Import a benchmark script by file path (benchmarks/ is no package)."""
    spec = importlib.util.spec_from_file_location(
        name, _BENCHMARK_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(autouse=True)
def _fast_scratch_stores():
    """Run the suite with commit fsyncs off (scratch stores, tmpfs CI).

    The durability discipline itself is exercised explicitly by
    ``test_store_concurrency.py``, which flips the switch back on and
    asserts the fsync ordering; everything else just wants fast commits.
    ``REPRO_STORE_FSYNC=1`` in the environment forces the full-durability
    run suite-wide.
    """
    import os

    from repro.store import set_durability

    if os.environ.get("REPRO_STORE_FSYNC") == "1":
        yield
        return
    previous = set_durability(False)
    try:
        yield
    finally:
        set_durability(previous)


@pytest.fixture(scope="session")
def graph_scale_bench():
    """The graph-scale benchmark module (seed reference + generators)."""
    return load_benchmark_module("bench_graph_scale")


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG for seeded tests."""
    return random.Random(0xC0FFEE)


@pytest.fixture
def simple_argument() -> Argument:
    """A minimal well-formed argument: goal -> strategy -> goal -> solution."""
    builder = ArgumentBuilder("simple")
    top = builder.goal("The system is acceptably safe")
    strategy = builder.strategy(
        "Argument over identified hazards", under=top
    )
    hazard = builder.goal("Hazard H1 is acceptably managed", under=strategy)
    builder.solution("Fault tree analysis FTA-1", under=hazard)
    return builder.build()


@pytest.fixture
def hazard_argument() -> Argument:
    """A broader argument with context, assumptions, and several hazards."""
    builder = ArgumentBuilder("hazards")
    top = builder.goal("The braking system is acceptably safe")
    builder.context("Operating context: urban light rail", under=top)
    strategy = builder.strategy(
        "Argument over each identified hazard", under=top
    )
    builder.justification(
        "Hazard identification performed to EN 50126", under=strategy
    )
    for index in range(1, 5):
        goal = builder.goal(
            f"Hazard H{index} is acceptably managed", under=strategy
        )
        builder.solution(f"Mitigation record MR-{index}", under=goal)
    builder.assumption(
        "Track adhesion remains within the design envelope", under=strategy
    )
    return builder.build()


@pytest.fixture
def sample_case(hazard_argument: Argument) -> AssuranceCase:
    """A case over the hazard argument with cited evidence."""
    case = AssuranceCase(
        "brake-case",
        hazard_argument,
        SafetyCriterion(
            "Hazardous failure no more than once per million hours",
            "hazardous_failure_rate",
            1e-6,
        ),
    )
    for index in range(1, 5):
        case.add_evidence(
            EvidenceItem(
                identifier=f"ev{index}",
                kind=EvidenceKind.FAULT_TREE_ANALYSIS,
                description=f"fault tree for hazard H{index}",
                coverage=0.9,
            ),
            cited_by=f"Sn{index}",
        )
    return case
