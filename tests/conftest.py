"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import importlib.util
import random
from pathlib import Path

import pytest

from repro.core import ArgumentBuilder
from repro.core.argument import Argument
from repro.core.case import AssuranceCase, SafetyCriterion
from repro.core.evidence import EvidenceItem, EvidenceKind

_BENCHMARK_DIR = Path(__file__).resolve().parent.parent / "benchmarks"


def load_benchmark_module(name: str):
    """Import a benchmark script by file path (benchmarks/ is no package)."""
    spec = importlib.util.spec_from_file_location(
        name, _BENCHMARK_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="session")
def graph_scale_bench():
    """The graph-scale benchmark module (seed reference + generators)."""
    return load_benchmark_module("bench_graph_scale")


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG for seeded tests."""
    return random.Random(0xC0FFEE)


@pytest.fixture
def simple_argument() -> Argument:
    """A minimal well-formed argument: goal -> strategy -> goal -> solution."""
    builder = ArgumentBuilder("simple")
    top = builder.goal("The system is acceptably safe")
    strategy = builder.strategy(
        "Argument over identified hazards", under=top
    )
    hazard = builder.goal("Hazard H1 is acceptably managed", under=strategy)
    builder.solution("Fault tree analysis FTA-1", under=hazard)
    return builder.build()


@pytest.fixture
def hazard_argument() -> Argument:
    """A broader argument with context, assumptions, and several hazards."""
    builder = ArgumentBuilder("hazards")
    top = builder.goal("The braking system is acceptably safe")
    builder.context("Operating context: urban light rail", under=top)
    strategy = builder.strategy(
        "Argument over each identified hazard", under=top
    )
    builder.justification(
        "Hazard identification performed to EN 50126", under=strategy
    )
    for index in range(1, 5):
        goal = builder.goal(
            f"Hazard H{index} is acceptably managed", under=strategy
        )
        builder.solution(f"Mitigation record MR-{index}", under=goal)
    builder.assumption(
        "Track adhesion remains within the design envelope", under=strategy
    )
    return builder.build()


@pytest.fixture
def sample_case(hazard_argument: Argument) -> AssuranceCase:
    """A case over the hazard argument with cited evidence."""
    case = AssuranceCase(
        "brake-case",
        hazard_argument,
        SafetyCriterion(
            "Hazardous failure no more than once per million hours",
            "hazardous_failure_rate",
            1e-6,
        ),
    )
    for index in range(1, 5):
        case.add_evidence(
            EvidenceItem(
                identifier=f"ev{index}",
                kind=EvidenceKind.FAULT_TREE_ANALYSIS,
                description=f"fault tree for hazard H{index}",
                coverage=0.9,
            ),
            cited_by=f"Sn{index}",
        )
    return case
