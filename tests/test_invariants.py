"""Randomized mutation-sequence invariant harness for the graph core.

Tool-generated assurance cases are built by thousands of programmatic
mutations, so the batch layer and the incremental query index must be
correct under *arbitrary interleavings* of add/remove/replace/batch —
not just the orderly sequences the unit tests exercise.  This harness
drives :class:`~repro.core.argument.Argument` through hundreds of seeded
random mutation steps and after **every** step asserts:

(a) the incrementally-maintained :class:`~repro.core.query.ArgumentIndex`
    is map-for-map identical to an index rebuilt from scratch;
(b) batch and one-at-a-time mutation produce ``__eq__``-identical
    arguments (a shadow argument replays every operation unbatched);
(c) ``roots``/``leaves``/``depth``/``statistics`` agree with a naive
    oracle recomputed from the raw node and link lists;
(d) periodically, planner-backed ``select`` results agree with a naive
    full-scan of each query's predicate (including exact plans, which
    skip the predicate entirely);
(e) the **three-way well-formedness oracle**: a long-lived
    :class:`~repro.core.analysis.IncrementalChecker` (consuming the
    mutation delta log, including the delta-aware acyclic hook) reports
    exactly the violations of a fresh full check after *every* step, and
    periodically both equal a *streaming* check over the argument saved
    to a sharded store (which must not hydrate it);
(f) the **journal persistence oracle**: a store maintained across the
    whole run purely by ``save(journal=True)`` appends — every Nth step
    the journal-replayed store loads canonically equal to the live
    argument, a long-lived store-backed checker
    (:meth:`~repro.core.analysis.IncrementalChecker.from_store`,
    consuming the *persisted* journal deltas, never hydrating) agrees
    with the fresh check, and periodically ``compact()`` folds the
    journal away byte-identically to a clean save of the same argument;
(g) the **search oracle**: a second store saved once with
    ``search_index=True`` and then maintained by journal appends —
    every Nth step the journal-patched sidecar postings equal a
    freshly-rebuilt :class:`~repro.store.search.StoreSearchIndex`,
    planner-backed ``text_contains`` selects over the stored argument
    (exact folded plans and case-sensitive candidate plans alike)
    agree with a naive predicate scan of the live argument, and ranked
    :func:`repro.core.search.search` returns exactly the nodes a naive
    re-implementation of its term semantics (token hit, else substring
    fallback) predicts, in descending score order;
(h) the **obligation oracle**: a share of random nodes carry formal
    evidence obligations (passing, failing, and malformed specs from a
    deterministic pool) in their metadata, and a second long-lived
    incremental checker over ``GSN_OBLIGATION_RULES`` — the standard
    rules plus the obligation-discharge rule — must agree with a fresh
    full check every few steps, so cached proof results stay coherent
    under arbitrary edit interleavings.

Graphs stay acyclic by construction (links only run from older to newer
nodes), matching the only shape well-formedness accepts; cyclic-graph
behaviour is pinned by ``tests/test_graph_engine_scale.py``.
"""

from __future__ import annotations

import random

import pytest

from repro.claims import GSN_OBLIGATION_RULES, obligation_counters
from repro.claims.obligations import OBLIGATION_KEY
from repro.core.argument import Argument, LinkKind
from repro.core.nodes import Node, NodeType
from repro.core.wellformed import GSN_STANDARD_RULES
from repro.core.query import (
    ArgumentIndex,
    argument_index,
    attribute_param,
    has_attribute,
    node_type_is,
    select,
    text_contains,
)

STEPS = 300

_TYPES = (
    NodeType.GOAL,
    NodeType.STRATEGY,
    NodeType.SOLUTION,
    NodeType.CONTEXT,
    NodeType.AWAY_GOAL,
)

_TEXTS = (
    "The braking claim holds",
    "Hazard is acceptably managed",
    "Fault tree analysis record",
    "Operating context item",
    "Argument over identified hazards",
)


# Deterministic obligation pool: discharging, failing, and malformed
# specs, so the obligation oracle exercises every discharge outcome.
# The pool is fixed — each spec proves once per process, then caches.
_OBLIGATIONS = (
    "sat: brake & (brake -> stop)",               # discharges
    "valid: stop -> stop",                        # discharges
    "entails: brake -> stop ; brake |- stop",     # discharges
    "valid: brake -> stop",                       # fails: not a tautology
    "ltl: G brake @ brake ; .",                   # fails on the trace
    "sat: brake &",                               # malformed body
)


def _random_metadata(rng: random.Random):
    roll = rng.random()
    if roll < 0.5:
        base = ()
    elif roll < 0.75:
        likelihood = rng.choice(("remote", "frequent"))
        severity = rng.choice(("catastrophic", "minor"))
        base = (("hazard", (f"H{rng.randrange(6)}", likelihood, severity)),)
    elif roll < 0.9:
        base = (("owner", (rng.choice(("alice", "bob")),)),)
    else:
        # Duplicated attribute name: metadata_dict() keeps the last
        # entry, and exact query plans must agree with that (regression).
        base = (
            ("hazard", ("H0", "remote", "minor")),
            ("hazard", (f"H{rng.randrange(6)}", "remote", "catastrophic")),
        )
    if rng.random() < 0.1:
        base = base + ((OBLIGATION_KEY, (rng.choice(_OBLIGATIONS),)),)
    return base


def _random_node(rng: random.Random, identifier: str) -> Node:
    node_type = rng.choice(_TYPES)
    return Node(
        identifier,
        node_type,
        rng.choice(_TEXTS) + f" [{identifier}]",
        metadata=_random_metadata(rng),
        module="m1" if node_type is NodeType.AWAY_GOAL else None,
    )


# -- naive oracles ----------------------------------------------------------


def oracle_roots(argument: Argument) -> list[str]:
    supported = {
        link.target
        for link in argument.links
        if link.kind is LinkKind.SUPPORTED_BY
    }
    return [
        node.identifier
        for node in argument.nodes
        if node.node_type.is_claim_like
        and node.identifier not in supported
    ]


def oracle_leaves(argument: Argument) -> list[str]:
    supporting = {
        link.source
        for link in argument.links
        if link.kind is LinkKind.SUPPORTED_BY
    }
    return [
        node.identifier
        for node in argument.nodes
        if node.node_type in (
            NodeType.GOAL, NodeType.STRATEGY, NodeType.AWAY_GOAL
        )
        and node.identifier not in supporting
    ]


def oracle_depth(argument: Argument) -> int:
    """Longest SupportedBy path from any oracle root (graphs are acyclic)."""
    children: dict[str, list[str]] = {}
    for link in argument.links:
        if link.kind is LinkKind.SUPPORTED_BY:
            children.setdefault(link.source, []).append(link.target)
    memo: dict[str, int] = {}

    def longest(identifier: str) -> int:
        if identifier not in memo:
            memo[identifier] = 1 + max(
                (longest(child)
                 for child in children.get(identifier, ())),
                default=0,
            )
        return memo[identifier]

    return max((longest(root) for root in oracle_roots(argument)), default=0)


def oracle_statistics(argument: Argument) -> dict[str, int]:
    stats: dict[str, int] = {
        f"{node_type.value}_count": sum(
            1 for node in argument.nodes if node.node_type is node_type
        )
        for node_type in NodeType
    }
    stats["node_count"] = len(argument.nodes)
    stats["link_count"] = len(argument.links)
    stats["supported_by_count"] = sum(
        1 for link in argument.links
        if link.kind is LinkKind.SUPPORTED_BY
    )
    stats["in_context_of_count"] = sum(
        1 for link in argument.links
        if link.kind is LinkKind.IN_CONTEXT_OF
    )
    stats["depth"] = oracle_depth(argument)
    return stats


def canonical_index(index: ArgumentIndex) -> tuple:
    """An order-normalised snapshot for comparing index instances.

    Incremental ``order`` values are monotonic ranks with gaps while a
    fresh build numbers 0..V-1, so only the induced ordering may be
    compared.  Empty postings are pruned incrementally and never created
    by a fresh build, so plain equality works for the posting maps.
    """
    ordering = sorted(index.order, key=index.order.__getitem__)
    return (
        ordering,
        index.by_attribute,
        index.by_attribute_value,
        index.by_param,
        index.by_type,
        index.lowered_text,
    )


# -- the harness ------------------------------------------------------------


class Harness:
    """Applies identical random mutations batched and one-at-a-time."""

    def __init__(self, seed: int, store_dir=None) -> None:
        self.rng = random.Random(seed)
        self.argument = Argument("invariant-main")
        self.shadow = Argument("invariant-shadow")
        self.births: dict[str, int] = {}
        self.next_birth = 0
        self.store_dir = store_dir
        # Long-lived: consumes the delta log across the whole run.
        self.wellformed = GSN_STANDARD_RULES.incremental(self.argument)
        # Long-lived obligation checker: standard rules + the formal
        # evidence-discharge rule over the randomly stamped obligations.
        self.obligation_wellformed = \
            GSN_OBLIGATION_RULES.incremental(self.argument)
        # Long-lived journal session: the store under journal_store is
        # only ever updated through save(journal=True) appends (plus
        # periodic compaction), and stored_wellformed re-checks it from
        # the persisted deltas without hydration.
        self.journal_store = (
            None if store_dir is None else store_dir / "journal.store"
        )
        self.stored_wellformed = None
        # Search session: saved indexed once, then journal appends only,
        # so the sidecar is always read through the O(delta) patch path.
        self.search_store = (
            None if store_dir is None else store_dir / "search.store"
        )
        self.search_saved = False

    # Operations consult the live argument, then mirror onto the shadow.

    def op_add_node(self) -> None:
        identifier = f"n{self.next_birth}"
        node = _random_node(self.rng, identifier)
        self.births[identifier] = self.next_birth
        self.next_birth += 1
        self.argument.add_node(node)
        self.shadow.add_node(node)

    def op_add_link(self) -> None:
        alive = sorted(self.births, key=self.births.__getitem__)
        if len(alive) < 2:
            return
        for _ in range(8):  # rejection-sample a legal older->newer pair
            source, target = self.rng.sample(alive, 2)
            if self.births[source] > self.births[target]:
                source, target = target, source
            kind = self.rng.choice(tuple(LinkKind))
            if all(
                link.target != target or link.kind is not kind
                for link in self.argument._out.get(source, ())
            ):
                self.argument.add_link(source, target, kind)
                self.shadow.add_link(source, target, kind)
                return

    def op_remove_link(self) -> None:
        links = self.argument.links
        if not links:
            return
        link = self.rng.choice(links)
        self.argument.remove_link(link)
        self.shadow.remove_link(link)

    def op_remove_node(self) -> None:
        if not self.births:
            return
        identifier = self.rng.choice(sorted(self.births))
        del self.births[identifier]
        self.argument.remove_node(identifier)
        self.shadow.remove_node(identifier)

    def op_replace_node(self) -> None:
        if not self.births:
            return
        identifier = self.rng.choice(sorted(self.births))
        old = self.argument.node(identifier)
        if self.rng.random() < 0.3:  # retype (exercises the type index)
            replacement = _random_node(self.rng, identifier)
        else:
            replacement = old.with_text(
                old.text + f" r{self.rng.randrange(100)}"
            )
        self.argument.replace_node(replacement)
        self.shadow.replace_node(replacement)

    def random_op(self) -> None:
        population = len(self.births)
        if population == 0:
            self.op_add_node()
            return
        removal_bias = 2 if population > 60 else 1
        ops = (
            [self.op_add_node] * 5
            + [self.op_add_link] * 5
            + [self.op_replace_node] * 3
            + [self.op_remove_link] * (2 * removal_bias)
            + [self.op_remove_node] * (1 * removal_bias)
        )
        self.rng.choice(ops)()

    def step(self) -> None:
        if self.rng.random() < 0.25:
            # A batch block: the main argument groups 2-6 mutations into
            # one version bump; the shadow applies them unbatched.
            version_before = self.argument.version
            with self.argument.batch():
                for _ in range(self.rng.randint(2, 6)):
                    self.random_op()
                    # Reads must stay coherent mid-batch.
                    assert self.argument.depth() == oracle_depth(
                        self.argument
                    )
            assert self.argument.version <= version_before + 1, (
                "a batch must bump the version at most once"
            )
        else:
            self.random_op()

    def check(self, step_number: int) -> None:
        argument, shadow = self.argument, self.shadow
        # (a) incremental index == fresh rebuild
        incremental = argument_index(argument)
        fresh = ArgumentIndex(argument)
        assert canonical_index(incremental) == canonical_index(fresh), (
            f"step {step_number}: incremental index diverged from rebuild"
        )
        # (b) batched == one-at-a-time
        assert argument == shadow and shadow == argument, (
            f"step {step_number}: batched and unbatched arguments diverged"
        )
        assert argument.version >= 0 and shadow.version >= 0
        # (c) structural invariants vs the naive oracle
        assert [r.identifier for r in argument.roots()] == \
            oracle_roots(argument)
        assert [leaf.identifier for leaf in argument.leaves()] == \
            oracle_leaves(argument)
        assert argument.statistics() == oracle_statistics(argument)
        assert argument.find_cycle() is None
        # (e) three-way well-formedness oracle: the incremental checker
        # (delta replay, cached per-rule violation maps) equals a fresh
        # full check after every step ...
        incremental_violations = self.wellformed.check()
        fresh_violations = GSN_STANDARD_RULES.check(argument)
        assert incremental_violations == fresh_violations, (
            f"step {step_number}: incremental well-formedness diverged "
            "from a fresh full check"
        )
        # (h) obligation oracle: the incremental checker over the
        # obligation-extended rule set equals a fresh full check —
        # proof-result caching must never change an answer.  Every 3rd
        # step bounds the extra full-check cost.
        if step_number % 3 == 0:
            incremental_obligations = self.obligation_wellformed.check()
            fresh_obligations = GSN_OBLIGATION_RULES.check(argument)
            assert incremental_obligations == fresh_obligations, (
                f"step {step_number}: incremental obligation check "
                "diverged from a fresh full check"
            )
        # ... and periodically both equal a streaming check over the
        # argument saved to a sharded store, without hydration.
        if self.store_dir is not None and step_number % 10 == 0:
            from repro.store import StoredArgument

            store = self.store_dir / "invariant.store"
            argument.save(store)
            stored = StoredArgument(store)
            streamed = GSN_STANDARD_RULES.check(stored, mode="streaming")
            assert streamed == fresh_violations, (
                f"step {step_number}: streaming check over the saved "
                "store diverged"
            )
            assert not stored.hydrated, (
                "the streaming check must not hydrate the store"
            )
        # (f) journal persistence: appends-only store ≡ live argument ≡
        # store-backed incremental checker; periodic compaction is
        # byte-stable against a clean save.
        if self.store_dir is not None and step_number % 15 == 0:
            from conftest import canonical_argument
            from repro.store import StoredArgument

            argument.save(self.journal_store, journal=True)
            stored = StoredArgument(self.journal_store)
            if step_number > 15:
                assert stored.journal_segments or step_number % 75 == 15, (
                    f"step {step_number}: the session should be appending"
                )
            replayed = stored.load()
            assert canonical_argument(replayed) == \
                canonical_argument(argument), (
                    f"step {step_number}: journal replay diverged from "
                    "the live argument"
                )
            if self.stored_wellformed is None:
                self.checker_store = StoredArgument(self.journal_store)
                self.stored_wellformed = \
                    GSN_STANDARD_RULES.incremental_from_store(
                        self.checker_store
                    )
            assert self.stored_wellformed.check() == fresh_violations, (
                f"step {step_number}: store-backed incremental check "
                "diverged from a fresh full check"
            )
            assert not self.checker_store.hydrated, (
                "from_store re-checking must never hydrate"
            )
            if step_number % 75 == 0:
                from conftest import store_files

                compact_handle = StoredArgument(self.journal_store)
                compact_handle.compact()
                compact_handle.gc()  # deferred sweep -> byte-stable dir
                # Compaction moved the manifest past the save baseline;
                # the argument still equals the store, so re-pin it.
                argument.mark_persisted(self.journal_store)
                fresh_dir = self.store_dir / "compaction-reference.store"
                argument.save(fresh_dir)
                assert store_files(self.journal_store) == \
                    store_files(fresh_dir), (
                        f"step {step_number}: compaction is not byte-stable"
                    )
                assert self.stored_wellformed.check() == \
                    fresh_violations, (
                        f"step {step_number}: checker lost sync across "
                        "compaction"
                    )
        # (g) search: journal-patched sidecar == fresh rebuild; stored
        # planner selects == naive scans; ranked search == its oracle.
        # Offset from (f)'s %15==0 so the byte-stability checks there
        # never see this store's extra saves.
        if self.store_dir is not None and step_number % 15 == 5:
            self._check_search(step_number)
        # (d) planner-backed selects == naive predicate scans
        if step_number % 10 == 0:
            worst = attribute_param("hazard", 1, "remote") \
                & attribute_param("hazard", 2, "catastrophic")
            queries = (
                has_attribute("hazard"),
                has_attribute("owner"),
                node_type_is(NodeType.GOAL),
                node_type_is(NodeType.SOLUTION),
                attribute_param("hazard", 1, "remote"),
                text_contains("hazard"),
                worst,
                worst | node_type_is(NodeType.STRATEGY),
                ~has_attribute("hazard"),
            )
            for query in queries:
                planned = [n.identifier for n in select(argument, query)]
                naive = [
                    n.identifier for n in argument.nodes if query(n)
                ]
                assert planned == naive, (
                    f"step {step_number}: {query.description}"
                )

    _NEEDLES = (
        ("hazard", False),            # common token, exact folded plan
        ("Hazard", True),             # case-sensitive: grams + predicate
        ("acceptably managed", False),  # substring spanning tokens
        ("analysis record", False),
        ("zzz absent", False),        # must plan to the empty set
    )

    def _check_search(self, step_number: int) -> None:
        from repro.core.search import search as ranked_search
        from repro.core.search import tokenize
        from repro.store import StoredArgument
        from repro.store.search import StoreSearchIndex, load_search_index

        argument = self.argument
        if not self.search_saved:
            argument.save(self.search_store, search_index=True)
            self.search_saved = True
        else:
            # The journal append leaves the sidecar file untouched;
            # readers must patch it forward from the delta log (or, on
            # a log-rotation fallback, the full save re-indexes because
            # the manifest already carries a sidecar).
            argument.save(self.search_store, journal=True)
        stored = StoredArgument(self.search_store)
        patched = load_search_index(stored)
        assert patched is not None, (
            f"step {step_number}: sidecar failed to load"
        )
        rebuilt = StoreSearchIndex.build(StoredArgument(self.search_store))
        assert patched.canonical() == rebuilt.canonical(), (
            f"step {step_number}: journal-patched sidecar diverged from "
            "a fresh rebuild"
        )
        for needle, case_sensitive in self._NEEDLES:
            query = text_contains(needle, case_sensitive)
            planned = sorted(
                node.identifier for node in select(stored, query)
            )
            naive = sorted(
                node.identifier
                for node in argument.nodes
                if query(node)
            )
            assert planned == naive, (
                f"step {step_number}: stored text_contains({needle!r}, "
                f"case_sensitive={case_sensitive}) diverged"
            )
        # Ranked search: exactly the term-semantics oracle, ranked.
        for query_text in ("hazard analysis", "acceptably", "braking claim"):
            hits = ranked_search(
                stored, query_text, limit=10 ** 6, neighbourhood=0
            )
            expected: set[str] = set()
            for term in dict.fromkeys(tokenize(query_text)):
                token_ids = {
                    node.identifier
                    for node in argument.nodes
                    if term in tokenize(node.text)
                }
                if not token_ids and len(term) >= 3:
                    token_ids = {
                        node.identifier
                        for node in argument.nodes
                        if term in node.text.lower()
                    }
                expected |= token_ids
            assert {hit.identifier for hit in hits} == expected, (
                f"step {step_number}: ranked search({query_text!r}) "
                "diverged from the term-semantics oracle"
            )
            scores = [hit.score for hit in hits]
            assert scores == sorted(scores, reverse=True)


@pytest.mark.parametrize("seed", [0xA11CE, 0xB0B, 0xC0FFEE])
def test_randomized_mutation_invariants(seed: int, tmp_path) -> None:
    harness = Harness(seed, store_dir=tmp_path)
    for step_number in range(1, STEPS + 1):
        harness.step()
        harness.check(step_number)
    # The run must have actually exercised a non-trivial history.
    assert harness.argument.mutation_seq >= STEPS
    assert len(harness.argument) > 0


class TinyLogArgument(Argument):
    """An argument whose delta log rotates almost immediately."""

    MUTATION_LOG_LIMIT = 8


def test_log_rotation_forces_correct_rebuild() -> None:
    """When the bounded log rotates, the index rebuilds — and is right."""
    argument = TinyLogArgument("tiny-log")
    argument.add_node(Node("g0", NodeType.GOAL, "The top claim holds"))
    first = argument_index(argument)
    # Far more mutations than the log retains.
    for index in range(1, 30):
        argument.add_node(Node(
            f"g{index}", NodeType.GOAL, f"Claim {index} holds",
            metadata=(("hazard", (f"H{index}", "remote", "minor")),),
        ))
    assert argument.delta_since(first.seq) is None
    refreshed = argument_index(argument)
    assert refreshed is not first, "a rotated log cannot be patched over"
    assert canonical_index(refreshed) == \
        canonical_index(ArgumentIndex(argument))


@pytest.mark.claims
def test_incremental_reproves_only_touched_obligations() -> None:
    """Editing one claim's evidence re-proves exactly that obligation.

    Counter-instrumented: after a warm incremental check, a single
    node's obligation edit must cost one proof and zero cache
    consultations — untouched claims are not even looked at.  Atom
    names are process-unique so earlier tests' cached proofs cannot
    flatter the counters.
    """
    import uuid

    def atom() -> str:
        return f"inv_{uuid.uuid4().hex[:10]}"

    argument = Argument("selective-reproof")
    argument.add_node(Node("g0", NodeType.GOAL, "The system is safe"))
    for index in range(12):
        name = atom()
        argument.add_node(Node(
            f"sn{index}", NodeType.SOLUTION, f"Evidence record {index}",
            metadata=(
                (OBLIGATION_KEY, (f"valid: {name} -> {name}",)),
            ),
        ))
        argument.add_link("g0", f"sn{index}", LinkKind.SUPPORTED_BY)

    checker = GSN_OBLIGATION_RULES.incremental(argument)
    baseline = checker.check()
    assert [v.rule for v in baseline] == []

    edited = atom()
    argument.replace_node(argument.node("sn7").with_metadata({
        OBLIGATION_KEY: (f"sat: {edited} | ~{edited}",),
    }))
    proofs_before, hits_before = obligation_counters()
    violations = checker.check()
    proofs_after, hits_after = obligation_counters()
    assert violations == []
    assert proofs_after - proofs_before == 1, (
        "one edited obligation must cost exactly one new proof"
    )
    assert hits_after == hits_before, (
        "untouched claims' cached proofs must not even be consulted"
    )
    assert violations == GSN_OBLIGATION_RULES.check(argument)


def test_oversized_delta_declined_in_favour_of_rebuild() -> None:
    """A delta larger than the index itself triggers a rebuild instead."""
    argument = Argument("oversized")
    argument.add_node(Node("g0", NodeType.GOAL, "The top claim holds"))
    index = argument_index(argument)
    with argument.batch():
        for number in range(1, 200):
            argument.add_node(Node(
                f"g{number}", NodeType.GOAL, f"Claim {number} holds"
            ))
    delta = argument.delta_since(index.seq)
    assert delta is not None and len(delta) == 199
    assert not index.apply(delta), (
        "an oversized delta should be declined"
    )
    refreshed = argument_index(argument)
    assert canonical_index(refreshed) == \
        canonical_index(ArgumentIndex(argument))
