"""Well-formedness over stored arguments, and shard-corruption handling.

Two contracts of the persistent store:

* **checking is storage-transparent** — an argument loaded from (or
  checked directly against) a store produces exactly the violations the
  in-memory original does, rule for rule, in order;
* **corruption is loud and located** — any tampering a shard can suffer
  (bit flips, truncated JSONL lines, padded records, missing files,
  undecodable lines) raises a typed
  :class:`~repro.store.StoreCorruptionError` that names the shard, so an
  operator of a 100k-node store knows which file to restore.
"""

from __future__ import annotations

import json
from zlib import crc32

import pytest

from repro.core.argument import Argument, LinkKind
from repro.core.nodes import Node, NodeType
from repro.core.wellformed import DENNEY_PAI_RULES, check
from repro.store import StoredArgument, StoreCorruptionError, StoreError

pytestmark = pytest.mark.store


@pytest.fixture
def ill_formed_argument() -> Argument:
    """One argument violating several distinct rules at once."""
    argument = Argument("ill-formed")
    argument.add_nodes([
        Node("G1", NodeType.GOAL, "The system is acceptably safe"),
        Node("G2", NodeType.GOAL, "Formal proof that Quat4 holds"),
        Node("G3", NodeType.GOAL, "A second root claim stands alone"),
        Node("Sn1", NodeType.SOLUTION, "Test report TR-1"),
        Node("Sn2", NodeType.SOLUTION, "Test report TR-2"),
        Node("C1", NodeType.CONTEXT, "Operating context"),
    ])
    argument.add_links([
        ("G1", "G2", LinkKind.SUPPORTED_BY),
        ("G2", "Sn1", LinkKind.SUPPORTED_BY),
        # solution-leaf violation: a solution citing further support.
        ("Sn1", "Sn2", LinkKind.SUPPORTED_BY),
        # in-context-of-target violation: context link to a solution.
        ("G1", "Sn2", LinkKind.IN_CONTEXT_OF),
        ("G2", "C1", LinkKind.IN_CONTEXT_OF),
    ])
    # G3 is an unsupported, unmarked goal and a second root.
    return argument


def test_loaded_argument_has_identical_violations(
    ill_formed_argument, tmp_path
) -> None:
    store_dir = tmp_path / "ill.store"
    ill_formed_argument.save(store_dir)
    loaded = Argument.load(store_dir)
    expected = check(ill_formed_argument)
    assert expected, "fixture must actually violate rules"
    assert check(loaded) == expected
    assert check(loaded, DENNEY_PAI_RULES) == \
        check(ill_formed_argument, DENNEY_PAI_RULES)


def test_check_accepts_stored_argument_directly(
    ill_formed_argument, tmp_path
) -> None:
    store_dir = tmp_path / "ill.store"
    ill_formed_argument.save(store_dir)
    stored = StoredArgument(store_dir)
    assert check(stored) == check(ill_formed_argument)
    # The check hydrated by iterating shards.
    assert stored.shards_read


def test_check_rejects_non_argument_objects_clearly(sample_case) -> None:
    """Objects that merely *have* a load() must not be mis-dispatched."""
    with pytest.raises(TypeError, match="got AssuranceCase"):
        check(sample_case)


def test_cyclic_stored_argument_still_flagged(tmp_path) -> None:
    argument = Argument("cyclic")
    argument.add_nodes([
        Node("G1", NodeType.GOAL, "Claim one holds"),
        Node("G2", NodeType.GOAL, "Claim two holds"),
    ])
    argument.add_links([
        ("G1", "G2", LinkKind.SUPPORTED_BY),
        ("G2", "G1", LinkKind.SUPPORTED_BY),
    ])
    argument.save(tmp_path / "cyclic.store")
    violations = check(Argument.load(tmp_path / "cyclic.store"))
    assert any(v.rule == "acyclic" for v in violations)
    assert violations == check(argument)


# -- corruption fixtures ----------------------------------------------------


@pytest.fixture
def stored_dir(ill_formed_argument, tmp_path):
    store_dir = tmp_path / "victim.store"
    ill_formed_argument.save(store_dir)
    return store_dir


def _manifest(store_dir) -> dict:
    return json.loads((store_dir / "manifest.json").read_text())


def _nonempty_shard(store_dir, prefix: str) -> str:
    manifest = _manifest(store_dir)
    for name, meta in manifest["shards"].items():
        if name.startswith(prefix) and meta["records"] > 0:
            return name
    raise AssertionError(f"no non-empty {prefix} shard")


def _patch_manifest_crc(store_dir, shard: str) -> None:
    """Recompute a tampered shard's checksum so only *content* is wrong."""
    manifest = _manifest(store_dir)
    manifest["shards"][shard]["crc32"] = crc32(
        (store_dir / shard).read_bytes()
    )
    (store_dir / "manifest.json").write_text(json.dumps(manifest))


def test_flipped_byte_raises_corruption_naming_shard(stored_dir) -> None:
    shard = _nonempty_shard(stored_dir, "nodes-")
    data = bytearray((stored_dir / shard).read_bytes())
    # Flip the case of the first text character; the line stays valid
    # JSON, so only the checksum can catch it.
    marker = b'"text":"'
    data[data.index(marker) + len(marker)] ^= 0x20
    (stored_dir / shard).write_bytes(bytes(data))
    with pytest.raises(StoreCorruptionError, match=shard) as excinfo:
        StoredArgument(stored_dir).load()
    assert excinfo.value.shard == shard
    assert "checksum" in str(excinfo.value)


def test_truncated_line_raises_corruption_naming_shard(stored_dir) -> None:
    shard = _nonempty_shard(stored_dir, "links-")
    data = (stored_dir / shard).read_bytes()
    (stored_dir / shard).write_bytes(data[: len(data) // 2])
    with pytest.raises(StoreCorruptionError, match=shard) as excinfo:
        list(StoredArgument(stored_dir).iter_links())
    assert excinfo.value.shard == shard


def test_undecodable_line_names_shard_and_line(stored_dir) -> None:
    shard = _nonempty_shard(stored_dir, "nodes-")
    path = stored_dir / shard
    lines = path.read_bytes().splitlines(keepends=True)
    lines[0] = b'{"seq": 0, "id": "broken"\n'  # unterminated object
    path.write_bytes(b"".join(lines))
    _patch_manifest_crc(stored_dir, shard)  # isolate the decode path
    with pytest.raises(StoreCorruptionError, match=shard) as excinfo:
        StoredArgument(stored_dir).load()
    assert "line 1" in str(excinfo.value)


def test_valid_json_non_record_line_is_corruption_not_crash(
    stored_dir,
) -> None:
    """A line that decodes fine but is no record must not TypeError."""
    shard = _nonempty_shard(stored_dir, "nodes-")
    path = stored_dir / shard
    lines = path.read_bytes().splitlines(keepends=True)
    lines[0] = b"null\n"  # valid JSON, not a store record
    path.write_bytes(b"".join(lines))
    _patch_manifest_crc(stored_dir, shard)
    with pytest.raises(StoreCorruptionError, match=shard) as excinfo:
        StoredArgument(stored_dir).load()
    assert "not a store record" in str(excinfo.value)


def test_record_missing_required_keys_is_corruption(stored_dir) -> None:
    shard = _nonempty_shard(stored_dir, "links-")
    path = stored_dir / shard
    lines = path.read_bytes().splitlines(keepends=True)
    lines[0] = b'{"seq": 0, "source": "G1"}\n'  # no target/kind
    path.write_bytes(b"".join(lines))
    _patch_manifest_crc(stored_dir, shard)
    with pytest.raises(StoreCorruptionError, match=shard):
        list(StoredArgument(stored_dir).iter_links())


def test_padded_shard_raises_record_count_mismatch(stored_dir) -> None:
    shard = _nonempty_shard(stored_dir, "nodes-")
    path = stored_dir / shard
    extra = json.dumps({
        "seq": 999, "id": "Gx", "type": "goal", "text": "Injected claim",
    }, separators=(",", ":")).encode() + b"\n"
    path.write_bytes(path.read_bytes() + extra)
    _patch_manifest_crc(stored_dir, shard)  # isolate the count check
    with pytest.raises(StoreCorruptionError, match=shard) as excinfo:
        StoredArgument(stored_dir).load()
    assert "record" in str(excinfo.value)


def test_missing_shard_file_raises_corruption(stored_dir) -> None:
    shard = _nonempty_shard(stored_dir, "links-")
    (stored_dir / shard).unlink()
    with pytest.raises(StoreCorruptionError, match=shard):
        StoredArgument(stored_dir).load()


def test_lazy_node_lookup_verifies_its_shard(stored_dir) -> None:
    """Corruption surfaces even on a single-shard partial read."""
    shard = _nonempty_shard(stored_dir, "nodes-")
    record = json.loads(
        (stored_dir / shard).read_bytes().splitlines()[0]
    )
    data = bytearray((stored_dir / shard).read_bytes())
    data[-2] ^= 0x01
    (stored_dir / shard).write_bytes(bytes(data))
    stored = StoredArgument(stored_dir)
    with pytest.raises(StoreCorruptionError, match=shard):
        stored.node(record["id"])


def test_tampered_shard_count_rejected_at_open(stored_dir) -> None:
    """A nonsense shard map must not silently load an empty argument."""
    manifest = _manifest(stored_dir)
    manifest["shard_count"] = 0
    manifest["node_shards"] = []
    manifest["link_shards"] = []
    (stored_dir / "manifest.json").write_text(json.dumps(manifest))
    with pytest.raises(StoreCorruptionError, match="inconsistent shard map"):
        StoredArgument(stored_dir)


def test_tampered_node_count_rejected_on_load(stored_dir) -> None:
    manifest = _manifest(stored_dir)
    manifest["node_count"] += 1
    (stored_dir / "manifest.json").write_text(json.dumps(manifest))
    with pytest.raises(StoreCorruptionError, match="manifest claims"):
        StoredArgument(stored_dir).load()


def test_unsupported_schema_rejected(stored_dir) -> None:
    manifest = _manifest(stored_dir)
    manifest["schema"] = 99
    (stored_dir / "manifest.json").write_text(json.dumps(manifest))
    with pytest.raises(StoreError, match="unsupported store schema"):
        StoredArgument(stored_dir)


def test_missing_manifest_rejected(tmp_path) -> None:
    with pytest.raises(StoreError, match="no store manifest"):
        StoredArgument(tmp_path / "nowhere.store")


def test_corruption_error_is_a_store_error_and_value_error(
    stored_dir,
) -> None:
    shard = _nonempty_shard(stored_dir, "nodes-")
    (stored_dir / shard).write_bytes(b"garbage\n")
    with pytest.raises(StoreError):
        StoredArgument(stored_dir).load()
    with pytest.raises(ValueError):
        StoredArgument(stored_dir).load()
