"""Tier-1 smoke check for the store workload in
``benchmarks/bench_graph_scale.py``.

Mirrors ``test_graph_scale_smoke.py``: runs the persistence workload at
small size on every test run so save/load regressions fail loudly in CI.
The full-size run (``python benchmarks/bench_graph_scale.py``) records
the 10k-node numbers in the committed ``BENCH_graph_scale.json``; this
smoke keeps that path healthy and pins the partial-load contract —
``bench_store_workload`` itself asserts the loaded argument equals the
original and the subtree partial load matches the in-memory
``subtree()``.
"""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.store

SMOKE_NODES = 800


def test_bench_store_smoke(graph_scale_bench, tmp_path):
    result = graph_scale_bench.bench_store_workload(SMOKE_NODES, tmp_path)

    assert result["nodes"] >= SMOKE_NODES * 0.9
    assert result["links"] >= result["nodes"] - 1
    for key in ("save_s", "load_s", "subtree_load_s"):
        assert result[key] >= 0.0, key
    assert result["store_bytes"] > 0

    # The partial subtree load must hydrate strictly fewer shards than
    # full hydration — the point of sharding by id-hash.
    assert result["partial_shards_read"] < result["full_shards_read"]
    assert result["full_shards_read"] == 2 * result["shard_count"]
    # A fan leaf's subtree is just the leaf.
    assert result["subtree_nodes"] == 1
