"""Tests for repro.core.diff — the maintenance view."""

from __future__ import annotations

import pytest

from repro.core.builder import ArgumentBuilder
from repro.core.diff import diff_arguments, render_diff
from repro.core.nodes import Node, NodeType


def _version_one():
    builder = ArgumentBuilder("v1")
    top = builder.goal("The system is acceptably safe")
    strategy = builder.strategy("Argument over hazards", under=top)
    h1 = builder.goal("Hazard H1 is acceptably managed", under=strategy)
    builder.solution("Analysis record A1", under=h1)
    h2 = builder.goal("Hazard H2 is acceptably managed", under=strategy)
    builder.solution("Analysis record A2", under=h2)
    return builder.build()


class TestDiff:
    def test_identical_versions_empty_diff(self):
        before = _version_one()
        after = _version_one()
        diff = diff_arguments(before, after)
        assert diff.is_empty
        assert "No structural changes" in render_diff(diff, after)

    def test_added_node_detected(self):
        before = _version_one()
        after = _version_one()
        after.add_node(Node(
            "G4", NodeType.GOAL, "Hazard H3 is acceptably managed"
        ))
        after.supported_by("S1", "G4")
        after.add_node(Node("Sn3", NodeType.SOLUTION, "Record A3"))
        after.supported_by("G4", "Sn3")
        diff = diff_arguments(before, after)
        assert {n.identifier for n in diff.added_nodes} == {"G4", "Sn3"}
        assert len(diff.added_links) == 2
        assert not diff.removed_nodes

    def test_removed_node_detected(self):
        before = _version_one()
        after = _version_one()
        after.remove_node("Sn2")
        diff = diff_arguments(before, after)
        assert [n.identifier for n in diff.removed_nodes] == ["Sn2"]
        assert len(diff.removed_links) == 1

    def test_text_change_detected(self):
        before = _version_one()
        after = _version_one()
        node = after.node("G2")
        after.replace_node(node.with_text(
            "Hazard H1 is acceptably managed in all modes"
        ))
        diff = diff_arguments(before, after)
        assert len(diff.changed_nodes) == 1
        change = diff.changed_nodes[0]
        assert change.identifier == "G2"
        assert change.text_changed
        assert not change.kind_changed

    def test_review_set_climbs_to_root(self):
        before = _version_one()
        after = _version_one()
        after.remove_node("Sn1")  # H1's evidence withdrawn
        diff = diff_arguments(before, after)
        review = diff.review_set(after)
        # H1's goal and the root must be re-reviewed.
        assert "G2" in review
        assert "G1" in review
        # The untouched H2 leg is not dragged in.
        assert "G3" not in review

    def test_review_set_for_added_subtree(self):
        before = _version_one()
        after = _version_one()
        after.add_node(Node(
            "G4", NodeType.GOAL, "Hazard H3 is acceptably managed",
            undeveloped=True,
        ))
        after.supported_by("S1", "G4")
        diff = diff_arguments(before, after)
        review = diff.review_set(after)
        assert "G4" in review
        assert "G1" in review

    def test_render_diff_sections(self):
        before = _version_one()
        after = _version_one()
        after.remove_node("Sn2")
        after.add_node(Node("Sn9", NodeType.SOLUTION, "New record"))
        after.supported_by("G3", "Sn9")
        node = after.node("G2")
        after.replace_node(node.with_text(
            "Hazard H1 is acceptably managed across the fleet"
        ))
        text = render_diff(diff_arguments(before, after), after)
        assert "Added nodes:" in text
        assert "Removed nodes:" in text
        assert "Modified nodes:" in text
        assert "Claims to re-review" in text

    def test_metadata_change_detected(self):
        before = _version_one()
        after = _version_one()
        node = after.node("G2").with_metadata({"reviewed": (True,)})
        after.replace_node(node)
        diff = diff_arguments(before, after)
        assert len(diff.changed_nodes) == 1
        assert "metadata changed" in str(diff.changed_nodes[0])

    def test_undeveloped_flip_detected(self):
        before = _version_one()
        after = _version_one()
        after.remove_node("Sn1")
        from dataclasses import replace

        node = after.node("G2")
        after.replace_node(replace(node, undeveloped=True))
        diff = diff_arguments(before, after)
        changes = {c.identifier: c for c in diff.changed_nodes}
        assert "now undeveloped" in str(changes["G2"])
