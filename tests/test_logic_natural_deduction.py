"""Tests for repro.logic.natural_deduction, incl. the Haley proof."""

from __future__ import annotations

import pytest

from repro.logic.entailment import entails
from repro.logic.natural_deduction import (
    Proof,
    ProofBuilder,
    ProofError,
    ProofLine,
    Rule,
    check_proof,
    haley_outer_proof,
)
from repro.logic.propositional import And, Atom, Implies, Not, parse


class TestHaleyProof:
    """The 11-step outer argument from Haley et al. 2008 (§III.K)."""

    def test_checks(self):
        assert check_proof(haley_outer_proof())

    def test_has_eleven_lines(self):
        assert len(haley_outer_proof()) == 11

    def test_five_premises(self):
        proof = haley_outer_proof()
        assert len(proof.premises) == 5

    def test_conclusion_is_d_implies_h(self):
        proof = haley_outer_proof()
        assert proof.conclusion == parse("D -> H")

    def test_line_rules_match_paper(self):
        proof = haley_outer_proof()
        rules = [line.rule for line in proof.lines]
        assert rules[:5] == [Rule.PREMISE] * 5
        assert rules[5] == Rule.DETACH       # 6: Y
        assert rules[6] == Rule.DETACH       # 7: V & C
        assert rules[7] == Rule.SPLIT        # 8: V
        assert rules[8] == Rule.SPLIT        # 9: C
        assert rules[9] == Rule.DETACH       # 10: H
        assert rules[10] == Rule.CONCLUSION  # 11: D -> H

    def test_citations_match_paper(self):
        proof = haley_outer_proof()
        assert proof.lines[5].citations == (4, 5)
        assert proof.lines[6].citations == (3, 6)
        assert proof.lines[9].citations == (2, 9)
        assert proof.lines[10].citations == (5,)

    def test_conclusion_semantically_sound(self):
        proof = haley_outer_proof()
        # Premises minus the discharged D still entail D -> H.
        undischarged = [p for p in proof.premises if p != parse("D")]
        assert entails(undischarged, proof.conclusion)

    def test_rendering_includes_rule_names(self):
        text = str(haley_outer_proof())
        assert "Detach" in text
        assert "Split" in text
        assert "Conclusion" in text


class TestBuilder:
    def test_modus_ponens(self):
        builder = ProofBuilder()
        implication = builder.premise("p -> q")
        antecedent = builder.premise("p")
        builder.detach(implication, antecedent)
        proof = builder.build()
        assert proof.conclusion == parse("q")

    def test_split_both_sides(self):
        builder = ProofBuilder()
        conjunction = builder.premise("p & q")
        left = builder.split(conjunction, keep_left=True)
        right = builder.split(conjunction, keep_left=False)
        proof = builder.build()
        assert proof.lines[left - 1].formula == parse("p")
        assert proof.lines[right - 1].formula == parse("q")

    def test_conjoin(self):
        builder = ProofBuilder()
        a = builder.premise("a")
        b = builder.premise("b")
        builder.conjoin(a, b)
        assert builder.build().conclusion == parse("a & b")

    def test_add_disjunct(self):
        builder = ProofBuilder()
        a = builder.premise("a")
        builder.add_disjunct(a, "b")
        assert builder.build().conclusion == parse("a | b")

    def test_modus_tollens(self):
        builder = ProofBuilder()
        implication = builder.premise("p -> q")
        negation = builder.premise("~q")
        builder.modus_tollens(implication, negation)
        assert builder.build().conclusion == parse("~p")

    def test_reiterate(self):
        builder = ProofBuilder()
        a = builder.premise("a")
        builder.reiterate(a)
        assert check_proof(builder.build())

    def test_detach_requires_implication(self):
        builder = ProofBuilder()
        a = builder.premise("a")
        b = builder.premise("b")
        with pytest.raises(ValueError):
            builder.detach(a, b)

    def test_bad_line_reference(self):
        builder = ProofBuilder()
        builder.premise("a")
        with pytest.raises(ValueError):
            builder.split(99)


class TestChecker:
    def _proof(self, *lines: ProofLine) -> Proof:
        return Proof(tuple(lines))

    def test_rejects_wrong_line_numbers(self):
        proof = self._proof(
            ProofLine(2, parse("p"), Rule.PREMISE),
        )
        with pytest.raises(ProofError, match="expected line number"):
            check_proof(proof)

    def test_rejects_forward_citation(self):
        proof = self._proof(
            ProofLine(1, parse("q"), Rule.REITERATE, (2,)),
            ProofLine(2, parse("q"), Rule.PREMISE),
        )
        with pytest.raises(ProofError):
            check_proof(proof)

    def test_rejects_bogus_detach(self):
        proof = self._proof(
            ProofLine(1, parse("p -> q"), Rule.PREMISE),
            ProofLine(2, parse("r"), Rule.PREMISE),
            ProofLine(3, parse("q"), Rule.DETACH, (1, 2)),
        )
        with pytest.raises(ProofError, match="antecedent"):
            check_proof(proof)

    def test_rejects_wrong_detach_conclusion(self):
        proof = self._proof(
            ProofLine(1, parse("p -> q"), Rule.PREMISE),
            ProofLine(2, parse("p"), Rule.PREMISE),
            ProofLine(3, parse("r"), Rule.DETACH, (1, 2)),
        )
        with pytest.raises(ProofError, match="consequent"):
            check_proof(proof)

    def test_rejects_split_of_non_conjunction(self):
        proof = self._proof(
            ProofLine(1, parse("p | q"), Rule.PREMISE),
            ProofLine(2, parse("p"), Rule.SPLIT, (1,)),
        )
        with pytest.raises(ProofError, match="conjunction"):
            check_proof(proof)

    def test_rejects_affirming_the_consequent(self):
        # The checker must not accept the classic invalid form.
        proof = self._proof(
            ProofLine(1, parse("p -> q"), Rule.PREMISE),
            ProofLine(2, parse("q"), Rule.PREMISE),
            ProofLine(3, parse("p"), Rule.DETACH, (1, 2)),
        )
        with pytest.raises(ProofError):
            check_proof(proof)

    def test_rejects_premise_with_citations(self):
        proof = self._proof(
            ProofLine(1, parse("p"), Rule.PREMISE),
            ProofLine(2, parse("q"), Rule.PREMISE, (1,)),
        )
        with pytest.raises(ProofError, match="no citations"):
            check_proof(proof)

    def test_conclusion_must_discharge_cited_premise(self):
        proof = self._proof(
            ProofLine(1, parse("p"), Rule.PREMISE),
            ProofLine(2, parse("q"), Rule.PREMISE),
            ProofLine(3, parse("r -> q"), Rule.CONCLUSION, (1,)),
        )
        with pytest.raises(ProofError, match="antecedent"):
            check_proof(proof)

    def test_cases_rule(self):
        proof = self._proof(
            ProofLine(1, parse("p | q"), Rule.PREMISE),
            ProofLine(2, parse("p -> r"), Rule.PREMISE),
            ProofLine(3, parse("q -> r"), Rule.PREMISE),
            ProofLine(4, parse("r"), Rule.CASES, (1, 2, 3)),
        )
        assert check_proof(proof)

    def test_iff_elimination(self):
        proof = self._proof(
            ProofLine(1, parse("p <-> q"), Rule.PREMISE),
            ProofLine(2, parse("p -> q"), Rule.IFF_ELIM, (1,)),
        )
        assert check_proof(proof)

    def test_hypothetical_syllogism(self):
        proof = self._proof(
            ProofLine(1, parse("p -> q"), Rule.PREMISE),
            ProofLine(2, parse("q -> r"), Rule.PREMISE),
            ProofLine(3, parse("p -> r"), Rule.HYPOTHETICAL, (1, 2)),
        )
        assert check_proof(proof)

    def test_double_negation(self):
        proof = self._proof(
            ProofLine(1, parse("~~p"), Rule.PREMISE),
            ProofLine(2, parse("p"), Rule.DOUBLE_NEG, (1,)),
        )
        assert check_proof(proof)


class TestRuleAliases:
    def test_modus_ponens_alias(self):
        assert Rule.from_name("modus_ponens") is Rule.DETACH

    def test_symbolic_aliases(self):
        assert Rule.from_name("->e") is Rule.DETACH
        assert Rule.from_name("&e") is Rule.SPLIT
        assert Rule.from_name("->i") is Rule.CONCLUSION

    def test_canonical_name(self):
        assert Rule.from_name("detach") is Rule.DETACH


class TestSoundness:
    """Checked proofs are sound: premises true => conclusion true."""

    def test_derived_lines_entailed_by_premises(self):
        builder = ProofBuilder()
        line_ab = builder.premise("a -> b")
        line_bc = builder.premise("b -> c & d")
        line_a = builder.premise("a")
        line_b = builder.detach(line_ab, line_a)
        line_cd = builder.detach(line_bc, line_b)
        builder.split(line_cd, keep_left=False)
        proof = builder.build()
        for line in proof.lines:
            if line.rule not in (Rule.PREMISE, Rule.ASSUMPTION):
                assert entails(proof.premises, line.formula), str(line)
