"""Streaming round-trip conformance harness for the sharded store.

Drives the seeded randomized generator (node payloads from
``test_invariants.py`` via ``conftest.random_argument``) through
save → load → save cycles and asserts, for every seed:

* **byte stability** — re-serialising a loaded store reproduces every
  file byte-for-byte (manifest included), so stores can be diffed,
  deduplicated, and content-addressed;
* **semantic equality** — nodes, links, metadata (canonical form),
  statistics, well-formedness violations, and ``select()`` results all
  survive the trip, judged by the same equivalence oracle the legacy
  notation round-trip properties use;
* **partial-load conformance** — ``StoredArgument.subtree(root_id)``
  equals the in-memory ``subtree()`` while hydrating only the shards the
  reachable region touches.

The 10k-node acceptance run is marked ``slow`` (tier-1 still runs it);
the per-seed property runs stay in the quick loop.
"""

from __future__ import annotations

import pytest

from conftest import canonical_argument, random_argument
from repro.core.argument import Argument
from repro.core.nodes import NodeType
from repro.core.query import (
    attribute_param,
    has_attribute,
    node_type_is,
    select,
    text_contains,
)
from repro.core.wellformed import check
from repro.store import StoredArgument, save_argument

pytestmark = pytest.mark.store


from conftest import store_files as _store_bytes  # the shared oracle


def _query_battery():
    worst = attribute_param("hazard", 1, "remote") \
        & attribute_param("hazard", 2, "catastrophic")
    return (
        has_attribute("hazard"),
        has_attribute("owner"),
        node_type_is(NodeType.GOAL),
        node_type_is(NodeType.SOLUTION),
        attribute_param("hazard", 1, "remote"),
        text_contains("hazard"),
        worst,
        worst | node_type_is(NodeType.STRATEGY),
    )


def _assert_conformant(argument: Argument, tmp_path) -> None:
    """The full save → load → save contract for one argument."""
    first = tmp_path / "first.store"
    second = tmp_path / "second.store"
    third = tmp_path / "third.store"

    argument.save(first)
    loaded = Argument.load(first)
    loaded.save(second)
    assert _store_bytes(first) == _store_bytes(second), (
        "save -> load -> save is not byte-stable"
    )
    # And the cycle is idempotent from there on.
    Argument.load(second).save(third)
    assert _store_bytes(second) == _store_bytes(third)

    # Semantic equality under the shared oracle.
    assert canonical_argument(loaded) == canonical_argument(argument)
    assert loaded.name == argument.name
    assert loaded.statistics() == argument.statistics()
    assert check(loaded) == check(argument), (
        "loading changed the well-formedness violations"
    )
    # Insertion order survives the shard merge: planner-backed selects
    # agree element-for-element, and streaming selects over the store
    # agree with both.
    stored = StoredArgument(first)
    for query in _query_battery():
        expected = [n.identifier for n in select(argument, query)]
        assert [n.identifier for n in select(loaded, query)] == expected
        assert [n.identifier for n in select(stored, query)] == expected


@pytest.mark.parametrize("seed", [11, 22, 33])
def test_save_load_save_conformance(seed: int, tmp_path) -> None:
    argument = random_argument(seed, 250)
    _assert_conformant(argument, tmp_path)


@pytest.mark.parametrize("seed", [44, 55])
def test_subtree_load_matches_in_memory_subtree(seed: int, tmp_path) -> None:
    argument = random_argument(seed, 300)
    store_dir = tmp_path / "arg.store"
    argument.save(store_dir)
    loaded = Argument.load(store_dir)
    # Sample roots across the age range: old nodes reach much of the
    # graph, young nodes almost nothing.
    for root_id in ("n0", "n7", "n150", "n299"):
        stored = StoredArgument(store_dir)
        fragment = stored.subtree(root_id)
        # Exact equality against a subtree of the *loaded* argument
        # (both sides carry canonical metadata)...
        assert fragment == loaded.subtree(root_id)
        # ...and oracle equality against the original in-memory subtree
        # (whose nodes may carry non-canonical duplicate metadata).
        assert canonical_argument(fragment) == \
            canonical_argument(argument.subtree(root_id))


def test_subtree_load_hydrates_fewer_shards(tmp_path) -> None:
    """A localised subtree must not pay for the whole store."""
    argument = random_argument(66, 400)
    store_dir = tmp_path / "arg.store"
    manifest = save_argument(argument, store_dir)
    full = StoredArgument(store_dir)
    full.load()
    assert len(full.shards_read) == 2 * manifest["shard_count"]
    partial = StoredArgument(store_dir)
    partial.subtree("n399")  # the youngest node: tiny reachable set
    assert len(partial.shards_read) < len(full.shards_read)
    # The lazy handle only ever reads a shard once, however many
    # lookups hit it.
    before = set(partial.shards_read)
    partial.node("n399")
    assert set(partial.shards_read) == before


def test_shard_count_is_configurable_and_recorded(tmp_path) -> None:
    argument = random_argument(77, 120)
    store_dir = tmp_path / "arg.store"
    manifest = argument.save(store_dir, shard_count=3)
    assert manifest["shard_count"] == 3
    node_shards = [
        name for name in manifest["shards"] if name.startswith("nodes-")
    ]
    assert len(node_shards) == 3
    assert sum(
        manifest["shards"][name]["records"] for name in node_shards
    ) == len(argument)
    assert canonical_argument(Argument.load(store_dir)) == \
        canonical_argument(argument)


def test_resave_with_fewer_shards_cleans_only_its_own_files(
    tmp_path,
) -> None:
    """Re-saving replaces the store; unrelated files are never touched."""
    argument = random_argument(99, 100)
    store_dir = tmp_path / "arg.store"
    argument.save(store_dir, shard_count=8)
    bystander = store_dir / "notes.jsonl"  # not ours: must survive
    bystander.write_text("operator scratch notes\n")
    manifest = argument.save(store_dir, shard_count=3)
    on_disk = {path.name for path in store_dir.iterdir()}
    # Exactly the new manifest's shards, the manifest, and the bystander.
    assert on_disk == set(manifest["shards"]) | {
        "manifest.json", "notes.jsonl",
    }
    assert canonical_argument(Argument.load(store_dir)) == \
        canonical_argument(argument)


def test_failed_save_leaves_previous_store_loadable(tmp_path) -> None:
    """An interrupted save must not destroy the existing good store."""

    class ExplodingArgument(Argument):
        @property
        def nodes(self):  # simulate disk-full / crash mid-stream
            raise RuntimeError("simulated failure while streaming")

    argument = random_argument(111, 80)
    store_dir = tmp_path / "arg.store"
    argument.save(store_dir)
    good = _store_bytes(store_dir)
    with pytest.raises(RuntimeError, match="simulated failure"):
        ExplodingArgument("boom").save(store_dir)
    # The committed files are untouched (tmp litter aside) and loadable.
    assert {
        name: data
        for name, data in _store_bytes(store_dir).items()
        if not name.endswith(".tmp")
    } == good
    assert canonical_argument(Argument.load(store_dir)) == \
        canonical_argument(argument)


def test_crash_before_manifest_commit_leaves_old_store_intact(
    tmp_path, monkeypatch,
) -> None:
    """Sealed new shards without a manifest commit change nothing.

    The manifest rename is the single commit point: a crash after every
    shard is written but before the manifest lands must leave the old
    manifest pointing at the old (still present, content-addressed)
    shard files.
    """
    import repro.store.writer as writer_module

    old = random_argument(121, 60, name="same-store")
    new = random_argument(122, 90, name="same-store")
    store_dir = tmp_path / "arg.store"
    old.save(store_dir)
    good = _store_bytes(store_dir)

    def explode(directory, manifest):
        raise RuntimeError("simulated crash at commit")

    monkeypatch.setattr(writer_module, "_commit", explode)
    with pytest.raises(RuntimeError, match="crash at commit"):
        new.save(store_dir)
    monkeypatch.undo()
    # Old store still loads bit-for-bit; the orphaned new shards are
    # extra files no manifest references.
    on_disk = _store_bytes(store_dir)
    assert all(on_disk[name] == data for name, data in good.items())
    assert canonical_argument(Argument.load(store_dir)) == \
        canonical_argument(old)


def test_case_save_load_save_byte_stable(sample_case, tmp_path) -> None:
    """Evidence, citations, and criterion ride the same contract."""
    from repro.core.case import AssuranceCase

    first = tmp_path / "first.store"
    second = tmp_path / "second.store"
    sample_case.save(first)
    loaded = AssuranceCase.load(first)
    loaded.save(second)
    assert _store_bytes(first) == _store_bytes(second)
    assert loaded.name == sample_case.name
    assert loaded.criterion == sample_case.criterion
    assert loaded.argument == sample_case.argument
    assert [item.identifier for item in loaded.evidence] == \
        [item.identifier for item in sample_case.evidence]
    for node in sample_case.argument.nodes:
        assert [i.identifier for i in loaded.citations(node.identifier)] \
            == [
                i.identifier
                for i in sample_case.citations(node.identifier)
            ]
    # The lifecycle log intentionally restarts.
    assert len(loaded.history) == 1
    assert loaded.integrity_report().ok == sample_case.integrity_report().ok


def test_load_on_subclass_returns_subclass(tmp_path) -> None:
    class AuditedArgument(Argument):
        pass

    argument = random_argument(131, 40)
    argument.save(tmp_path / "arg.store")
    loaded = AuditedArgument.load(tmp_path / "arg.store")
    assert type(loaded) is AuditedArgument
    assert canonical_argument(loaded) == canonical_argument(argument)


def test_empty_argument_round_trips(tmp_path) -> None:
    argument = Argument("empty")
    argument.save(tmp_path / "empty.store")
    loaded = Argument.load(tmp_path / "empty.store")
    assert len(loaded) == 0 and loaded.links == []
    assert loaded.name == "empty"


def test_load_is_one_version_bump(tmp_path) -> None:
    """Hydration replays through the batch layer: one logical change."""
    argument = random_argument(88, 150)
    argument.save(tmp_path / "arg.store")
    loaded = Argument.load(tmp_path / "arg.store")
    assert loaded.version == 1
    # Every record is individually visible to delta consumers.
    assert loaded.mutation_seq == len(loaded) + len(loaded.links)


@pytest.mark.slow
def test_10k_node_acceptance_conformance(tmp_path) -> None:
    """The acceptance-criteria run: a 10k-node randomized argument."""
    argument = random_argument(0xDEC0DE, 10_000)
    _assert_conformant(argument, tmp_path)
    # Partial load stays partial at scale.
    store_dir = tmp_path / "first.store"
    partial = StoredArgument(store_dir)
    fragment = partial.subtree("n9999")
    assert canonical_argument(fragment) == \
        canonical_argument(argument.subtree("n9999"))
    full = StoredArgument(store_dir)
    full.load()
    assert len(partial.shards_read) < len(full.shards_read)
