"""Tests for repro.paper — the one-call reproduction verification."""

from __future__ import annotations

from repro.paper import ClaimCheck, verify_reproduction


class TestVerifyReproduction:
    def test_everything_reproduces(self):
        report = verify_reproduction()
        assert report.ok, report.render()

    def test_report_covers_all_artefact_families(self):
        report = verify_reproduction()
        text = report.render()
        assert "Table I" in text
        assert "Figure 1" in text
        assert "Greenwell" in text
        assert "Haley" in text
        assert "§IV" in text and "§V.A" in text and "§VI.D" in text
        assert "ALL CLAIMS REPRODUCE" in text

    def test_no_failures(self):
        assert verify_reproduction().failures() == []

    def test_claim_check_failure_rendering(self):
        bad = ClaimCheck("example", 1, 2)
        assert not bad.ok
        assert "FAIL" in str(bad)

    def test_deterministic(self):
        first = verify_reproduction(seed=2014)
        second = verify_reproduction(seed=2014)
        assert first.render() == second.render()

    def test_stable_across_seeds(self):
        # The reproduction does not depend on the corpus seed.
        for seed in (1, 99):
            assert verify_reproduction(seed=seed).ok
