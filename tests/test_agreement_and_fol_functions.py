"""Tests for the agreement study (§V.C) and FOL function symbols."""

from __future__ import annotations

import pytest

from repro.experiments.agreement_study import (
    AgreementStudyConfig,
    run_agreement_study,
)
from repro.logic.fol import Signature, SortError
from repro.logic.terms import Const, Func, Var

_SMALL = AgreementStudyConfig(reviewer_pairs=4, hazards=8,
                              formal_instances=8)


class TestAgreementStudy:
    def test_deterministic(self):
        assert run_agreement_study(_SMALL).rows() == \
            run_agreement_study(_SMALL).rows()

    def test_greenwell_observation_reproduces(self):
        # Each reviewer overlooks fallacies the other flags.
        result = run_agreement_study(_SMALL)
        informal_row = result.rows()[0]
        assert informal_row["mean_only_one_reviewer"] > 0
        assert informal_row["mean_jaccard"] < 1.0

    def test_formal_union_miss_rate_is_the_missing_number(self):
        result = run_agreement_study(_SMALL)
        assert 0.0 < result.formal_union_miss_rate < 1.0

    def test_pair_outcome_bookkeeping(self):
        result = run_agreement_study(_SMALL)
        for outcome in result.informal_pairs:
            assert outcome.flagged_a == outcome.both + outcome.only_a
            assert outcome.flagged_b == outcome.both + outcome.only_b
            assert 0.0 <= outcome.jaccard <= 1.0

    def test_render(self):
        text = run_agreement_study(_SMALL).render()
        assert "union miss rate" in text
        assert "informal (Greenwell kinds)" in text


class TestFolFunctions:
    @pytest.fixture
    def signature(self) -> Signature:
        sig = Signature()
        task = sig.declare_sort("Task")
        duration = sig.declare_sort("Duration")
        sig.declare_constant("t1", task)
        sig.declare_constant("ms250", duration)
        sig.declare_function("wcet", [task], duration)
        sig.declare_predicate("bounded_by", task, duration)
        return sig

    def test_function_sort_inference(self, signature):
        term = Func("wcet", (Const("t1"),))
        assert signature.sort_of_term(term, {}).name == "Duration"

    def test_function_argument_sort_checked(self, signature):
        term = Func("wcet", (Const("ms250"),))  # Duration, not Task
        with pytest.raises(SortError):
            signature.sort_of_term(term, {})

    def test_function_arity_checked(self, signature):
        term = Func("wcet", (Const("t1"), Const("t1")))
        with pytest.raises(SortError):
            signature.sort_of_term(term, {})

    def test_undeclared_function_rejected(self, signature):
        term = Func("bcet", (Const("t1"),))
        with pytest.raises(SortError):
            signature.sort_of_term(term, {})

    def test_function_in_predicate(self, signature):
        from repro.logic.terms import Atom

        atom = Atom(
            "bounded_by",
            (Const("t1"), Func("wcet", (Const("t1"),))),
        )
        # bounded_by expects (Task, Duration); wcet(t1) has sort
        # Duration, so the atom type-checks.
        signature.check_atom(atom, {})

    def test_variable_in_function(self, signature):
        task = next(s for s in signature.sorts if s.name == "Task")
        term = Func("wcet", (Var("T"),))
        assert signature.sort_of_term(
            term, {Var("T"): task}
        ).name == "Duration"
