"""Tests for the extension modules: tableaux, modular GSN, confidence,
survey characterisation."""

from __future__ import annotations

import pytest

from repro.core.builder import ArgumentBuilder
from repro.core.case import AssuranceCase
from repro.core.confidence import (
    claim_confidence,
    confidence_network,
    confidence_report,
    evidence_prior,
)
from repro.core.evidence import EvidenceItem, EvidenceKind
from repro.core.modules import (
    ModuleRegistry,
    check_away_references,
    composition_order,
    system_argument,
)
from repro.core.argument import ArgumentError
from repro.logic.propositional import parse
from repro.logic.tableau import (
    build_tableau,
    independent_validity_check,
    tableau_entails,
    tableau_satisfiable,
    tableau_valid,
)
from repro.survey.characterise import (
    GROUPS,
    characterise,
    group_report,
    maturity_summary,
    render_characterisation,
)
from repro.survey.records import SELECTED_PAPERS


class TestTableau:
    def test_satisfiable(self):
        assert tableau_satisfiable(parse("p & (q | ~p)"))

    def test_unsatisfiable(self):
        assert not tableau_satisfiable(parse("p & ~p"))
        assert not tableau_satisfiable(parse("(p -> q) & p & ~q"))

    def test_validity(self):
        assert tableau_valid(parse("p | ~p"))
        assert tableau_valid(parse("((p -> q) -> p) -> p"))  # Peirce
        assert not tableau_valid(parse("p -> q"))

    def test_entailment(self):
        assert tableau_entails([parse("p -> q"), parse("p")],
                               parse("q"))
        assert not tableau_entails([parse("p -> q"), parse("q")],
                                   parse("p"))

    def test_iff_handling(self):
        assert tableau_valid(parse("(p <-> q) -> ((p -> q) & (q -> p))"))
        assert not tableau_satisfiable(parse("(p <-> q) & p & ~q"))

    def test_negated_conjunction_branches(self):
        assert tableau_satisfiable(parse("~(p & q)"))
        assert tableau_valid(parse("~(p & q) <-> (~p | ~q)"))

    def test_constants(self):
        assert tableau_valid(parse("true"))
        assert not tableau_satisfiable(parse("false"))
        assert tableau_satisfiable(parse("~false"))

    def test_open_branch_counting(self):
        node = build_tableau([parse("p | q")])
        assert node.open_branches() == 2
        assert node.size() >= 3

    def test_diverse_checkers_agree(self):
        suite = [
            "p -> p",
            "p -> q",
            "(p & q) -> p",
            "(p | q) & (~p | r) -> (q | r)",
            "~(p <-> ~p)",
            "false -> p",
        ]
        for text in suite:
            # Raises CheckerDisagreement on any mismatch.
            independent_validity_check(parse(text))

    def test_agrees_with_truth_tables(self):
        from repro.logic.propositional import is_tautology

        suite = [
            "(p -> q) <-> (~q -> ~p)",
            "p | (q & r)",
            "~p & (p | q) -> q",
            "(p -> q) -> q",
        ]
        for text in suite:
            formula = parse(text)
            assert tableau_valid(formula) == is_tautology(formula), text


def _module(name: str, public_text: str, away: tuple[str, str] | None
            = None):
    builder = ArgumentBuilder(name)
    top = builder.goal(public_text)
    strategy = builder.strategy(f"Argument over {name} functions",
                                under=top)
    goal = builder.goal(
        f"The {name} self-test completes successfully", under=strategy
    )
    builder.solution(f"{name} verification record", under=goal)
    if away:
        away_module, away_text = away
        builder.away_goal(away_text, module=away_module, under=strategy)
    return builder.build()


class TestModules:
    def test_register_and_lookup(self):
        registry = ModuleRegistry()
        registry.register("power", _module("power", "Power is safe"))
        assert "power" in registry
        assert registry.public_goals("power") == {"G1"}

    def test_duplicate_rejected(self):
        registry = ModuleRegistry()
        registry.register("power", _module("power", "Power is safe"))
        with pytest.raises(ArgumentError):
            registry.register("power", _module("power", "Power is safe"))

    def test_good_away_reference(self):
        registry = ModuleRegistry()
        registry.register("power", _module("power", "Power is safe"))
        registry.register(
            "system",
            _module("system", "The system is safe",
                    away=("power", "Power is safe")),
        )
        assert check_away_references(registry) == []

    def test_unknown_module_flagged(self):
        registry = ModuleRegistry()
        registry.register(
            "system",
            _module("system", "The system is safe",
                    away=("ghost", "Ghost is safe")),
        )
        problems = check_away_references(registry)
        assert problems and problems[0].kind == "unknown-module"

    def test_stale_text_flagged(self):
        registry = ModuleRegistry()
        registry.register("power", _module("power", "Power is safe"))
        registry.register(
            "system",
            _module("system", "The system is safe",
                    away=("power", "Power is perfectly safe")),  # stale
        )
        problems = check_away_references(registry)
        assert problems and problems[0].kind == "stale-text"

    def test_non_public_goal_flagged(self):
        registry = ModuleRegistry()
        power = _module("power", "Power is safe")
        registry.register("power", power, public_goals=["G1"])
        registry.register(
            "system",
            _module("system", "The system is safe",
                    away=("power", "The power self-test completes successfully")),
        )
        problems = check_away_references(registry)
        assert problems and problems[0].kind == "not-public"

    def test_composition_order(self):
        registry = ModuleRegistry()
        registry.register("power", _module("power", "Power is safe"))
        registry.register(
            "system",
            _module("system", "The system is safe",
                    away=("power", "Power is safe")),
        )
        order = composition_order(registry)
        assert order.index("power") < order.index("system")

    def test_cycle_detected(self):
        registry = ModuleRegistry()
        registry.register(
            "a", _module("a", "A is safe", away=("b", "B is safe"))
        )
        registry.register(
            "b", _module("b", "B is safe", away=("a", "A is safe"))
        )
        with pytest.raises(ArgumentError, match="cycle"):
            composition_order(registry)

    def test_system_argument_splices(self):
        registry = ModuleRegistry()
        registry.register("power", _module("power", "Power is safe"))
        registry.register(
            "system",
            _module("system", "The system is safe",
                    away=("power", "Power is safe")),
        )
        spliced = system_argument(registry, "system")
        assert "system::G1" in spliced
        assert "power::G1" in spliced
        # The away goal is replaced by a cross-module link.
        strategy_children = spliced.supporters("system::S1")
        assert any(
            child.identifier == "power::G1"
            for child in strategy_children
        )

    def test_spliced_argument_supports_impact_tracing(self):
        from repro.core.impact import claims_affected_by

        registry = ModuleRegistry()
        registry.register("power", _module("power", "Power is safe"))
        registry.register(
            "system",
            _module("system", "The system is safe",
                    away=("power", "Power is safe")),
        )
        spliced = system_argument(registry, "system")
        affected = claims_affected_by(spliced, "power::Sn1")
        names = {n.identifier for n in affected}
        # Impact crosses the module boundary up to the system root.
        assert "system::G1" in names


class TestConfidence:
    def _case(self, coverage_primary=0.95, redundant=False):
        builder = ArgumentBuilder("conf")
        top = builder.goal("The system is acceptably safe")
        strategy = builder.strategy("Argument over hazards", under=top)
        goal = builder.goal("Hazard H1 is acceptably managed",
                            under=strategy)
        builder.solution("Primary analysis", under=goal)
        if redundant:
            builder.solution("Independent field review", under=goal)
        case = AssuranceCase("conf", builder.build())
        case.add_evidence(
            EvidenceItem("e1", EvidenceKind.FAULT_TREE_ANALYSIS,
                         "fta", coverage=coverage_primary),
            cited_by="Sn1",
        )
        if redundant:
            case.add_evidence(
                EvidenceItem("e2", EvidenceKind.FIELD_DATA, "field",
                             coverage=0.8),
                cited_by="Sn2",
            )
        return case

    def test_prior_scales_with_coverage(self):
        low = EvidenceItem("a", EvidenceKind.TESTING, "x", coverage=0.2)
        high = EvidenceItem("b", EvidenceKind.TESTING, "x", coverage=1.0)
        assert evidence_prior(high) > evidence_prior(low)

    def test_untrusted_tool_discounts(self):
        trusted = EvidenceItem("a", EvidenceKind.TESTING, "x")
        untrusted = EvidenceItem("b", EvidenceKind.TESTING, "x",
                                 trusted_tool=False)
        assert evidence_prior(trusted) > evidence_prior(untrusted)

    def test_network_structure(self):
        case = self._case()
        model = confidence_network(case.argument)
        assert "G1" in model.claim_variables
        assert "Sn1" in model.evidence_variables

    def test_confidence_increases_with_accepted_evidence(self):
        case = self._case()
        unknown = claim_confidence(case, "G1")
        accepted = claim_confidence(case, "G1", {"Sn1": True})
        rejected = claim_confidence(case, "G1", {"Sn1": False})
        assert rejected < unknown < accepted

    def test_redundant_evidence_raises_confidence(self):
        single = claim_confidence(self._case(), "G2", {"Sn1": True})
        double = claim_confidence(
            self._case(redundant=True), "G2",
            {"Sn1": True, "Sn2": True},
        )
        assert double >= single

    def test_report_covers_all_claims(self):
        case = self._case()
        report = confidence_report(case)
        assert set(report) == {"G1", "S1", "G2"}
        assert all(0 <= v <= 1 for v in report.values())

    def test_undeveloped_claim_has_leak_confidence(self):
        builder = ArgumentBuilder("leak")
        builder.goal("The system is acceptably safe", undeveloped=True)
        case = AssuranceCase("leak", builder.build())
        assert claim_confidence(case, "G1") <= 0.05

    def test_root_confidence_below_leaf(self):
        # Inference steps carry residual doubt: confidence attenuates
        # up the chain.
        case = self._case()
        report = confidence_report(case)
        assert report["G1"] <= report["G2"] + 1e-9


class TestCharacterisation:
    def test_groups_cover_all_papers(self):
        grouped = [
            paper for group in GROUPS for paper in SELECTED_PAPERS
            if paper.group == group
        ]
        assert len(grouped) == len(SELECTED_PAPERS)

    def test_group_report_members(self):
        haley_group = group_report("K")
        assert len(haley_group) == 4  # [15], [16], [24], [25]

    def test_unknown_group_rejected(self):
        with pytest.raises(KeyError):
            group_report("Z")

    def test_characterise_fields(self):
        rushby = next(
            p for p in SELECTED_PAPERS if p.key == "rushby2010"
        )
        entry = characterise(rushby)
        assert "deductive logic" in entry.rq1_formalises
        assert entry.rq2_relationship == \
            "augments the informal argument"
        assert entry.rq4_claims_benefit
        assert not entry.rq4_evidence
        assert entry.rq5_drawbacks

    def test_maturity_summary_matches_section_vii(self):
        summary = maturity_summary()
        assert summary.total == 20
        assert summary.with_substantial_evidence == 0
        assert summary.conclusion_holds
        assert summary.claiming_benefit >= 10

    def test_render_mentions_every_reference(self):
        text = render_characterisation()
        for paper in SELECTED_PAPERS:
            assert f"[{paper.reference}]" in text
        assert "verdict holds" in text
