"""The persisted search-index sidecar and the ranked search built on it.

The sidecar is *derived data* under a strict contract: candidates it
returns are verified, never trusted (trigram supersets are checked
against the actual text before they become exact answers); a damaged
or stale sidecar degrades to the streaming scan rather than changing
any result; ``save(journal=True)`` must leave the sidecar file
untouched and patch readers forward in O(delta); and ``compact()``
rebuilds it byte-identically to a clean indexed save.  This module
pins each clause, plus the tokenizer edges every layer shares and the
query-biased summaries hits render through.
"""

from __future__ import annotations

import pytest

from conftest import store_files
from repro.core.argument import Argument, LinkKind
from repro.core.nodes import Node, NodeType
from repro.core.query import (
    ArgumentIndex,
    select,
    text_contains,
)
from repro.core.search import (
    SearchHit,
    query_biased_summary,
    search,
    tokenize,
    trigrams,
)
from repro.store import CaseCorpus, StoredArgument
from repro.store.search import (
    SEARCH_INDEX_KEY,
    StoreSearchIndex,
    load_search_index,
)

pytestmark = [pytest.mark.store, pytest.mark.search]


def _argument(name: str = "search-subject") -> Argument:
    argument = Argument(name)
    argument.add_nodes([
        Node("G1", NodeType.GOAL,
             "The pressure relief system is acceptably safe"),
        Node("S1", NodeType.STRATEGY,
             "Argue over each overpressure hazard"),
        Node("G2", NodeType.GOAL,
             "Overpressure hazard H1 is mitigated by the relief valve"),
        Node("Sn1", NodeType.SOLUTION,
             "Weld inspection report WR-7: no porosity found"),
        Node("C1", NodeType.CONTEXT,
             "Plant operating pressure never exceeds 11 bar"),
    ])
    argument.add_links([
        ("G1", "S1", LinkKind.SUPPORTED_BY),
        ("S1", "G2", LinkKind.SUPPORTED_BY),
        ("G2", "Sn1", LinkKind.SUPPORTED_BY),
        ("G1", "C1", LinkKind.IN_CONTEXT_OF),
    ])
    return argument


@pytest.fixture
def indexed_dir(tmp_path):
    directory = tmp_path / "indexed.store"
    _argument().save(directory, search_index=True)
    return directory


# -- the shared tokenizer -----------------------------------------------------


class TestTokenizer:
    def test_tokens_are_lowercased_alphanumeric_runs(self):
        assert tokenize("Weld report WR-7: no porosity!") == \
            ["weld", "report", "wr", "7", "no", "porosity"]

    def test_empty_and_punctuation_only(self):
        assert tokenize("") == []
        assert tokenize("—…·!?") == []

    def test_repeated_tokens_kept_in_order(self):
        assert tokenize("risk, risk, RISK") == ["risk"] * 3

    def test_trigrams_cover_token_boundaries(self):
        grams = trigrams("Relief Valve")
        assert "f v" in grams, "space-spanning grams must be indexed"
        assert "rel" in grams and "lve" in grams

    def test_trigrams_of_short_text_are_empty(self):
        assert trigrams("ab") == set()
        assert trigrams("abc") == {"abc"}


# -- candidates are verified, never trusted -----------------------------------


class TestVerifiedCandidates:
    def test_live_trigram_superset_is_not_the_answer(self):
        # Both texts carry every trigram of "abcd"; only one contains it.
        argument = Argument("grams")
        argument.add_nodes([
            Node("near", NodeType.GOAL, "abc then xbcd appear apart"),
            Node("true", NodeType.GOAL, "the xabcdx token is here"),
        ])
        index = ArgumentIndex(argument)
        index.text_postings()
        superset = index.grams_superset("abcd")
        assert superset == {"near", "true"}, "superset holds both"
        assert index.contains_candidates("abcd") == {"true"}, (
            "candidates must be verified against the actual text"
        )
        assert [n.identifier for n in
                select(argument, text_contains("abcd"))] == ["true"]

    def test_stored_sidecar_candidates_are_verified(self, tmp_path):
        argument = Argument("grams-stored")
        argument.add_nodes([
            Node("near", NodeType.GOAL, "abc then xbcd appear apart"),
            Node("true", NodeType.GOAL, "the xabcdx token is here"),
        ])
        directory = tmp_path / "grams.store"
        argument.save(directory, search_index=True)
        stored = StoredArgument(directory)
        index = load_search_index(stored)
        assert index is not None
        assert index.grams_superset("abcd") == {"near", "true"}
        assert index.contains_candidates("abcd") == {"true"}
        assert [n.identifier for n in
                select(stored, text_contains("abcd"))] == ["true"]

    def test_short_needles_fall_back_to_exact_scans(self, indexed_dir):
        # Under 3 chars no trigram exists; both layers must still answer.
        stored = StoredArgument(indexed_dir)
        assert load_search_index(stored).contains_candidates("h1") is None
        argument = _argument()
        for subject in (argument, stored):
            got = sorted(
                n.identifier
                for n in select(subject, text_contains("h1"))
            )
            naive = sorted(
                n.identifier
                for n in argument.nodes
                if "h1" in n.text.lower()
            )
            assert got == naive

    def test_case_sensitive_plan_keeps_the_predicate(self, indexed_dir):
        stored = StoredArgument(indexed_dir)
        # "overpressure" occurs folded in S1 and capitalised in G2.
        folded = {n.identifier
                  for n in select(stored, text_contains("overpressure"))}
        assert folded == {"S1", "G2"}
        sensitive = {
            n.identifier
            for n in select(stored, text_contains("Overpressure", True))
        }
        assert sensitive == {"G2"}


# -- O(delta): journal appends never rewrite the sidecar ----------------------


class TestJournalPatching:
    def test_append_patches_in_memory_without_touching_the_file(
        self, tmp_path
    ):
        argument = Argument("delta")
        argument.add_nodes(
            Node(f"G{i}", NodeType.GOAL, f"Claim {i} holds under load")
            for i in range(300)
        )
        directory = tmp_path / "delta.store"
        argument.save(directory, search_index=True)
        stored = StoredArgument(directory)
        index = load_search_index(stored)
        assert index is not None
        assert index.nodes_indexed == 0, "a clean load indexes nothing"
        sidecar_name = stored.manifest[SEARCH_INDEX_KEY]
        sidecar_bytes = (directory / sidecar_name).read_bytes()

        argument.add_node(
            Node("G_new", NodeType.GOAL, "A journaled spillway claim")
        )
        argument.add_link("G0", "G_new", LinkKind.SUPPORTED_BY)
        argument.replace_node(
            argument.node("G1").with_text("Claim 1 holds when amended")
        )
        argument.save(directory, journal=True)

        stored.refresh()
        patched = load_search_index(stored)
        assert patched is index, "the cached index is patched, not rebuilt"
        # 1 added + 1 replaced (old out, new in counts per node touched);
        # nowhere near the 300 nodes a rebuild would re-index.
        assert 0 < patched.nodes_indexed <= 4
        assert stored.manifest[SEARCH_INDEX_KEY] == sidecar_name, (
            "a journal append must not re-seal the sidecar"
        )
        assert (directory / sidecar_name).read_bytes() == sidecar_bytes
        assert {n.identifier
                for n in select(stored, text_contains("spillway"))} == \
            {"G_new"}
        assert {n.identifier
                for n in select(stored, text_contains("amended"))} == {"G1"}
        rebuilt = StoreSearchIndex.build(StoredArgument(directory))
        assert patched.canonical() == rebuilt.canonical()


# -- degradation and recovery -------------------------------------------------


class TestTornSidecar:
    def _truncate_sidecar(self, directory) -> str:
        name = StoredArgument(directory).manifest[SEARCH_INDEX_KEY]
        data = (directory / name).read_bytes()
        (directory / name).write_bytes(data[: len(data) // 2])
        return name

    def test_damaged_sidecar_degrades_to_the_scan(self, indexed_dir):
        self._truncate_sidecar(indexed_dir)
        stored = StoredArgument(indexed_dir)
        assert load_search_index(stored) is None, (
            "a torn sidecar must not load"
        )
        # Planner queries and ranked search still answer, off the scan.
        assert {n.identifier
                for n in select(stored, text_contains("porosity"))} == \
            {"Sn1"}
        hits = search(stored, "porosity", neighbourhood=0)
        assert [hit.identifier for hit in hits] == ["Sn1"]

    def test_missing_sidecar_file_degrades_to_the_scan(self, indexed_dir):
        name = StoredArgument(indexed_dir).manifest[SEARCH_INDEX_KEY]
        (indexed_dir / name).unlink()
        stored = StoredArgument(indexed_dir)
        assert load_search_index(stored) is None
        assert {n.identifier
                for n in select(stored, text_contains("relief valve"))} == \
            {"G2"}

    def test_rebuild_repairs_a_torn_sidecar(self, indexed_dir):
        old = self._truncate_sidecar(indexed_dir)
        stored = StoredArgument(indexed_dir)
        stored.build_search_index()
        fresh = stored.manifest[SEARCH_INDEX_KEY]
        assert fresh != old or (indexed_dir / fresh).exists()
        index = load_search_index(stored)
        assert index is not None
        assert index.contains_candidates("porosity") == {"Sn1"}


# -- compaction rebuilds byte-identically -------------------------------------


class TestCompaction:
    def test_compacted_store_equals_a_clean_indexed_save(self, tmp_path):
        argument = _argument("compact-me")
        journaled = tmp_path / "journaled.store"
        argument.save(journaled, search_index=True)
        argument.add_node(
            Node("Sn2", NodeType.SOLUTION, "Hydrostatic test record HT-2")
        )
        argument.add_link("G2", "Sn2", LinkKind.SUPPORTED_BY)
        argument.save(journaled, journal=True)
        handle = StoredArgument(journaled)
        patched = load_search_index(handle)
        handle.compact()
        handle.gc()
        reference = tmp_path / "reference.store"
        argument.save(reference, search_index=True)
        assert store_files(journaled) == store_files(reference), (
            "compaction must rebuild the sidecar byte-identically"
        )
        rebuilt = load_search_index(StoredArgument(journaled))
        assert rebuilt is not None
        assert rebuilt.canonical() == patched.canonical()


# -- ranked search and summaries ----------------------------------------------


class TestRankedSearch:
    def test_hits_rank_rare_terms_first_and_mark_snippets(self):
        argument = _argument()
        hits = search(argument, "porosity inspection hazard")
        assert hits and hits[0].identifier == "Sn1", (
            "the node holding the rare terms must lead"
        )
        assert "[porosity]" in hits[0].snippet
        assert hits[0].matched_terms == ("inspection", "porosity")

    def test_neighbourhood_renders_supporting_children(self):
        argument = _argument()
        (hit,) = [h for h in search(argument, "overpressure hazard")
                  if h.identifier == "S1"]
        assert hit.neighbourhood, "S1's supporting goal must render"
        assert hit.neighbourhood[0].startswith("G2:")
        assert "└─" in hit.summary

    def test_limit_and_empty_query(self):
        argument = _argument()
        assert search(argument, "") == []
        assert search(argument, "—") == []
        assert len(search(argument, "pressure hazard", limit=1)) == 1

    def test_live_stored_and_scan_agree(self, indexed_dir):
        argument = _argument()
        live = search(argument, "relief valve inspection")
        stored = search(StoredArgument(indexed_dir),
                        "relief valve inspection")
        assert [(h.identifier, h.score) for h in live] == \
            [(h.identifier, h.score) for h in stored]
        self_scan_dir = indexed_dir
        name = StoredArgument(self_scan_dir).manifest[SEARCH_INDEX_KEY]
        (self_scan_dir / name).unlink()
        scanned = search(StoredArgument(self_scan_dir),
                         "relief valve inspection")
        assert [(h.identifier, h.score) for h in live] == \
            [(h.identifier, h.score) for h in scanned]

    def test_query_biased_summary_windows_to_the_dense_cluster(self):
        filler = "routine clause " * 30
        text = (filler + "the relief valve withstood overpressure "
                + filler)
        snippet = query_biased_summary(
            text, ("relief", "overpressure"), width=80
        )
        assert "[relief]" in snippet and "[overpressure]" in snippet
        assert snippet.startswith("…") and snippet.endswith("…")

    def test_query_biased_summary_head_when_no_terms_occur(self):
        text = "word " * 100
        snippet = query_biased_summary(text, ("absent",), width=40)
        assert snippet.endswith("…") and len(snippet) <= 40

    def test_search_rejects_unknown_subjects(self):
        with pytest.raises(TypeError):
            search(object(), "anything")


# -- the corpus ---------------------------------------------------------------


class TestCaseCorpus:
    @pytest.fixture
    def corpus_root(self, tmp_path):
        for index, name in enumerate(("alpha", "beta", "gamma")):
            argument = _argument(f"case-{name}")
            argument.add_node(Node(
                "Sn_extra", NodeType.SOLUTION,
                f"Audit {index}: actuator recall closed" if index == 1
                else f"Audit {index}: routine review",
            ))
            argument.add_link("G1", "Sn_extra", LinkKind.SUPPORTED_BY)
            argument.save(
                tmp_path / f"{name}.store",
                search_index=(name != "beta"),
            )
        (tmp_path / "not-a-store").mkdir()
        return tmp_path

    def test_store_names_skip_non_stores(self, corpus_root):
        corpus = CaseCorpus(corpus_root)
        assert corpus.store_names() == [
            "alpha.store", "beta.store", "gamma.store",
        ]
        assert len(corpus) == 3

    def test_search_labels_hits_with_their_store(self, corpus_root):
        corpus = CaseCorpus(corpus_root)
        hits = search(corpus, "actuator recall")
        assert hits and hits[0].store == "beta.store"
        assert hits[0].identifier == "Sn_extra"
        assert hits[0].summary.startswith("beta.store:Sn_extra")
        common = corpus.search("porosity", limit=100)
        assert {hit.store for hit in common} == {
            "alpha.store", "beta.store", "gamma.store",
        }

    def test_ensure_indexed_builds_missing_sidecars(self, corpus_root):
        corpus = CaseCorpus(corpus_root)
        assert load_search_index(corpus.open("beta.store")) is None
        corpus.ensure_indexed()
        corpus.refresh()
        for name in corpus.store_names():
            assert load_search_index(corpus.open(name)) is not None
