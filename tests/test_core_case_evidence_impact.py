"""Tests for repro.core.evidence, case, and impact."""

from __future__ import annotations

import pytest

from repro.core.case import (
    AssuranceCase,
    LifecycleEventKind,
    SafetyCriterion,
)
from repro.core.evidence import (
    EvidenceError,
    EvidenceItem,
    EvidenceKind,
    EvidenceRegistry,
)
from repro.core.impact import (
    assumption_scope,
    claims_affected_by,
    evidence_impact,
)


class TestEvidenceItem:
    def test_coverage_bounds(self):
        with pytest.raises(EvidenceError):
            EvidenceItem("e1", EvidenceKind.TESTING, "tests", coverage=1.5)
        with pytest.raises(EvidenceError):
            EvidenceItem("e1", EvidenceKind.TESTING, "tests", coverage=-0.1)

    def test_negative_age_rejected(self):
        with pytest.raises(EvidenceError):
            EvidenceItem("e1", EvidenceKind.TESTING, "tests", age_days=-1)

    def test_appropriateness_wrong_reasons_example(self):
        # §V.B: wcet claim from unit test results.
        item = EvidenceItem("e1", EvidenceKind.TESTING, "unit tests",
                            topic="functional")
        assert not item.appropriate_for("timing")
        timing = EvidenceItem(
            "e2", EvidenceKind.TIMING_ANALYSIS, "WCET analysis"
        )
        assert timing.appropriate_for("timing")

    def test_unknown_topic_defaults_true(self):
        item = EvidenceItem("e1", EvidenceKind.TESTING, "tests")
        assert item.appropriate_for("novel_topic")


class TestRegistry:
    def test_duplicate_rejected(self):
        registry = EvidenceRegistry()
        registry.add(EvidenceItem("e1", EvidenceKind.TESTING, "tests"))
        with pytest.raises(EvidenceError):
            registry.add(EvidenceItem("e1", EvidenceKind.TESTING, "more"))

    def test_unknown_lookup_rejected(self):
        with pytest.raises(EvidenceError):
            EvidenceRegistry().get("ghost")

    def test_of_kind_and_stale_and_weakest(self):
        registry = EvidenceRegistry([
            EvidenceItem("e1", EvidenceKind.TESTING, "a", coverage=0.5,
                         age_days=400),
            EvidenceItem("e2", EvidenceKind.FIELD_DATA, "b", coverage=0.9),
            EvidenceItem("e3", EvidenceKind.TESTING, "c", coverage=0.7),
        ])
        assert len(registry.of_kind(EvidenceKind.TESTING)) == 2
        assert [i.identifier for i in registry.stale(365)] == ["e1"]
        assert [i.identifier for i in registry.weakest(2)] == ["e1", "e3"]


class TestAssuranceCase:
    def test_created_event_logged(self, sample_case):
        kinds = [e.kind for e in sample_case.history]
        assert kinds[0] is LifecycleEventKind.CREATED

    def test_cite_requires_solution_node(self, sample_case):
        sample_case.evidence.add(EvidenceItem(
            "extra", EvidenceKind.TESTING, "extra tests"
        ))
        with pytest.raises(ValueError, match="not a solution"):
            sample_case.cite("G1", "extra")

    def test_citations_round_trip(self, sample_case):
        cited = sample_case.citations("Sn1")
        assert [i.identifier for i in cited] == ["ev1"]
        assert sample_case.citing_solutions("ev1") == ["Sn1"]

    def test_withdraw_evidence(self, sample_case):
        affected = sample_case.withdraw_evidence("ev1", "field failure")
        assert affected == ["Sn1"]
        assert sample_case.citations("Sn1") == []
        kinds = [e.kind for e in sample_case.history]
        assert LifecycleEventKind.EVIDENCE_WITHDRAWN in kinds

    def test_decision_recording(self, sample_case):
        sample_case.record_decision(
            "Accept residual risk for H2", affected=["G3"]
        )
        decisions = sample_case.decisions()
        assert len(decisions) == 1
        assert decisions[0].affected_nodes == ("G3",)

    def test_integrity_ok(self, sample_case):
        report = sample_case.integrity_report()
        assert report.ok
        assert "OK" in report.summary()

    def test_integrity_finds_uncited_and_unsupported(self, sample_case):
        sample_case.evidence.add(EvidenceItem(
            "orphan", EvidenceKind.TESTING, "never cited"
        ))
        sample_case.withdraw_evidence("ev2", "suspect")
        report = sample_case.integrity_report()
        assert not report.ok
        assert "orphan" in report.uncited_evidence
        assert "Sn2" in report.unsupported_solutions

    def test_criterion_rendering(self, sample_case):
        assert "1e-06" in str(sample_case.criterion)


class TestImpact:
    def test_claims_affected_by_solution(self, hazard_argument):
        affected = claims_affected_by(hazard_argument, "Sn1")
        names = {n.identifier for n in affected}
        assert names == {"G2", "G1"}

    def test_evidence_impact_reaches_root(self, sample_case):
        report = evidence_impact(sample_case, "ev1")
        assert report.root_reached
        assert report.breadth == 2
        assert report.affected_solutions == ("Sn1",)
        assert "2 claim(s)" in report.summary()

    def test_assumption_scope(self, hazard_argument):
        scope = assumption_scope(hazard_argument, "A1")
        names = {n.identifier for n in scope}
        # The assumption attaches to the strategy: the root inherits it,
        # and every hazard goal under the strategy is in scope.
        assert "G1" in names
        assert {"G2", "G3", "G4", "G5"} <= names

    def test_assumption_scope_requires_assumption(self, hazard_argument):
        with pytest.raises(ValueError, match="not an"):
            assumption_scope(hazard_argument, "C1")
