"""Tests for repro.core.hicases and repro.core.toulmin."""

from __future__ import annotations

import pytest

from repro.core.hicases import FoldError, HiView, auto_fold_to_depth
from repro.core.toulmin import (
    Rebuttal,
    Statement,
    ToulminArgument,
    haley_inner_argument,
    render_toulmin,
    toulmin_to_gsn,
)
from repro.core.wellformed import is_well_formed


class TestHiView:
    def test_initial_view_shows_everything(self, hazard_argument):
        view = HiView(hazard_argument)
        assert view.visible_size() == len(hazard_argument)

    def test_fold_hides_subtree(self, hazard_argument):
        view = HiView(hazard_argument)
        view.fold("S1")
        hidden = view.hidden_nodes()
        assert "G2" in hidden and "Sn1" in hidden
        assert "G1" not in hidden and "S1" not in hidden

    def test_folded_node_marked_undeveloped_in_view(self, hazard_argument):
        view = HiView(hazard_argument)
        view.fold("S1")
        visible = view.visible_argument()
        assert visible.node("S1").undeveloped

    def test_unfold_restores(self, hazard_argument):
        view = HiView(hazard_argument)
        view.fold("S1")
        view.unfold("S1")
        assert view.visible_size() == len(hazard_argument)

    def test_toggle(self, hazard_argument):
        view = HiView(hazard_argument)
        assert view.toggle("S1") is True
        assert view.toggle("S1") is False

    def test_cannot_fold_solution(self, hazard_argument):
        view = HiView(hazard_argument)
        with pytest.raises(FoldError):
            view.fold("Sn1")

    def test_cannot_fold_leaf_goal(self):
        from repro.core.builder import ArgumentBuilder

        builder = ArgumentBuilder()
        builder.goal("The system is safe", undeveloped=True)
        view = HiView(builder.build())
        assert not view.can_fold("G1")

    def test_context_on_folded_node_stays(self, hazard_argument):
        view = HiView(hazard_argument)
        view.fold("G2")
        visible = view.visible_argument()
        # The fold hides Sn1 but G2 itself and sibling context remain.
        assert "G2" in visible
        assert "Sn1" not in visible

    def test_view_argument_still_well_formed(self, hazard_argument):
        view = HiView(hazard_argument)
        view.fold("S1")
        assert is_well_formed(view.visible_argument())

    def test_auto_fold_depth(self, hazard_argument):
        view = auto_fold_to_depth(hazard_argument, 2)
        # Depth 2 folds the strategy, hiding all hazard goals.
        assert view.visible_size() < len(hazard_argument)
        assert "G2" in view.hidden_nodes()

    def test_auto_fold_invalid_depth(self, hazard_argument):
        with pytest.raises(FoldError):
            auto_fold_to_depth(hazard_argument, 0)


class TestToulmin:
    def test_haley_inner_argument_structure(self):
        # §III.K: grounds G2, nested warrant (G3 warranted by G4, thus
        # C1), claim P2, rebuttal R1.
        argument = haley_inner_argument()
        assert argument.claim.label == "P2"
        assert argument.grounds[0].label == "G2"
        nested = argument.warrants[0]
        assert isinstance(nested, ToulminArgument)
        assert nested.claim.label == "C1"
        assert argument.rebuttals[0].statement.label == "R1"
        assert argument.depth() == 2

    def test_render_matches_haley_layout(self):
        text = render_toulmin(haley_inner_argument())
        assert 'given grounds G2: "Valid credentials are given only to '\
            'HR members"' in text
        assert "warranted by (" in text
        assert 'thus claim C1: "Credential administration is correct"'\
            in text
        assert 'rebutted by R1: "HR member is dishonest"' in text

    def test_all_statements(self):
        statements = haley_inner_argument().all_statements()
        labels = [s.label for s in statements]
        assert set(labels) == {"G2", "G3", "G4", "C1", "R1", "P2"}

    def test_qualifier_rendering(self):
        argument = ToulminArgument(
            claim=Statement("C", "the device is safe"),
            grounds=(Statement("G", "tests passed"),),
            qualifier="presumably",
        )
        assert "thus, presumably, claim" in render_toulmin(argument)

    def test_to_gsn_conversion(self):
        gsn = toulmin_to_gsn(haley_inner_argument())
        # Claim and nested claim become goals; rebuttal becomes context.
        texts = [n.text for n in gsn.nodes]
        assert any("HR credentials provided" in t for t in texts)
        assert any("Rebuttal condition" in t for t in texts)
        assert gsn.roots()

    def test_to_gsn_depth_tracks_nesting(self):
        gsn = toulmin_to_gsn(haley_inner_argument())
        assert gsn.depth() >= 4
