"""Property-based tests (hypothesis) for the core invariants.

These pin down the DESIGN.md §4 invariants: transform equivalences,
solver agreement, unification laws, proof soundness, round-tripping,
pattern typing, and detector completeness/blindness.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.core.argument import Argument, LinkKind
from repro.core.nodes import Node, NodeType
from repro.logic import propositional as prop
from repro.logic.entailment import entails
from repro.logic.natural_deduction import ProofBuilder, Rule, check_proof
from repro.logic.sat import solve_formula
from repro.logic.sequent import is_valid_sequent
from repro.logic.terms import Const, Func, Term, Var
from repro.logic.unification import unify
from repro.notation.gsn_text import parse as gsn_parse, serialise
from repro.notation.json_io import argument_from_json, argument_to_json

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

_ATOM_NAMES = ("p", "q", "r", "s")


def formulas(max_depth: int = 4) -> st.SearchStrategy[prop.Formula]:
    atoms = st.sampled_from(
        [prop.Atom(name) for name in _ATOM_NAMES]
        + [prop.TRUE, prop.FALSE]
    )

    def extend(children: st.SearchStrategy) -> st.SearchStrategy:
        return st.one_of(
            st.builds(prop.Not, children),
            st.builds(prop.And, children, children),
            st.builds(prop.Or, children, children),
            st.builds(prop.Implies, children, children),
            st.builds(prop.Iff, children, children),
        )

    return st.recursive(atoms, extend, max_leaves=12)


def terms(max_depth: int = 3) -> st.SearchStrategy[Term]:
    leaves = st.one_of(
        st.sampled_from([Var("X"), Var("Y"), Var("Z")]),
        st.sampled_from([Const("a"), Const("b"), Const("c")]),
    )

    def extend(children: st.SearchStrategy) -> st.SearchStrategy:
        return st.builds(
            lambda functor, args: Func(functor, tuple(args)),
            st.sampled_from(["f", "g"]),
            st.lists(children, min_size=1, max_size=3),
        )

    return st.recursive(leaves, extend, max_leaves=8)


@st.composite
def arguments(draw) -> Argument:
    """Random small well-shaped arguments (tree of goals + leaves)."""
    argument = Argument(name=draw(st.sampled_from(["a1", "case-x", "N"])))
    goal_count = draw(st.integers(min_value=1, max_value=6))
    goals = []
    for index in range(goal_count):
        identifier = f"G{index}"
        argument.add_node(Node(
            identifier, NodeType.GOAL,
            f"Claim number {index} is acceptably handled",
            undeveloped=draw(st.booleans()),
        ))
        if goals:
            parent = draw(st.sampled_from(goals))
            argument.add_link(parent, identifier, LinkKind.SUPPORTED_BY)
        goals.append(identifier)
    solution_count = draw(st.integers(min_value=0, max_value=4))
    for index in range(solution_count):
        identifier = f"Sn{index}"
        argument.add_node(Node(
            identifier, NodeType.SOLUTION, f"Evidence record {index}"
        ))
        parent = draw(st.sampled_from(goals))
        argument.add_link(parent, identifier, LinkKind.SUPPORTED_BY)
    context_count = draw(st.integers(min_value=0, max_value=3))
    for index in range(context_count):
        identifier = f"C{index}"
        argument.add_node(Node(
            identifier, NodeType.CONTEXT, f"Context item {index}"
        ))
        parent = draw(st.sampled_from(goals))
        argument.add_link(parent, identifier, LinkKind.IN_CONTEXT_OF)
    return argument


# ---------------------------------------------------------------------------
# Propositional invariants
# ---------------------------------------------------------------------------


@given(formulas())
@settings(max_examples=150, deadline=None)
def test_nnf_preserves_equivalence(formula):
    assert prop.equivalent(formula, prop.to_nnf(formula))


@given(formulas())
@settings(max_examples=100, deadline=None)
def test_cnf_preserves_equivalence(formula):
    assert prop.equivalent(formula, prop.to_cnf(formula))


@given(formulas())
@settings(max_examples=100, deadline=None)
def test_nnf_has_no_arrows_and_negates_only_atoms(formula):
    nnf = prop.to_nnf(formula)

    def check(node) -> None:
        assert not isinstance(node, (prop.Implies, prop.Iff))
        if isinstance(node, prop.Not):
            assert isinstance(node.operand, prop.Atom)
        elif isinstance(node, (prop.And, prop.Or)):
            check(node.left)
            check(node.right)

    check(nnf)


@given(formulas())
@settings(max_examples=150, deadline=None)
def test_dpll_agrees_with_truth_tables(formula):
    assert solve_formula(formula).satisfiable == \
        prop.is_satisfiable_bruteforce(formula)


@given(formulas())
@settings(max_examples=100, deadline=None)
def test_sequent_prover_agrees_with_truth_tables(formula):
    assert is_valid_sequent([], [formula]) == prop.is_tautology(formula)


@given(formulas())
@settings(max_examples=100, deadline=None)
def test_diverse_checkers_never_disagree(formula):
    # Tableaux, SAT, and LK must concur on validity for every formula;
    # independent_validity_check raises CheckerDisagreement otherwise.
    from repro.logic.tableau import independent_validity_check

    verdict = independent_validity_check(formula)
    assert verdict == prop.is_tautology(formula)


@given(formulas())
@settings(max_examples=60, deadline=None)
def test_parser_round_trips_rendered_formulas(formula):
    assert prop.equivalent(prop.parse(str(formula)), formula)


# ---------------------------------------------------------------------------
# Unification invariants
# ---------------------------------------------------------------------------


@given(terms(), terms())
@settings(max_examples=200, deadline=None)
def test_unifier_equalises_terms(left, right):
    unifier = unify(left, right)
    if unifier is not None:
        assert unifier.apply(left) == unifier.apply(right)


@given(terms())
@settings(max_examples=100, deadline=None)
def test_unify_with_self_is_trivial(term):
    unifier = unify(term, term)
    assert unifier is not None
    assert len(unifier) == 0


@given(terms(), terms())
@settings(max_examples=100, deadline=None)
def test_unification_symmetric_on_success(left, right):
    # MGUs agree up to variable renaming, so assert both directions
    # succeed/fail together and each equalises the pair.
    forward = unify(left, right)
    backward = unify(right, left)
    assert (forward is None) == (backward is None)
    if forward is not None:
        assert forward.apply(left) == forward.apply(right)
        assert backward.apply(left) == backward.apply(right)


# ---------------------------------------------------------------------------
# Natural-deduction soundness
# ---------------------------------------------------------------------------


@given(
    st.lists(
        st.sampled_from(_ATOM_NAMES), min_size=2, max_size=4, unique=True
    ),
    st.randoms(use_true_random=False),
)
@settings(max_examples=60, deadline=None)
def test_random_mp_chains_check_and_are_sound(names, rnd):
    builder = ProofBuilder()
    start = builder.premise(prop.Atom(names[0]))
    previous_atom = prop.Atom(names[0])
    lines = [start]
    for name in names[1:]:
        atom = prop.Atom(name)
        implication = builder.premise(prop.Implies(previous_atom, atom))
        lines.append(builder.detach(implication, lines[-1]))
        previous_atom = atom
    proof = builder.build()
    assert check_proof(proof)
    assert entails(proof.premises, proof.conclusion)


# ---------------------------------------------------------------------------
# Notation round-trips
# ---------------------------------------------------------------------------


@given(arguments())
@settings(max_examples=80, deadline=None)
def test_gsn_text_round_trip(argument):
    assert gsn_parse(serialise(argument)) == argument


@given(arguments())
@settings(max_examples=80, deadline=None)
def test_json_round_trip(argument):
    assert argument_from_json(argument_to_json(argument)) == argument


@given(arguments())
@settings(max_examples=50, deadline=None)
def test_cae_round_trip(argument):
    from repro.notation.cae import cae_to_gsn, gsn_to_cae

    assert cae_to_gsn(gsn_to_cae(argument)) == argument


# ---------------------------------------------------------------------------
# Pattern typing
# ---------------------------------------------------------------------------


@given(
    st.text(
        alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd")),
        min_size=1, max_size=12,
    ),
    st.lists(
        st.text(
            alphabet=st.characters(whitelist_categories=("Lu", "Ll")),
            min_size=1, max_size=8,
        ),
        min_size=1, max_size=5,
    ),
    st.integers(min_value=0, max_value=100),
)
@settings(max_examples=60, deadline=None)
def test_well_typed_pattern_instantiations_are_well_formed(
    system, hazards, risk
):
    from repro.core.patterns import Binding, hazard_avoidance_pattern
    from repro.core.wellformed import is_well_formed

    pattern = hazard_avoidance_pattern()
    argument = pattern.instantiate(Binding.of(
        system=f"System {system}", hazards=list(hazards),
        residual_risk=risk,
    ))
    assert is_well_formed(argument)
    assert len(argument) == 4 + 2 * len(hazards)


@given(st.integers(min_value=101, max_value=10_000))
@settings(max_examples=30, deadline=None)
def test_out_of_range_risk_always_rejected(risk):
    import pytest

    from repro.core.patterns import (
        Binding,
        InstantiationError,
        hazard_avoidance_pattern,
    )

    pattern = hazard_avoidance_pattern()
    with pytest.raises(InstantiationError):
        pattern.instantiate(Binding.of(
            system="S", hazards=["h"], residual_risk=risk
        ))


# ---------------------------------------------------------------------------
# Detector completeness and blindness
# ---------------------------------------------------------------------------


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=40, deadline=None)
def test_detector_complete_on_injected_formal_fallacies(seed):
    from repro.fallacies.formal_detector import detect
    from repro.fallacies.injector import inject_formal
    from repro.fallacies.taxonomy import FormalFallacy

    rng = random.Random(seed)
    propositional = (
        FormalFallacy.BEGGING_THE_QUESTION,
        FormalFallacy.INCOMPATIBLE_PREMISES,
        FormalFallacy.PREMISE_CONCLUSION_CONTRADICTION,
        FormalFallacy.DENYING_THE_ANTECEDENT,
        FormalFallacy.AFFIRMING_THE_CONSEQUENT,
    )
    fallacy = rng.choice(propositional)
    seeded = inject_formal(rng, fallacy, size=rng.randrange(2, 5))
    assert fallacy in detect(seeded.argument).fallacies


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=40, deadline=None)
def test_detector_validates_clean_arguments(seed):
    from repro.fallacies.formal_detector import Verdict, detect
    from repro.fallacies.injector import make_formal_argument

    rng = random.Random(seed)
    argument = make_formal_argument(rng, valid=True,
                                    size=rng.randrange(2, 6))
    assert detect(argument).verdict is Verdict.VALID


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_injected_informal_fallacies_stay_well_formed(seed):
    from repro.core.builder import ArgumentBuilder
    from repro.core.wellformed import is_well_formed
    from repro.fallacies.injector import inject_informal
    from repro.fallacies.taxonomy import GREENWELL_FINDINGS

    rng = random.Random(seed)
    builder = ArgumentBuilder("prop")
    top = builder.goal("The system is acceptably safe")
    strategy = builder.strategy("Argument over hazards", under=top)
    for index in range(4):
        goal = builder.goal(
            f"Hazard H{index} is acceptably managed", under=strategy
        )
        builder.solution(f"Analysis record {index}", under=goal)
    base = builder.build()
    fallacy = rng.choice(list(GREENWELL_FINDINGS))
    mutated, record = inject_informal(base, fallacy, rng)
    assert record.fallacy is fallacy
    # Structural syntax checking finds nothing to object to: the defect
    # is semantic (§IV.C).  (Texts may trip the propositionality
    # heuristic, which is a text-shape rule, so exclude that rule.)
    from repro.core.wellformed import GSN_STANDARD_RULES, RuleSet

    structural = RuleSet(
        "structural-only",
        tuple(
            rule for rule in GSN_STANDARD_RULES.rules
            if rule.name != "goal-not-proposition"
        ),
    )
    assert structural.is_well_formed(mutated)


# ---------------------------------------------------------------------------
# Prolog vs resolution agreement on ground Datalog
# ---------------------------------------------------------------------------


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["p", "q", "r"]),
            st.sampled_from(["a", "b", "c"]),
        ),
        min_size=1, max_size=6, unique=True,
    ),
    st.lists(
        st.tuples(
            st.sampled_from(["p", "q", "r"]),
            st.sampled_from(["p", "q", "r"]),
        ),
        min_size=0, max_size=4, unique=True,
    ),
    st.sampled_from(["p", "q", "r"]),
    st.sampled_from(["a", "b", "c"]),
)
@settings(max_examples=60, deadline=None)
def test_prolog_and_resolution_agree_on_datalog(
    facts, rules, query_pred, query_const
):
    """SLD resolution and refutation resolution decide the same ground
    queries over non-recursive Datalog programs."""
    from repro.logic.prolog import Program, parse_clause
    from repro.logic.resolution import FolClause, FolLiteral, prove
    from repro.logic.terms import parse_atom

    # Keep the rule set acyclic: only allow head < body alphabetically,
    # so SLD terminates without hitting depth limits.
    rules = [(head, body) for head, body in rules if head < body]

    program = Program()
    clauses = []
    for predicate, constant in facts:
        program.add(parse_clause(f"{predicate}({constant})."))
        clauses.append(FolClause.of(
            FolLiteral(parse_atom(f"{predicate}({constant})"))
        ))
    for head, body in rules:
        program.add(parse_clause(f"{head}(X) :- {body}(X)."))
        clauses.append(FolClause.of(
            FolLiteral(parse_atom(f"{body}(X)"), False),
            FolLiteral(parse_atom(f"{head}(X)")),
        ))

    query = f"{query_pred}({query_const})"
    sld_answer = program.provable(query)
    resolution_answer = prove(
        clauses, parse_atom(query), max_clauses=500
    ).found
    assert sld_answer == resolution_answer


# ---------------------------------------------------------------------------
# LTL cross-checks
# ---------------------------------------------------------------------------


@st.composite
def ltl_formulas(draw):
    from repro.logic import ltl

    atoms = st.sampled_from([ltl.Prop("a"), ltl.Prop("b"), ltl.Prop("c")])

    def extend(children):
        return st.one_of(
            st.builds(ltl.LNot, children),
            st.builds(ltl.LAnd, children, children),
            st.builds(ltl.LOr, children, children),
            st.builds(ltl.LImplies, children, children),
            st.builds(ltl.Next, children),
            st.builds(ltl.Always, children),
            st.builds(ltl.Eventually, children),
            st.builds(ltl.Until, children, children),
            st.builds(ltl.Release, children, children),
        )

    return draw(st.recursive(atoms, extend, max_leaves=8))


@st.composite
def ltl_traces(draw):
    length = draw(st.integers(min_value=1, max_value=6))
    return [
        frozenset(draw(st.sets(st.sampled_from(["a", "b", "c"]))))
        for _ in range(length)
    ]


@given(ltl_formulas(), ltl_traces())
@settings(max_examples=200, deadline=None)
def test_ltl_evaluators_agree(formula, trace):
    from repro.logic.ltl import holds, holds_dp

    assert holds(formula, trace) == holds_dp(formula, trace)


# ---------------------------------------------------------------------------
# BBN variable elimination vs enumeration
# ---------------------------------------------------------------------------


@given(
    st.lists(
        st.floats(min_value=0.05, max_value=0.95), min_size=3, max_size=3
    ),
    st.floats(min_value=0.05, max_value=0.95),
    st.booleans(),
)
@settings(max_examples=50, deadline=None)
def test_bbn_elimination_matches_enumeration(priors, strength, evidence):
    import pytest

    from repro.logic.bbn import BayesNet, Cpt, noisy_or_cpt

    net = BayesNet()
    net.add_prior("a", priors[0])
    net.add_prior("b", priors[1])
    net.add(noisy_or_cpt("c", ("a", "b"), (strength, priors[2])))
    net.add(Cpt("d", ("c",), {(True,): 0.9, (False,): 0.1}))
    query = net.query("a", {"d": evidence})
    brute = net.query_bruteforce("a", {"d": evidence})
    assert query == pytest.approx(brute)
