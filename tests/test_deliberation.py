"""Tests for repro.formalise.deliberation (Tolchinsky et al., §III.O)."""

from __future__ import annotations

import pytest

from repro.formalise.deliberation import (
    ArgumentationFramework,
    DefeasibleArgument,
    DeliberationDialogue,
    DialogueError,
    Label,
    transplant_scenario,
)


def _argument(name: str, claim: str = "c(a)") -> DefeasibleArgument:
    return DefeasibleArgument.of(name, claim)


class TestFramework:
    def test_unattacked_argument_is_in(self):
        framework = ArgumentationFramework()
        framework.add(_argument("a"))
        assert framework.is_acceptable("a")
        assert framework.grounded_extension() == {"a"}

    def test_simple_attack_makes_target_out(self):
        framework = ArgumentationFramework()
        framework.add(_argument("a"))
        framework.add(_argument("b"))
        framework.attack("b", "a")
        labelling = framework.grounded_labelling()
        assert labelling["b"] is Label.IN
        assert labelling["a"] is Label.OUT

    def test_reinstatement(self):
        # c attacks b attacks a: c IN, b OUT, a reinstated IN.
        framework = ArgumentationFramework()
        for name in ("a", "b", "c"):
            framework.add(_argument(name))
        framework.attack("b", "a")
        framework.attack("c", "b")
        labelling = framework.grounded_labelling()
        assert labelling["c"] is Label.IN
        assert labelling["b"] is Label.OUT
        assert labelling["a"] is Label.IN

    def test_mutual_attack_is_undecided(self):
        framework = ArgumentationFramework()
        framework.add(_argument("a"))
        framework.add(_argument("b"))
        framework.attack("a", "b")
        framework.attack("b", "a")
        labelling = framework.grounded_labelling()
        assert labelling["a"] is Label.UNDEC
        assert labelling["b"] is Label.UNDEC
        assert framework.grounded_extension() == frozenset()

    def test_self_attack_is_undecided(self):
        framework = ArgumentationFramework()
        framework.add(_argument("a"))
        framework.attack("a", "a")
        assert framework.grounded_labelling()["a"] is Label.UNDEC

    def test_odd_cycle_does_not_poison_separate_chain(self):
        framework = ArgumentationFramework()
        for name in ("a", "b", "x"):
            framework.add(_argument(name))
        framework.attack("a", "b")
        framework.attack("b", "a")
        # x is independent of the cycle.
        assert framework.is_acceptable("x")

    def test_duplicate_argument_rejected(self):
        framework = ArgumentationFramework()
        framework.add(_argument("a"))
        with pytest.raises(ValueError):
            framework.add(_argument("a"))

    def test_attack_requires_known_arguments(self):
        framework = ArgumentationFramework()
        framework.add(_argument("a"))
        with pytest.raises(ValueError):
            framework.attack("a", "ghost")


class TestDialogue:
    def test_initial_proposal_endorsed(self):
        dialogue = DeliberationDialogue("transplant(o1, r)")
        assert dialogue.decision()

    def test_unanswered_contraindication_blocks(self):
        dialogue = DeliberationDialogue("transplant(o1, r)")
        dialogue.play(
            "physician",
            DefeasibleArgument.of(
                "contra", "unsafe(transplant(o1, r))",
                "donor_history(o1, hepatitis_b)",
            ),
            against="proposal",
        )
        assert not dialogue.decision()
        assert dialogue.open_challenges() == ["contra"]

    def test_defeated_contraindication_restores(self):
        dialogue = transplant_scenario()
        assert dialogue.decision()
        assert dialogue.open_challenges() == []

    def test_move_must_target_argument_in_play(self):
        dialogue = DeliberationDialogue("transplant(o1, r)")
        with pytest.raises(DialogueError):
            dialogue.play("physician", _argument("x"), against="ghost")

    def test_replayed_argument_rejected(self):
        dialogue = transplant_scenario()
        with pytest.raises(DialogueError):
            dialogue.play(
                "physician",
                DefeasibleArgument.of("contra_hbv", "unsafe(x)"),
                against="proposal",
            )

    def test_undecided_conflict_is_conservative(self):
        # Two mutually attacking expert opinions: the action is NOT
        # endorsed while the conflict stands — safety-conservative.
        dialogue = DeliberationDialogue("administer(r, penicillin)")
        dialogue.play(
            "allergist",
            DefeasibleArgument.of(
                "allergy", "unsafe(administer(r, penicillin))",
                "recorded_allergy(r, penicillin)",
            ),
            against="proposal",
        )
        dialogue.play(
            "registrar",
            DefeasibleArgument.of(
                "stale_record", "unreliable(allergy)",
                "record_age(r, years20)",
            ),
            against="allergy",
        )
        dialogue.play(
            "allergist",
            DefeasibleArgument.of(
                "recent_reaction", "unreliable(stale_record)",
                "observed_rash(r, last_admission)",
            ),
            against="stale_record",
        )
        # Chain: recent_reaction IN -> stale_record OUT -> allergy IN
        # -> proposal OUT.
        assert not dialogue.decision()

    def test_transcript_renders(self):
        dialogue = transplant_scenario()
        text = dialogue.transcript()
        assert "proposes" in text
        assert "ENDORSED" in text
        assert "contra_hbv: out" in text

    def test_moves_recorded_in_order(self):
        dialogue = transplant_scenario()
        participants = [move.participant for move in dialogue.moves]
        assert participants == ["proponent", "physician", "specialist"]


class TestScenario:
    def test_paper_style_predicates(self):
        dialogue = transplant_scenario()
        claims = [str(a.claim) for a in dialogue.framework.arguments]
        assert "transplant(o1, r)" in claims
        assert any("unsafe" in c for c in claims)
