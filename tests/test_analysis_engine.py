"""The scoped streaming rule engine: mode equivalence and incrementality.

Pins the tentpole contracts of :mod:`repro.core.analysis`:

* one rule set, four execution modes — serial, full (hydrate first),
  streaming over a saved store, and parallel across process workers —
  all producing the *identical* violation list;
* streaming and parallel checks never hydrate the store (asserted via
  ``StoredArgument.hydrated``);
* the :class:`~repro.core.analysis.IncrementalChecker` equals a fresh
  full check after arbitrary mutations, including retypes (which flip
  link-rule verdicts), cycle creation/destruction (the delta-aware
  acyclic hook), batches, and delta-log rotation;
* legacy whole-argument :class:`~repro.core.wellformed.Rule` callables
  keep working through the global-scope adapter, with hydration as the
  fallback rather than the default.
"""

from __future__ import annotations

import pytest

from repro.core.analysis import (
    IncrementalChecker,
    Scope,
    ScopedRule,
    Violation,
    ensure_argument,
    is_stored_argument,
    per_link,
    per_node,
    run_rules,
)
from repro.core.argument import Argument, LinkKind
from repro.core.nodes import Node, NodeType
from repro.core.wellformed import (
    DENNEY_PAI_RULES,
    GSN_STANDARD_RULES,
    Rule,
    RuleSet,
    check,
)
from repro.store import StoredArgument

pytestmark = pytest.mark.analysis


@pytest.fixture
def ill_formed() -> Argument:
    """Violates link rules, node rules, and the single-root global rule."""
    argument = Argument("engine-fixture")
    argument.add_nodes([
        Node("G1", NodeType.GOAL, "The system is acceptably safe"),
        Node("G2", NodeType.GOAL, "Formal proof that Quat4 holds"),
        Node("G3", NodeType.GOAL, "A second root claim stands alone"),
        Node("S1", NodeType.STRATEGY, "Argument over nothing at all"),
        Node("Sn1", NodeType.SOLUTION, "Test report TR-1"),
        Node("Sn2", NodeType.SOLUTION, "Test report TR-2"),
        Node("C1", NodeType.CONTEXT, "Operating context"),
    ])
    argument.add_links([
        ("G1", "G2", LinkKind.SUPPORTED_BY),
        ("G1", "S1", LinkKind.SUPPORTED_BY),
        ("G2", "Sn1", LinkKind.SUPPORTED_BY),
        ("Sn1", "Sn2", LinkKind.SUPPORTED_BY),   # solution cites support
        ("G1", "Sn2", LinkKind.IN_CONTEXT_OF),   # context link to solution
        ("G2", "C1", LinkKind.IN_CONTEXT_OF),
    ])
    return argument


@pytest.fixture
def stored(ill_formed, tmp_path) -> StoredArgument:
    store_dir = tmp_path / "engine.store"
    ill_formed.save(store_dir)
    return StoredArgument(store_dir)


class TestModeEquivalence:
    def test_all_modes_identical(self, ill_formed, tmp_path):
        store_dir = tmp_path / "modes.store"
        ill_formed.save(store_dir)
        serial = check(ill_formed)
        assert serial, "fixture must actually violate rules"

        streaming_store = StoredArgument(store_dir)
        streaming = check(streaming_store, mode="streaming")
        full_store = StoredArgument(store_dir)
        full = check(full_store, mode="full")
        parallel_store = StoredArgument(store_dir)
        parallel = check(parallel_store, mode="parallel", workers=2)
        parallel_live = check(ill_formed, mode="parallel", workers=2)

        assert serial == streaming == full == parallel == parallel_live

    def test_streaming_reads_shards_without_hydrating(self, stored):
        check(stored, mode="streaming")
        assert stored.shards_read, "streaming must verify real shards"
        assert not stored.hydrated

    def test_parallel_does_not_hydrate(self, stored):
        check(stored, mode="parallel", workers=2)
        assert not stored.hydrated

    def test_full_mode_hydrates(self, stored):
        check(stored, mode="full")
        assert stored.hydrated

    def test_auto_mode_streams_stored_arguments(self, stored):
        check(stored)
        assert not stored.hydrated

    def test_single_worker_degrades_to_streaming(self, stored, ill_formed):
        degraded = check(stored, mode="parallel", workers=1)
        assert degraded == check(ill_formed)
        assert not stored.hydrated

    def test_denney_pai_rules_across_modes(self, ill_formed, stored):
        assert check(stored, DENNEY_PAI_RULES) == \
            check(ill_formed, DENNEY_PAI_RULES)

    def test_cycle_rendering_identical_across_modes(self, tmp_path):
        cyclic = Argument("cyclic")
        cyclic.add_nodes([
            Node("G1", NodeType.GOAL, "Claim one holds"),
            Node("G2", NodeType.GOAL, "Claim two holds"),
            Node("G3", NodeType.GOAL, "Claim three holds"),
        ])
        cyclic.add_links([
            ("G1", "G2", LinkKind.SUPPORTED_BY),
            ("G2", "G3", LinkKind.SUPPORTED_BY),
            ("G3", "G1", LinkKind.SUPPORTED_BY),
        ])
        cyclic.save(tmp_path / "cyclic.store")
        serial = check(cyclic)
        assert any(v.rule == "acyclic" for v in serial)
        streamed = check(StoredArgument(tmp_path / "cyclic.store"))
        parallel = check(
            StoredArgument(tmp_path / "cyclic.store"),
            mode="parallel", workers=2,
        )
        assert serial == streamed == parallel

    def test_unknown_mode_rejected(self, ill_formed):
        with pytest.raises(ValueError, match="unknown analysis mode"):
            run_rules(ill_formed, GSN_STANDARD_RULES.rules, mode="warp")

    def test_non_argument_subject_rejected(self, sample_case):
        with pytest.raises(TypeError, match="got AssuranceCase"):
            run_rules(sample_case, GSN_STANDARD_RULES.rules)


class TestSharedStoreHelpers:
    def test_is_stored_argument(self, stored, ill_formed, sample_case):
        assert is_stored_argument(stored)
        assert not is_stored_argument(ill_formed)
        # AssuranceCase has a load() too; it must not be mis-dispatched.
        assert not is_stored_argument(sample_case)

    def test_ensure_argument_hydration_fallback(self, stored, ill_formed):
        assert ensure_argument(ill_formed) is ill_formed
        hydrated = ensure_argument(stored)
        assert hydrated == ill_formed
        assert stored.hydrated
        with pytest.raises(TypeError, match="got int"):
            ensure_argument(7)


class TestLegacyRuleAdapter:
    @staticmethod
    def _legacy_set() -> RuleSet:
        def no_empty_texts(argument: Argument) -> list[Violation]:
            return [
                Violation("short-text", node.identifier,
                          "node text is suspiciously short")
                for node in argument.nodes
                if len(node.text) < 10
            ]

        return RuleSet("legacy", (
            Rule("short-text", "texts are not trivially short",
                 no_empty_texts),
        ))

    def test_legacy_rules_adapt_and_run(self, ill_formed):
        legacy = self._legacy_set()
        assert all(rule.scope is Scope.GLOBAL for rule in legacy.rules)
        assert legacy.check(ill_formed) == []
        ill_formed.add_node(Node("T1", NodeType.CONTEXT, "Tiny text"))
        assert [v.rule for v in legacy.check(ill_formed)] == ["short-text"]

    def test_legacy_rules_hydrate_stored_arguments_once(self, stored):
        legacy = RuleSet("legacy-pair", (
            Rule("a", "first legacy rule", lambda argument: []),
            Rule("b", "second legacy rule", lambda argument: []),
        ))
        assert legacy.check(stored) == []
        # Hydration is the fallback (and happens at most once, however
        # many legacy rules ask).
        assert stored.hydrated

    def test_mixed_scoped_and_legacy_rule_set(self, ill_formed):
        mixed = RuleSet("mixed", GSN_STANDARD_RULES.rules[:3] + (
            Rule("always-one", "fires once per argument",
                 lambda argument: [Violation(
                     "always-one", argument.name, "fired")]),
        ))
        found = mixed.check(ill_formed)
        assert [v.rule for v in found][-1] == "always-one"


def _flag_away_goals(node, ctx):
    return [Violation("no-away", node.identifier, "away goal present")]


def _flag_context_links(link, ctx):
    return [Violation("no-context-links", str(link), "context link")]


class TestDispatchFilters:
    def test_node_type_filter_limits_invocations(self):
        argument = Argument("filtered")
        argument.add_nodes([
            Node("G1", NodeType.GOAL, "The claim holds", undeveloped=True),
            Node("AG1", NodeType.AWAY_GOAL, "Remote claim holds",
                 module="m1"),
        ])
        rule = per_node("no-away", "flags away goals", _flag_away_goals,
                        node_types=(NodeType.AWAY_GOAL,))
        found = run_rules(argument, (rule,))
        assert [v.subject for v in found] == ["AG1"]

    def test_link_kind_filter_limits_invocations(self, ill_formed):
        rule = per_link("no-context-links", "flags context links",
                        _flag_context_links, kind=LinkKind.IN_CONTEXT_OF)
        found = run_rules(ill_formed, (rule,))
        assert len(found) == 2
        assert all("~>" in v.subject for v in found)

    def test_filters_hold_in_parallel_mode(self, ill_formed):
        rules = (
            per_node("no-away", "flags away goals", _flag_away_goals,
                     node_types=(NodeType.AWAY_GOAL,)),
            per_link("no-context-links", "flags context links",
                     _flag_context_links, kind=LinkKind.IN_CONTEXT_OF),
        )
        assert run_rules(ill_formed, rules, mode="parallel", workers=2) \
            == run_rules(ill_formed, rules)


class TestIncrementalChecker:
    def test_requires_a_live_argument(self, stored):
        with pytest.raises(TypeError, match="needs a live Argument"):
            IncrementalChecker(stored, GSN_STANDARD_RULES.rules)

    def test_tracks_arbitrary_mutations(self, ill_formed):
        checker = GSN_STANDARD_RULES.incremental(ill_formed)
        assert checker.check() == check(ill_formed)

        ill_formed.add_node(Node(
            "G9", NodeType.GOAL, "Another claim stands unsupported"
        ))
        assert checker.check() == check(ill_formed)

        ill_formed.add_link("G3", "G9", LinkKind.SUPPORTED_BY)
        assert checker.check() == check(ill_formed)

        ill_formed.remove_node("G9")
        assert checker.check() == check(ill_formed)

        with ill_formed.batch():
            ill_formed.add_node(Node(
                "S2", NodeType.STRATEGY, "Argument over spare parts"
            ))
            ill_formed.add_link("G3", "S2", LinkKind.SUPPORTED_BY)
            ill_formed.remove_link(
                next(link for link in ill_formed.links
                     if link.source == "Sn1")
            )
        assert checker.check() == check(ill_formed)

    def test_retype_flips_link_rule_verdicts(self, ill_formed):
        checker = GSN_STANDARD_RULES.incremental(ill_formed)
        checker.check()
        # Sn2 (a solution receiving a context link) becomes a context
        # node: the in-context-of-target violation must disappear and
        # the solution-cites-support violation must appear/vanish
        # accordingly.
        ill_formed.replace_node(Node(
            "Sn2", NodeType.CONTEXT, "Repurposed as context"
        ))
        assert checker.check() == check(ill_formed)
        ill_formed.replace_node(Node(
            "Sn2", NodeType.SOLUTION, "Back to being a solution"
        ))
        assert checker.check() == check(ill_formed)

    def test_cycle_appears_and_disappears(self):
        argument = Argument("cycle-delta")
        argument.add_nodes([
            Node("G1", NodeType.GOAL, "Claim one holds"),
            Node("G2", NodeType.GOAL, "Claim two holds"),
        ])
        argument.add_link("G1", "G2", LinkKind.SUPPORTED_BY)
        checker = GSN_STANDARD_RULES.incremental(argument)
        assert not any(v.rule == "acyclic" for v in checker.check())

        closing = argument.add_link("G2", "G1", LinkKind.SUPPORTED_BY)
        found = checker.check()
        assert any(v.rule == "acyclic" for v in found)
        assert found == check(argument)

        argument.remove_link(closing)
        cleaned = checker.check()
        assert not any(v.rule == "acyclic" for v in cleaned)
        assert cleaned == check(argument)

    def test_unchanged_argument_reuses_caches(self, ill_formed):
        checker = GSN_STANDARD_RULES.incremental(ill_formed)
        first = checker.check()
        assert checker.check() == first

    def test_log_rotation_forces_full_rebuild(self):
        class TinyLogArgument(Argument):
            MUTATION_LOG_LIMIT = 4

        argument = TinyLogArgument("tiny")
        argument.add_node(Node(
            "G1", NodeType.GOAL, "The top claim holds", undeveloped=True
        ))
        checker = GSN_STANDARD_RULES.incremental(argument)
        checker.check()
        for index in range(2, 20):  # far beyond the bounded log
            argument.add_node(Node(
                f"G{index}", NodeType.GOAL, f"Claim {index} holds",
                undeveloped=True,
            ))
        assert argument.delta_since(0) is None
        assert checker.check() == check(argument)
