"""Tests for repro.core.wellformed and repro.core.builder."""

from __future__ import annotations

import pytest

from repro.core.argument import Argument, LinkKind
from repro.core.builder import ArgumentBuilder, BuildError
from repro.core.nodes import Node, NodeType
from repro.core.wellformed import (
    DENNEY_PAI_RULES,
    GSN_STANDARD_RULES,
    check,
    is_well_formed,
)


class TestStandardRules:
    def test_well_formed_fixture(self, hazard_argument):
        assert is_well_formed(hazard_argument)

    def test_supported_by_cannot_target_context(self):
        argument = Argument()
        argument.add_node(Node("G1", NodeType.GOAL, "The system is safe"))
        argument.add_node(Node("C1", NodeType.CONTEXT, "Urban rail"))
        argument.add_link("G1", "C1", LinkKind.SUPPORTED_BY)
        rules = {v.rule for v in check(argument)}
        assert "supported-by-target" in rules

    def test_solution_cannot_cite_support(self):
        argument = Argument()
        argument.add_node(Node("G1", NodeType.GOAL, "The system is safe"))
        argument.add_node(Node("Sn1", NodeType.SOLUTION, "Test report"))
        argument.add_node(Node("G2", NodeType.GOAL, "A claim is made"))
        argument.supported_by("G1", "Sn1")
        argument.supported_by("Sn1", "G2")
        rules = {v.rule for v in check(argument)}
        assert "supported-by-source" in rules
        assert "solution-leaf" in rules

    def test_in_context_of_must_target_contextual(self):
        argument = Argument()
        argument.add_node(Node("G1", NodeType.GOAL, "The system is safe"))
        argument.add_node(Node("G2", NodeType.GOAL, "Another claim is made",
                               undeveloped=True))
        argument.add_link("G1", "G2", LinkKind.IN_CONTEXT_OF)
        rules = {v.rule for v in check(argument)}
        assert "in-context-of-target" in rules

    def test_away_goal_solution_context_rule(self):
        # §II.B: 'solutions cannot be in the context of an away goal'.
        argument = Argument()
        argument.add_node(Node("G1", NodeType.GOAL, "The system is safe"))
        argument.add_node(Node(
            "AG1", NodeType.AWAY_GOAL, "Power is safe", module="power"
        ))
        argument.add_node(Node("Sn1", NodeType.SOLUTION, "Report"))
        argument.supported_by("G1", "AG1")
        argument.add_link("AG1", "Sn1", LinkKind.IN_CONTEXT_OF)
        rules = {v.rule for v in check(argument)}
        assert "away-goal-solution-context" in rules

    def test_multiple_roots_flagged(self):
        argument = Argument()
        argument.add_node(Node("G1", NodeType.GOAL, "The system is safe",
                               undeveloped=True))
        argument.add_node(Node("G2", NodeType.GOAL, "The unit is safe",
                               undeveloped=True))
        rules = {v.rule for v in check(argument)}
        assert "single-root" in rules

    def test_cycle_flagged(self):
        argument = Argument()
        argument.add_node(Node("G1", NodeType.GOAL, "Claim one is true"))
        argument.add_node(Node("G2", NodeType.GOAL, "Claim two is true"))
        argument.supported_by("G1", "G2")
        argument.supported_by("G2", "G1")
        rules = {v.rule for v in check(argument)}
        assert "acyclic" in rules

    def test_unmarked_undeveloped_goal_flagged(self):
        argument = Argument()
        argument.add_node(Node("G1", NodeType.GOAL, "The system is safe"))
        rules = {v.rule for v in check(argument)}
        assert "undeveloped-unmarked" in rules

    def test_marked_undeveloped_goal_ok(self):
        argument = Argument()
        argument.add_node(Node(
            "G1", NodeType.GOAL, "The system is safe", undeveloped=True
        ))
        assert is_well_formed(argument)

    def test_empty_strategy_flagged(self):
        argument = Argument()
        argument.add_node(Node("G1", NodeType.GOAL, "The system is safe"))
        argument.add_node(Node("S1", NodeType.STRATEGY, "Argument over parts"))
        argument.supported_by("G1", "S1")
        rules = {v.rule for v in check(argument)}
        assert "strategy-unsupported" in rules

    def test_non_propositional_goal_flagged(self):
        argument = Argument()
        argument.add_node(Node(
            "G1", NodeType.GOAL,
            "Formal proof that spec holds for Fc.cpp",
            undeveloped=True,
        ))
        rules = {v.rule for v in check(argument)}
        assert "goal-not-proposition" in rules


class TestDenneyPaiVariant:
    def test_goal_to_goal_allowed_by_standard(self):
        argument = Argument()
        argument.add_node(Node("G1", NodeType.GOAL, "The system is safe"))
        argument.add_node(Node("G2", NodeType.GOAL,
                               "The subsystem is safe"))
        argument.add_node(Node("Sn1", NodeType.SOLUTION, "Report"))
        argument.supported_by("G1", "G2")
        argument.supported_by("G2", "Sn1")
        assert is_well_formed(argument, GSN_STANDARD_RULES)

    def test_goal_to_goal_rejected_by_denney_pai(self):
        # The erroneous formalisation the paper calls out (§III.I).
        argument = Argument()
        argument.add_node(Node("G1", NodeType.GOAL, "The system is safe"))
        argument.add_node(Node("G2", NodeType.GOAL,
                               "The subsystem is safe"))
        argument.add_node(Node("Sn1", NodeType.SOLUTION, "Report"))
        argument.supported_by("G1", "G2")
        argument.supported_by("G2", "Sn1")
        violations = check(argument, DENNEY_PAI_RULES)
        assert any(
            v.rule == "denney-pai-no-goal-to-goal" for v in violations
        )


class TestBuilder:
    def test_auto_identifiers(self):
        builder = ArgumentBuilder()
        first = builder.goal("The system is safe", undeveloped=True)
        assert first == "G1"

    def test_explicit_identifier(self):
        builder = ArgumentBuilder()
        name = builder.goal("The system is safe", identifier="TOP",
                            undeveloped=True)
        assert name == "TOP"

    def test_build_checks_by_default(self):
        builder = ArgumentBuilder()
        builder.goal("The system is safe")  # unsupported, unmarked
        with pytest.raises(BuildError):
            builder.build()

    def test_build_without_check(self):
        builder = ArgumentBuilder()
        builder.goal("The system is safe")
        argument = builder.build(check=False)
        assert len(argument) == 1

    def test_build_error_lists_violations(self):
        builder = ArgumentBuilder()
        builder.goal("The system is safe")
        with pytest.raises(BuildError) as info:
            builder.build()
        assert info.value.violations

    def test_away_goal(self):
        builder = ArgumentBuilder()
        top = builder.goal("The system is safe")
        builder.away_goal(
            "The power supply is safe", module="power", under=top
        )
        argument = builder.build()
        away = argument.node("AG1")
        assert away.module == "power"

    def test_full_construction(self, hazard_argument):
        # The conftest fixture exercises every builder method.
        assert is_well_formed(hazard_argument)
        assert len(hazard_argument.solutions) == 4

    def test_extra_support_link(self):
        builder = ArgumentBuilder()
        top = builder.goal("The system is safe")
        strategy = builder.strategy("Argument over modes", under=top)
        shared = builder.goal("The monitor detects faults", under=strategy)
        builder.solution("Monitor test report", under=shared)
        second = builder.strategy("Argument over the monitor", under=top)
        builder.support(second, shared)
        argument = builder.build()
        assert len(argument.parents(shared)) == 2
