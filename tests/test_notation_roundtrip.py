"""Round-trip properties for the legacy notation writers.

The persistent store's conformance harness (``test_store_roundtrip.py``)
and these tests share one equivalence oracle — ``conftest.canonical_node``
/ ``canonical_argument`` — so "round-trips" means the same thing for the
sharded store, the JSON document form, textual GSN, and CAE:

* ``json_io`` preserves everything the oracle measures, metadata in
  canonical (duplicate-collapsed, sorted) form;
* ``gsn_text`` preserves structure, texts, undeveloped marks, and away
  modules — but not metadata (``with_metadata=False``);
* ``cae`` preserves the same, for arguments whose link kinds follow the
  GSN discipline (contextual targets via InContextOf), with synthesised
  bridge nodes collapsing back exactly.

Plus the document-validation contract: malformed JSON documents fail up
front with a clear :class:`ValueError` (duplicate node ids, dangling
link endpoints, citations of unknown solutions or evidence).
"""

from __future__ import annotations

import json

import pytest

from conftest import canonical_argument, random_argument
from repro.notation.cae import cae_to_gsn, gsn_to_cae
from repro.notation.gsn_text import parse, serialise
from repro.notation.json_io import (
    argument_from_json,
    argument_to_json,
    case_from_json,
    case_to_json,
)

SEEDS = (101, 202, 303)


@pytest.mark.parametrize("seed", SEEDS)
def test_json_roundtrip_random(seed: int) -> None:
    argument = random_argument(seed, 200)
    restored = argument_from_json(argument_to_json(argument))
    assert canonical_argument(restored) == canonical_argument(argument)
    assert restored.name == argument.name
    assert restored.statistics() == argument.statistics()
    # A second trip is exact: the first canonicalised the metadata.
    again = argument_from_json(argument_to_json(restored))
    assert again == restored


@pytest.mark.parametrize("seed", SEEDS)
def test_gsn_text_roundtrip_random(seed: int) -> None:
    argument = random_argument(seed, 200)
    restored = parse(serialise(argument))
    assert canonical_argument(restored, with_metadata=False) == \
        canonical_argument(argument, with_metadata=False)
    assert restored.name == argument.name
    # Serialisation is stable once metadata (which the format cannot
    # carry) is out of the picture.
    assert serialise(restored) == serialise(argument)


@pytest.mark.parametrize("seed", SEEDS)
def test_cae_roundtrip_random(seed: int) -> None:
    # CAE's converters round-trip arguments whose link kinds follow the
    # GSN discipline; the synthesised goal-to-goal bridge nodes must
    # collapse back without trace.
    argument = random_argument(seed, 200, wellformed_kinds=True)
    case = gsn_to_cae(argument)
    restored = cae_to_gsn(case)
    assert canonical_argument(restored, with_metadata=False) == \
        canonical_argument(argument, with_metadata=False)
    assert restored.name == argument.name


@pytest.mark.parametrize("seed", SEEDS)
def test_store_and_json_agree(seed: int, tmp_path) -> None:
    """The sharded store and the document form are one schema."""
    from repro.core.argument import Argument

    argument = random_argument(seed, 150)
    argument.save(tmp_path / "arg.store")
    via_store = Argument.load(tmp_path / "arg.store")
    via_json = argument_from_json(argument_to_json(argument))
    assert via_store == via_json
    assert canonical_argument(via_store) == canonical_argument(via_json)


# -- document validation (clear errors before any graph is built) ----------


def _argument_document(nodes, links, name="doc") -> str:
    return json.dumps({
        "schema": 1, "name": name, "nodes": nodes, "links": links,
    })


class TestArgumentDocumentValidation:
    def test_duplicate_node_id_rejected(self) -> None:
        document = _argument_document(
            [
                {"id": "G1", "type": "goal", "text": "The claim holds"},
                {"id": "G1", "type": "goal", "text": "A different claim"},
            ],
            [],
        )
        with pytest.raises(ValueError, match="duplicate node id 'G1'"):
            argument_from_json(document)

    def test_dangling_link_source_rejected(self) -> None:
        document = _argument_document(
            [{"id": "G1", "type": "goal", "text": "The claim holds"}],
            [{"source": "G9", "target": "G1", "kind": "supported_by"}],
        )
        with pytest.raises(ValueError, match="dangling source.*'G9'"):
            argument_from_json(document)

    def test_dangling_link_target_rejected(self) -> None:
        document = _argument_document(
            [{"id": "G1", "type": "goal", "text": "The claim holds"}],
            [{"source": "G1", "target": "Sn9", "kind": "supported_by"}],
        )
        with pytest.raises(ValueError, match="dangling target.*'Sn9'"):
            argument_from_json(document)

class TestCaseDocumentValidation:
    def _case_document(self, *, citations, nodes=None) -> str:
        return json.dumps({
            "schema": 1,
            "name": "case",
            "criterion": None,
            "argument": {
                "schema": 1,
                "name": "arg",
                "nodes": nodes or [
                    {"id": "G1", "type": "goal", "text": "The claim holds",
                     "undeveloped": True},
                    {"id": "Sn1", "type": "solution", "text": "Test report"},
                ],
                "links": [],
            },
            "evidence": [
                {"id": "ev1", "kind": "testing", "description": "unit tests"},
            ],
            "citations": citations,
        })

    def test_duplicate_node_id_in_case_argument_rejected(self) -> None:
        nodes = [
            {"id": "G1", "type": "goal", "text": "The claim holds",
             "undeveloped": True},
            {"id": "G1", "type": "goal", "text": "Again"},
        ]
        with pytest.raises(ValueError, match="duplicate node id 'G1'"):
            case_from_json(self._case_document(citations={}, nodes=nodes))

    def test_citation_of_unknown_solution_rejected(self) -> None:
        document = self._case_document(citations={"Sn9": ["ev1"]})
        with pytest.raises(
            ValueError, match="unknown solution node 'Sn9'"
        ):
            case_from_json(document)

    def test_citation_of_unknown_evidence_rejected(self) -> None:
        document = self._case_document(citations={"Sn1": ["ev9"]})
        with pytest.raises(ValueError, match="unknown evidence 'ev9'"):
            case_from_json(document)

    def test_nested_argument_schema_still_checked(self) -> None:
        payload = json.loads(self._case_document(citations={}))
        payload["argument"]["schema"] = 99
        with pytest.raises(ValueError, match="unsupported schema version"):
            case_from_json(json.dumps(payload))

    def test_valid_case_still_parses(self, sample_case) -> None:
        restored = case_from_json(case_to_json(sample_case))
        assert restored.argument == sample_case.argument
        assert [i.identifier for i in restored.evidence] == \
            [i.identifier for i in sample_case.evidence]
