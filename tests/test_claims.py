"""The declarative claim language and the unified checking facade.

Pins the PR 10 contracts end to end: the module parser's surface
syntax and diagnostics; obligation parsing, fingerprinting, and total
deterministic discharge for all five kinds; compilation onto the
scoped rule engine (audited, picklable, registered in the import-time
gate); engine equivalence — a claim module's violations, obligation
failures included, are identical under serial, streaming, parallel,
full, and incremental execution; the selective re-proof contract
(editing one claim's evidence re-runs exactly one proof, counters
asserted); and the ``repro.check`` facade's typed ``CheckReport`` with
the legacy entry points delegating to it.
"""

from __future__ import annotations

import uuid

import pytest

import repro
from repro.checking import (
    CHECK_MODES,
    CheckReport,
    _CHECKERS,
    _MAX_INCREMENTAL_SUBJECTS,
)
from repro.claims import (
    EXEMPLAR_SOURCE,
    GSN_OBLIGATION_RULES,
    KERNEL_CLAIMS_RULES,
    OBLIGATION_KEY,
    OBLIGATION_RULE_NAME,
    ClaimCompileError,
    ClaimModule,
    ClaimSyntaxError,
    CompiledClaims,
    Obligation,
    ObligationSyntaxError,
    compile_module,
    discharge,
    exemplar_argument,
    exemplar_claims,
    exemplar_module,
    obligation_counters,
    obligation_specs,
    parse_module,
    parse_obligation,
    validate_obligation,
)
from repro.claims.lang import ForbidLink, RequireMention
from repro.core.argument import Argument, LinkKind
from repro.core.nodes import Node, NodeType
from repro.core.wellformed import GSN_STANDARD_RULES, is_well_formed
from repro.core.wellformed import check as legacy_check
from repro.store import StoredArgument

pytestmark = [pytest.mark.claims]


def unique_atom(prefix: str = "p") -> str:
    """A process-unique atom name: no cross-test obligation cache hits."""
    return f"{prefix}_{uuid.uuid4().hex[:10]}"


# -- surface syntax -----------------------------------------------------------


class TestParser:
    def test_exemplar_roundtrip(self):
        module = parse_module(EXEMPLAR_SOURCE)
        assert module.name == "braking-kernel"
        assert [c.identifier for c in module.claims] == ["G1", "G2", "G3"]
        assert module.claim("G1").supported
        assert module.claim("G3").undeveloped
        assert len(module.rules) == 6
        assert {e.identifier for e in module.evidence} == \
            {"Sn1", "Sn2", "Sn3"}
        # every obligation kind appears once in the kernel
        assert sorted(e.kind for e in module.evidence) == \
            sorted(["sat", "valid", "entails", "fol", "ltl"])

    def test_classmethod_parse_is_parse_module(self):
        assert ClaimModule.parse(EXEMPLAR_SOURCE) == \
            parse_module(EXEMPLAR_SOURCE)

    def test_comments_and_blank_lines_ignored(self):
        module = parse_module(
            "# leading comment\n\nmodule m\n"
            'claim G1 "The pump is safe"  # trailing comment\n'
        )
        assert module.claim("G1").text == "The pump is safe"

    def test_quoted_strings_keep_spaces(self):
        module = parse_module(
            'module m\nrule r require mention goal "relief valve"\n'
        )
        rule = module.rules[0]
        assert isinstance(rule, RequireMention)
        assert rule.needle == "relief valve"

    def test_forbid_link_arrow_form(self):
        module = parse_module(
            "module m\n"
            "rule leaf forbid link supported_by solution -> goal\n"
        )
        rule = module.rules[0]
        assert isinstance(rule, ForbidLink)
        assert rule.kind is LinkKind.SUPPORTED_BY
        assert rule.source_type is NodeType.SOLUTION
        assert rule.target_type is NodeType.GOAL

    def test_multiple_evidence_lines_per_identifier(self):
        module = parse_module(
            "module m\n"
            'evidence Sn1 sat "a"\nevidence Sn1 valid "a -> a"\n'
        )
        assert [e.spec for e in module.evidence] == \
            ["sat: a", "valid: a -> a"]

    @pytest.mark.parametrize("source, fragment, line", [
        ('claim G1 "text"', "module <name>' line must come first", 1),
        ("module a\nmodule b", "duplicate 'module'", 2),
        ("module m\nclaim G1", "usage: claim", 2),
        ('module m\nclaim G1 "t"\nclaim G1 "t"', "duplicate claim", 3),
        ('module m\nclaim G1 "t" floating', "unknown claim flag", 2),
        ("module m\nrule r require acyclic\nrule r require acyclic",
         "duplicate rule", 3),
        ("module m\nrule r wish acyclic", "'require' or 'forbid'", 2),
        ("module m\nrule r require supported widget",
         "unknown node type", 2),
        ("module m\nrule r forbid link held_by solution -> goal",
         "unknown link kind", 2),
        ('module m\nevidence Sn1 hope "a"', "unknown evidence kind", 2),
        ('module m\nclaim G1 "unterminated', "quotation", 2),
        ("module m\nfrobnicate everything", "expected 'module'", 2),
    ])
    def test_diagnostics_carry_line_numbers(self, source, fragment, line):
        with pytest.raises(ClaimSyntaxError) as err:
            parse_module(source)
        assert fragment in str(err.value)
        assert err.value.line == line


# -- obligations --------------------------------------------------------------


class TestObligations:
    def test_parse_normalises_kind_and_whitespace(self):
        obligation = parse_obligation("  SAT:   a &\t b  ")
        assert obligation == Obligation("sat", "a & b")
        assert obligation.spec == "sat: a & b"

    def test_parse_rejects_unknown_kind_and_empty_body(self):
        with pytest.raises(ObligationSyntaxError):
            parse_obligation("hope: a")
        with pytest.raises(ObligationSyntaxError):
            parse_obligation("sat:")
        with pytest.raises(ObligationSyntaxError):
            parse_obligation("no separator")

    def test_fingerprint_is_content_hash(self):
        one = parse_obligation("sat: a & b")
        same = parse_obligation("sat:    a  &  b")
        other = parse_obligation("sat: a & c")
        assert one.fingerprint == same.fingerprint
        assert one.fingerprint != other.fingerprint
        assert len(one.fingerprint) == 16

    @pytest.mark.parametrize("spec", [
        "sat: a & (a -> b)",
        "valid: a -> a",
        "entails: a -> b ; a |- b",
        "fol: sort S = x, y ; pred P(S) ; "
        "axiom forall v:S. P(v) |- P(x)",
        "ltl: G (a -> F b) @ a ; b ; .",
    ])
    def test_every_kind_discharges(self, spec):
        assert discharge(parse_obligation(spec)) is None

    @pytest.mark.parametrize("spec, fragment", [
        ("sat: a & ~a", "unsatisfiable"),
        ("valid: a -> b", "not valid"),
        ("entails: a |- b", "do not entail"),
        ("fol: sort S = x, y ; pred P(S) ; axiom P(x) |- P(y)",
         "axioms do not entail"),
        ("ltl: G a @ a ; .", "does not satisfy"),
    ])
    def test_every_kind_fails_deterministically(self, spec, fragment):
        first = discharge(parse_obligation(spec))
        assert first is not None and fragment in first
        assert discharge(parse_obligation(spec)) == first

    @pytest.mark.parametrize("spec", [
        "sat: a &",                        # propositional syntax error
        "entails: a -> b",                 # no turnstile
        "entails: a |- b |- c",            # two turnstiles
        "fol: pred P(S) |- P(x)",          # sort used before declaration
        "fol: sort S = x ; pred P(S) |- P(x) extra",
        "ltl: G a",                        # no trace
        "ltl: G a @",                      # empty trace
    ])
    def test_malformed_bodies_fail_totally(self, spec):
        detail = discharge(parse_obligation(spec))
        assert detail is not None and "malformed obligation" in detail
        with pytest.raises(ObligationSyntaxError):
            validate_obligation(parse_obligation(spec))

    def test_metadata_round_trip(self):
        node = Node("Sn1", NodeType.SOLUTION, "report").with_metadata(
            {OBLIGATION_KEY: ("sat: a", "valid: a -> a")}
        )
        assert obligation_specs(node) == ("sat: a", "valid: a -> a")
        assert obligation_specs(
            Node("Sn2", NodeType.SOLUTION, "bare")
        ) == ()


# -- compilation --------------------------------------------------------------


class TestCompiler:
    def test_exemplar_compiles_audited(self):
        claims = compile_module(exemplar_module(), audit=True)
        assert claims.name == "braking-kernel"
        assert [rule.name for rule in claims.rule_set.rules] == [
            "claims-present", "claim-text", "claim-supported",
            "claim-undeveloped", "evidence-present",
            "goals-cite-support", "no-undev-strategy",
            "evidence-is-leaf", "names-the-system", "no-cycles",
            "one-root", OBLIGATION_RULE_NAME,
        ]
        assert claims.bindings["Sn1"] == (
            "sat: wheel_sensor & (wheel_sensor -> brake_cmd)",
            "valid: brake_cmd -> brake_cmd",
        )
        assert len(claims.obligations()) == 5

    def test_bad_evidence_body_fails_at_compile_time(self):
        module = parse_module(
            'module m\nevidence Sn1 sat "a &"\n'
        )
        with pytest.raises(ClaimCompileError) as err:
            compile_module(module)
        assert "Sn1" in str(err.value) and "line 2" in str(err.value)

    def test_apply_stamps_and_skips_missing(self):
        claims = exemplar_claims()
        argument = exemplar_argument(apply_bindings=False)
        argument.remove_node("Sn3")
        assert claims.apply(argument) == 2
        assert obligation_specs(argument.node("Sn1")) == \
            claims.bindings["Sn1"]
        report = repro.check(argument, claims.rule_set, mode="serial")
        assert [(v.rule, v.subject) for v in report] == \
            [("evidence-present", "Sn3")]

    def test_exemplar_argument_is_clean(self):
        report = repro.check(exemplar_argument(), exemplar_claims())
        assert report.well_formed
        assert len(report.discharged) == 5 and not report.failed


@pytest.mark.static
class TestGateRegistration:
    def test_claim_rule_sets_are_gated(self):
        from repro.analysis_static import gate

        assert GSN_OBLIGATION_RULES in gate.SHIPPED_RULE_SETS
        assert KERNEL_CLAIMS_RULES in gate.SHIPPED_RULE_SETS
        gate.assert_shipped_clean()

    def test_partial_wrapped_templates_audit_clean(self):
        from repro.analysis_static.auditor import audit_rule_set

        findings = audit_rule_set(KERNEL_CLAIMS_RULES)
        assert findings == [], [str(f) for f in findings]


# -- engine equivalence -------------------------------------------------------


def broken_kernel() -> "tuple[Argument, CompiledClaims]":
    """The exemplar with two deliberately failing obligations on Sn1."""
    argument = exemplar_argument()
    node = argument.node("Sn1")
    argument.replace_node(node.with_metadata({
        OBLIGATION_KEY: ("sat: a & ~a", "valid: p -> q"),
    }))
    return argument, exemplar_claims()


class TestModeEquivalence:
    def test_all_engines_agree_including_obligations(self, tmp_path):
        argument, claims = broken_kernel()
        rules = claims.rule_set
        serial = repro.check(argument, rules, mode="serial")
        assert [v.rule for v in serial] == [OBLIGATION_RULE_NAME] * 2
        assert serial.mode == "serial" and not serial.well_formed

        full = repro.check(argument, rules, mode="full")
        incremental = repro.check(argument, rules, mode="incremental")

        store_dir = tmp_path / "kernel.store"
        argument.save(store_dir)
        stored = StoredArgument(store_dir)
        streaming = repro.check(stored, rules, mode="streaming")
        assert not stored.hydrated
        parallel = repro.check(
            StoredArgument(store_dir), rules, mode="parallel", workers=2
        )
        stored_incremental = repro.check(
            StoredArgument(store_dir), rules, mode="incremental"
        )

        expected = tuple(serial)
        for report in (full, incremental, streaming, parallel,
                       stored_incremental):
            assert tuple(report) == expected, report.mode

    def test_obligations_ride_the_journal(self, tmp_path):
        argument, claims = broken_kernel()
        store_dir = tmp_path / "journal.store"
        argument.save(store_dir)
        handle = StoredArgument(store_dir)
        first = repro.check(handle, claims.rule_set, mode="incremental")
        assert [v.rule for v in first] == [OBLIGATION_RULE_NAME] * 2
        # repair the evidence through a journaled edit
        node = argument.node("Sn1")
        argument.replace_node(node.with_metadata({
            OBLIGATION_KEY: exemplar_claims().bindings["Sn1"],
        }))
        argument.save(store_dir, journal=True)
        second = repro.check(handle, claims.rule_set, mode="incremental")
        assert tuple(second) == ()
        assert not handle.hydrated


# -- selective re-proof -------------------------------------------------------


def proof_module(n: int) -> "tuple[Argument, CompiledClaims]":
    """``n`` goal/evidence pairs, one unique obligation each."""
    atoms = [unique_atom(f"c{i}") for i in range(n)]
    lines = [f"module proof-{uuid.uuid4().hex[:6]}"]
    for i, atom in enumerate(atoms, start=1):
        lines.append(f'claim G{i} "Hazard {i} is mitigated" supported')
        lines.append(f'evidence Sn{i} valid "{atom} -> {atom}"')
    claims = compile_module(parse_module("\n".join(lines)))
    argument = Argument("proof-case")
    argument.add_node(Node("G0", NodeType.GOAL, "The system is safe"))
    for i in range(1, n + 1):
        argument.add_nodes([
            Node(f"G{i}", NodeType.GOAL, f"Hazard {i} is mitigated"),
            Node(f"Sn{i}", NodeType.SOLUTION, f"Evidence {i}"),
        ])
        argument.add_links([
            ("G0", f"G{i}", LinkKind.SUPPORTED_BY),
            (f"G{i}", f"Sn{i}", LinkKind.SUPPORTED_BY),
        ])
    claims.apply(argument)
    return argument, claims


class TestSelectiveReproof:
    def test_fresh_then_cached(self):
        argument, claims = proof_module(6)
        proofs_before, hits_before = obligation_counters()
        report = repro.check(argument, claims.rule_set, mode="serial")
        assert report.well_formed
        proofs_after, _ = obligation_counters()
        assert proofs_after - proofs_before == 6
        repro.check(argument, claims.rule_set, mode="serial")
        proofs_warm, hits_warm = obligation_counters()
        assert proofs_warm == proofs_after, "warm re-check re-proved"
        assert hits_warm > hits_before

    def test_single_edit_reproves_exactly_one(self):
        argument, claims = proof_module(8)
        rules = claims.rule_set
        checker = rules.incremental(argument)
        checker.check()
        target = argument.node("Sn5")
        replacement = f"sat: {unique_atom('edit')}"
        argument.replace_node(target.with_metadata({
            OBLIGATION_KEY: (replacement,),
        }))
        proofs_before, hits_before = obligation_counters()
        violations = checker.check()
        proofs_after, hits_after = obligation_counters()
        assert violations == []
        assert proofs_after - proofs_before == 1, (
            "an edit to one claim re-proved more than its own obligation"
        )
        assert hits_after == hits_before, (
            "untouched claims were consulted at all"
        )
        fresh = repro.check(argument, rules, mode="serial")
        assert tuple(violations) == tuple(fresh)

    def test_facade_edit_costs_one_proof(self):
        argument, claims = proof_module(8)
        rules = claims.rule_set
        repro.check(argument, rules, mode="incremental")
        target = argument.node("Sn3")
        argument.replace_node(target.with_metadata({
            OBLIGATION_KEY: (f"sat: {unique_atom('facade')}",),
        }))
        proofs_before, hits_before = obligation_counters()
        report = repro.check(argument, rules, mode="incremental")
        proofs_after, hits_after = obligation_counters()
        assert report.well_formed
        assert proofs_after - proofs_before == 1
        # The facade additionally *reports* every live obligation's
        # outcome — pure cache reads, one per binding, never proofs.
        assert hits_after - hits_before == len(report.obligations) == 8

    def test_store_backed_single_edit(self, tmp_path):
        argument, claims = proof_module(6)
        rules = claims.rule_set
        store_dir = tmp_path / "proof.store"
        argument.save(store_dir)
        handle = StoredArgument(store_dir)
        repro.check(handle, rules, mode="incremental")
        target = argument.node("Sn2")
        argument.replace_node(target.with_metadata({
            OBLIGATION_KEY: (f"sat: {unique_atom('journal')}",),
        }))
        argument.save(store_dir, journal=True)
        proofs_before, hits_before = obligation_counters()
        report = repro.check(handle, rules, mode="incremental")
        proofs_after, hits_after = obligation_counters()
        assert report.well_formed
        assert proofs_after - proofs_before == 1
        assert hits_after == hits_before
        assert not handle.hydrated


# -- the facade and the shims -------------------------------------------------


class TestCheckFacade:
    def test_report_is_list_like(self):
        argument, claims = broken_kernel()
        report = repro.check(argument, claims)
        assert isinstance(report, CheckReport)
        assert len(report) == 2 and report
        assert report[0].rule == OBLIGATION_RULE_NAME
        assert list(report) == list(report.violations)
        assert report.violations[1] in report
        assert not report.well_formed
        assert {o.spec for o in report.failed} <= \
            {o.spec for o in report.obligations}

    def test_compiled_claims_as_rules_reports_outcomes(self):
        report = repro.check(exemplar_argument(), exemplar_claims())
        assert {o.evidence for o in report.obligations} == \
            {"Sn1", "Sn2", "Sn3"}
        assert all(o.discharged for o in report.obligations)

    def test_mode_validation_and_resolution(self):
        argument = exemplar_argument()
        with pytest.raises(ValueError):
            repro.check(argument, mode="psychic")
        assert repro.check(argument, mode="auto").mode == "serial"
        assert repro.check(
            argument, mode="parallel", workers=1
        ).mode == "serial"  # one worker degrades, and the report says so
        assert CHECK_MODES[-1] == "incremental"

    def test_stored_auto_resolves_to_streaming(self, tmp_path):
        argument = exemplar_argument()
        store_dir = tmp_path / "auto.store"
        argument.save(store_dir)
        stored = StoredArgument(store_dir)
        report = repro.check(stored, GSN_OBLIGATION_RULES, mode="auto")
        assert report.mode == "streaming"
        assert report.well_formed
        assert not stored.hydrated

    def test_incremental_registry_is_bounded(self):
        for _ in range(_MAX_INCREMENTAL_SUBJECTS + 4):
            argument = exemplar_argument()
            repro.check(argument, mode="incremental")
        assert len(_CHECKERS) <= _MAX_INCREMENTAL_SUBJECTS

    def test_legacy_entrypoints_delegate(self):
        argument = exemplar_argument()
        violations = legacy_check(argument)
        assert violations == [] and isinstance(violations, list)
        assert is_well_formed(argument)
        assert GSN_STANDARD_RULES.check(argument) == []
        broken, claims = broken_kernel()
        assert [v.rule for v in claims.rule_set.check(broken)] == \
            [OBLIGATION_RULE_NAME] * 2

    def test_top_level_all_is_importable(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name
