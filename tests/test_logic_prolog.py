"""Tests for repro.logic.prolog — including Figure 1 verbatim."""

from __future__ import annotations

import pytest

from repro.logic.prolog import (
    Clause,
    DepthLimitExceeded,
    Program,
    PrologError,
    desert_bank_program,
    parse_clause,
    parse_program,
)
from repro.logic.terms import Atom, Const, parse_atom


class TestFigure1:
    """The paper's Desert Bank argument, executed."""

    def test_program_has_three_clauses(self):
        assert len(desert_bank_program()) == 3

    def test_false_conclusion_is_derivable(self):
        # 'We can prove that: adjacent(desert_bank, river).' (Figure 1)
        program = desert_bank_program()
        assert program.provable("adjacent(desert_bank, river)")

    def test_direct_fact_derivable(self):
        program = desert_bank_program()
        assert program.provable("adjacent(bank, river)")

    def test_underivable_facts_fail(self):
        program = desert_bank_program()
        assert not program.provable("adjacent(river, bank)")
        assert not program.provable("is_a(bank, desert_bank)")

    def test_solution_bindings(self):
        program = desert_bank_program()
        solutions = program.solve("adjacent(X, river)")
        answers = {s.as_dict()["X"] for s in solutions}
        assert answers == {"bank", "desert_bank"}

    def test_derivation_uses_transitivity_rule(self):
        # The derivation needs is_a + the recursive rule: depth > 1.
        program = desert_bank_program()
        solutions = program.solve("adjacent(desert_bank, river)")
        assert solutions and solutions[0].depth >= 2


class TestParsing:
    def test_parse_fact(self):
        clause = parse_clause("likes(alice, bob).")
        assert clause.head == parse_atom("likes(alice, bob)")
        assert clause.body == ()

    def test_parse_rule(self):
        clause = parse_clause("a(X) :- b(X), c(X).")
        assert clause.head == parse_atom("a(X)")
        assert len(clause.body) == 2

    def test_parse_negated_goal(self):
        clause = parse_clause("safe(X) :- device(X), \\+ faulty(X).")
        assert clause.body[1].negated

    def test_parse_program_with_comments(self):
        program = parse_program(
            """
            % facts
            p(a).
            p(b).
            q(X) :- p(X).
            """
        )
        assert len(program) == 3

    def test_unterminated_clause_rejected(self):
        with pytest.raises(PrologError):
            parse_program("p(a)")

    def test_empty_clause_rejected(self):
        with pytest.raises(PrologError):
            parse_clause(".")


class TestResolution:
    def test_conjunction_in_body(self):
        program = parse_program(
            """
            parent(tom, bob).
            parent(bob, ann).
            grandparent(X, Z) :- parent(X, Y), parent(Y, Z).
            """
        )
        assert program.provable("grandparent(tom, ann)")
        assert not program.provable("grandparent(bob, tom)")

    def test_multiple_solutions_in_order(self):
        program = parse_program("p(a). p(b). p(c).")
        answers = [s.as_dict()["X"] for s in program.solve("p(X)")]
        assert answers == ["a", "b", "c"]

    def test_max_solutions(self):
        program = parse_program("p(a). p(b). p(c).")
        assert len(program.solve("p(X)", max_solutions=2)) == 2

    def test_depth_limit_on_left_recursion(self):
        program = parse_program("loop(X) :- loop(X).")
        with pytest.raises(DepthLimitExceeded):
            program.solve("loop(a)", max_depth=20)

    def test_variables_rename_apart(self):
        # The same rule used twice must not capture variables.
        program = parse_program(
            """
            edge(a, b).
            edge(b, c).
            path(X, Y) :- edge(X, Y).
            path(X, Z) :- edge(X, Y), path(Y, Z).
            """
        )
        assert program.provable("path(a, c)")

    def test_negation_as_failure(self):
        program = parse_program(
            """
            device(d1).
            device(d2).
            faulty(d2).
            ok(X) :- device(X), \\+ faulty(X).
            """
        )
        assert program.provable("ok(d1)")
        assert not program.provable("ok(d2)")

    def test_negation_requires_ground_goal(self):
        program = parse_program(
            """
            p(a).
            bad(X) :- \\+ q(X), p(X).
            """
        )
        # With the query variable unbound, the negated goal is non-ground
        # at selection time and must be rejected (floundering).
        with pytest.raises(PrologError, match="ground"):
            program.solve("bad(X)")

    def test_negation_ground_after_head_unification(self):
        program = parse_program(
            """
            p(a).
            bad(X) :- \\+ q(X), p(X).
            """
        )
        # Querying with a constant grounds the negated goal: no error.
        assert program.provable("bad(a)")

    def test_add_fact_and_rule_api(self):
        program = Program()
        program.add_fact("p(a)")
        program.add_rule("q(X)", "p(X)")
        assert program.provable("q(a)")

    def test_soundness_ground_answers(self):
        # Every returned binding must make the query a logical
        # consequence of the program (checked by re-querying ground).
        program = parse_program(
            """
            likes(alice, bob).
            likes(bob, carol).
            friend(X, Y) :- likes(X, Y).
            """
        )
        for solution in program.solve("friend(X, Y)"):
            bound = solution.as_dict()
            assert program.provable(
                f"friend({bound['X']}, {bound['Y']})"
            )
