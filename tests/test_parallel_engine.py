"""Work-queue parallel checking: snapshot isolation, start methods, cleanup.

The forced-2-worker suite of the parallel engine rebuild — every test
here pins ``workers=2`` explicitly so the degradation path
(``effective < 2`` falls back to streaming) is never what gets tested,
whatever ``os.cpu_count()`` says about the host.  Covered contracts:

* parallel ≡ serial ≡ streaming on a **skew-sharded journaled** store
  (most identifiers mined to hash into one shard, so the old
  round-robin dealing would have idled every other worker);
* **snapshot isolation** — workers open the store at the parent's
  pinned :class:`~repro.store.StoreGeneration`: journal segments
  appended mid-check are rewound away, while a compacted (rotated)
  base raises :class:`~repro.store.StoreConflictError` naming both
  generations, and a compaction that *crashes at the manifest rename*
  (the PR 7 crash-window idiom) leaves the pinned check untouched;
* **fork safety** — :func:`repro.core.analysis._mp_context` picks
  ``fork`` only for a single-threaded parent, switches to
  ``forkserver``/``spawn`` when helper threads are alive, and honours
  the ``REPRO_MP_START`` override (the CI ``parallel`` job pins it to
  ``fork`` and ``spawn`` in turn; tests that do not set it themselves
  run under whichever method the job selected);
* **failure cleanup** — the first worker exception cancels the queued
  tasks and re-raises with the failing shard noted on the exception
  (``add_note``, Python 3.11+).
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import threading
from zlib import crc32

import pytest

from repro.core.analysis import _mp_context, per_node, run_rules
from repro.core.argument import Argument, Link, LinkKind
from repro.core.nodes import Node, NodeType
from repro.core.wellformed import GSN_STANDARD_RULES
from repro.store import StoreConflictError, StoredArgument

pytestmark = pytest.mark.parallel

_METHODS = multiprocessing.get_all_start_methods()


def _skewed_identifier(prefix: str, counter: int, shard: int,
                       shard_count: int = 8) -> str:
    """Mine an identifier that hashes to ``shard`` (the store's id-hash
    is ``crc32(id) % shard_count`` — see ``repro.store.format``)."""
    nonce = 0
    while True:
        candidate = f"{prefix}{counter}x{nonce}"
        if crc32(candidate.encode("utf-8")) % shard_count == shard:
            return candidate
        nonce += 1


def skewed_case(hazards: int = 60, skew_every: int = 2) -> Argument:
    """A GSN case with deliberate shard skew and real violations.

    Every ``skew_every``-th hazard pair is mined into shard 0, so one
    shard carries far more than 1/8 of the store.  A handful of
    violations (unsupported goals, a solution citing support, a context
    link to a solution, a second root) keep the checkers honest.
    """
    argument = Argument("parallel-skew-fixture")
    argument.add_nodes([
        Node("G0", NodeType.GOAL, "The system is acceptably safe"),
        Node("S0", NodeType.STRATEGY, "Argument over each hazard"),
    ])
    argument.add_links([("G0", "S0", LinkKind.SUPPORTED_BY)])
    for index in range(1, hazards + 1):
        if index % skew_every == 0:
            goal = _skewed_identifier("G", index, shard=0)
            solution = _skewed_identifier("Sn", index, shard=0)
        else:
            goal = f"G{index}"
            solution = f"Sn{index}"
        argument.add_node(Node(
            goal, NodeType.GOAL, f"Hazard {index} is acceptably managed"
        ))
        argument.add_link("S0", goal, LinkKind.SUPPORTED_BY)
        argument.add_node(Node(
            solution, NodeType.SOLUTION, f"Verification record VR-{index}"
        ))
        if index % 9 == 0:
            continue  # dangling solution: solution-unreferenced fires
        argument.add_link(goal, solution, LinkKind.SUPPORTED_BY)
    # Cross-cutting violations.
    argument.add_node(Node("G_lone", NodeType.GOAL,
                           "A second root claim stands alone"))
    argument.add_node(Node("Sn_ctx", NodeType.SOLUTION, "Report used as context"))
    argument.add_link("G1", "Sn_ctx", LinkKind.IN_CONTEXT_OF)
    argument.add_link("Sn1", "Sn3", LinkKind.SUPPORTED_BY)
    return argument


def _journal_rounds(argument: Argument, store_dir, rounds: int = 6) -> None:
    """Append ``rounds`` journaled edit sessions (replace/remove/add)."""
    for round_index in range(rounds):
        # Only odd hazard indices keep their plain G{i}/Sn{i} names
        # (even ones were mined into shard 0 under other identifiers).
        target = f"G{1 + 6 * round_index}"
        node = argument.node(target)
        argument.replace_node(node.with_text(
            f"{node.text} (revalidated r{round_index})"
        ))
        fresh = _skewed_identifier("X", round_index, shard=0)
        argument.add_node(Node(
            fresh, NodeType.GOAL, f"Late-added claim {round_index} holds"
        ))
        if round_index % 2 == 0:
            churn = 5 + 6 * round_index
            argument.remove_link(
                Link(f"G{churn}", f"Sn{churn}", LinkKind.SUPPORTED_BY)
            )
        argument.save(store_dir, journal=True)


@pytest.fixture
def skewed_store(tmp_path):
    argument = skewed_case()
    store_dir = tmp_path / "skewed.store"
    argument.save(store_dir)
    _journal_rounds(argument, store_dir)
    return argument, store_dir


class TestForcedTwoWorkerEquivalence:
    def test_parallel_equals_serial_equals_streaming(self, skewed_store):
        argument, store_dir = skewed_store
        serial = GSN_STANDARD_RULES.check(argument)
        assert serial, "fixture must actually violate rules"
        streaming = GSN_STANDARD_RULES.check(
            StoredArgument(store_dir), mode="streaming"
        )
        handle = StoredArgument(store_dir)
        parallel = GSN_STANDARD_RULES.check(
            handle, mode="parallel", workers=2
        )
        assert serial == streaming == parallel

    def test_parent_parses_nothing(self, skewed_store):
        # The work-queue design's no-serial-parsing guarantee: workers
        # parse every shard; the parent only rebuilds its sidecar from
        # the shipped fragment rows.
        _, store_dir = skewed_store
        handle = StoredArgument(store_dir)
        GSN_STANDARD_RULES.check(handle, mode="parallel", workers=2)
        assert not handle.hydrated
        assert handle.shards_read == set()

    def test_live_argument_parallel_equivalence(self, skewed_store):
        argument, _ = skewed_store
        assert GSN_STANDARD_RULES.check(
            argument, mode="parallel", workers=2
        ) == GSN_STANDARD_RULES.check(argument)

    @pytest.mark.parametrize("method", ["fork", "spawn"])
    def test_equivalence_under_pinned_start_method(
        self, skewed_store, monkeypatch, method
    ):
        if method not in _METHODS:
            pytest.skip(f"start method {method!r} unavailable here")
        monkeypatch.setenv("REPRO_MP_START", method)
        argument, store_dir = skewed_store
        assert GSN_STANDARD_RULES.check(
            StoredArgument(store_dir), mode="parallel", workers=2
        ) == GSN_STANDARD_RULES.check(argument)


class TestSnapshotIsolation:
    def test_pinned_open_serves_older_generation_after_append(
        self, skewed_store, tmp_path
    ):
        _, store_dir = skewed_store
        reader = StoredArgument(store_dir)
        token = reader.pin()
        nodes_before = reader.node_count
        editor = StoredArgument(store_dir).load()
        editor.add_node(Node("Z_late", NodeType.GOAL, "Appended behind pin"))
        editor.save(store_dir, journal=True)
        reopened = StoredArgument(store_dir, generation=token)
        assert reopened.pin() == token
        assert reopened.node_count == nodes_before
        assert "Z_late" not in reopened
        assert "Z_late" in StoredArgument(store_dir)

    def test_pinned_open_to_journal_free_base(self, tmp_path):
        # Rewinding to a generation with *no* segments must patch the
        # counts back to the base totals (the manifest's counts already
        # include the newer journal's deltas).
        argument = skewed_case(hazards=8)
        store_dir = tmp_path / "base.store"
        argument.save(store_dir)
        token = StoredArgument(store_dir).pin()
        total = len(argument)
        argument.add_node(Node("Z1", NodeType.GOAL, "Post-pin claim"))
        argument.save(store_dir, journal=True)
        reopened = StoredArgument(store_dir, generation=token)
        assert reopened.node_count == total
        assert reopened.pin() == token

    def test_pinned_open_conflicts_after_compact(self, skewed_store):
        _, store_dir = skewed_store
        token = StoredArgument(store_dir).pin()
        StoredArgument(store_dir).compact()
        with pytest.raises(StoreConflictError) as excinfo:
            StoredArgument(store_dir, generation=token)
        message = str(excinfo.value)
        assert str(token) in message, "conflict must name the pinned generation"
        assert str(StoredArgument(store_dir).pin()) in message, \
            "conflict must name the generation found on disk"

    def test_pinned_open_conflicts_after_coalesce(self, skewed_store):
        _, store_dir = skewed_store
        token = StoredArgument(store_dir).pin()
        assert len(token.segments) > 1
        StoredArgument(store_dir).coalesce()
        with pytest.raises(StoreConflictError):
            StoredArgument(store_dir, generation=token)

    def test_parallel_check_sees_pinned_snapshot_despite_append(
        self, skewed_store
    ):
        _, store_dir = skewed_store
        reader = StoredArgument(store_dir)
        pinned_view = GSN_STANDARD_RULES.check(reader, mode="streaming")
        editor = StoredArgument(store_dir).load()
        editor.add_node(Node("Z_mid", NodeType.GOAL,
                             "Appended while the check ran"))
        editor.save(store_dir, journal=True)
        # The stale reader's parallel check must equal its own snapshot,
        # not the moved HEAD (which now has one more unsupported goal).
        parallel = GSN_STANDARD_RULES.check(reader, mode="parallel", workers=2)
        assert parallel == pinned_view
        head = GSN_STANDARD_RULES.check(
            StoredArgument(store_dir), mode="streaming"
        )
        assert parallel != head

    def test_parallel_check_conflicts_when_base_rotates(self, skewed_store):
        # The generation-rotation regression: pre-rebuild, workers
        # opened whatever HEAD they found and silently checked a store
        # the parent never pinned.
        _, store_dir = skewed_store
        reader = StoredArgument(store_dir)
        StoredArgument(store_dir).compact()
        with pytest.raises(StoreConflictError) as excinfo:
            GSN_STANDARD_RULES.check(reader, mode="parallel", workers=2)
        assert str(reader.pin()) in str(excinfo.value)

    def test_crashed_compaction_leaves_pinned_check_untouched(
        self, skewed_store, monkeypatch
    ):
        # The PR 7 crash-window idiom: the compaction dies at the
        # manifest rename, so the swap never commits — the pinned
        # generation is still HEAD and the parallel check must succeed.
        _, store_dir = skewed_store
        reader = StoredArgument(store_dir)
        expected = GSN_STANDARD_RULES.check(reader, mode="streaming")
        real_replace = os.replace

        def exploding_replace(src, dst, **kwargs):
            if str(dst).endswith("manifest.json"):
                raise OSError(28, "simulated crash at the rename window")
            return real_replace(src, dst, **kwargs)

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError):
            StoredArgument(store_dir).compact()
        monkeypatch.undo()
        assert GSN_STANDARD_RULES.check(
            reader, mode="parallel", workers=2
        ) == expected


class TestStartMethodSelection:
    @pytest.mark.skipif("fork" not in _METHODS,
                        reason="no fork on this platform")
    def test_single_threaded_parent_prefers_fork(self, monkeypatch):
        from repro.core.analysis import _foreign_thread_count

        monkeypatch.delenv("REPRO_MP_START", raising=False)
        if _foreign_thread_count() > 1:
            pytest.skip("test runner already has foreign helper threads")
        # A cached idle pool's manager threads must NOT disqualify fork
        # (the stdlib forks new workers while they run).
        assert _mp_context().get_start_method() == "fork"

    def test_threaded_parent_never_forks(self, monkeypatch):
        monkeypatch.delenv("REPRO_MP_START", raising=False)
        release = threading.Event()
        helper = threading.Thread(target=release.wait)
        helper.start()
        try:
            assert _mp_context().get_start_method() in (
                "forkserver", "spawn"
            )
        finally:
            release.set()
            helper.join()

    def test_env_override_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_MP_START", "spawn")
        assert _mp_context().get_start_method() == "spawn"

    def test_unknown_override_is_loud(self, monkeypatch):
        monkeypatch.setenv("REPRO_MP_START", "vfork")
        with pytest.raises(ValueError):
            _mp_context()


def _exploding_rule(node, ctx):
    """Module-level (spawn-picklable) rule that fails on one node."""
    if node.identifier == "G1":
        raise RuntimeError("rule exploded in a worker")
    return []


class TestFailureCleanup:
    def test_stored_failure_surfaces_and_names_the_shard(self, skewed_store):
        _, store_dir = skewed_store
        rules = (per_node("boom", "explodes on G1", _exploding_rule),)
        with pytest.raises(RuntimeError, match="rule exploded") as excinfo:
            run_rules(StoredArgument(store_dir), rules,
                      mode="parallel", workers=2)
        if sys.version_info >= (3, 11):
            notes = getattr(excinfo.value, "__notes__", [])
            assert any("shard" in note for note in notes), notes

    def test_live_failure_surfaces_and_names_the_unit(self, skewed_store):
        argument, _ = skewed_store
        rules = (per_node("boom", "explodes on G1", _exploding_rule),)
        with pytest.raises(RuntimeError, match="rule exploded") as excinfo:
            run_rules(argument, rules, mode="parallel", workers=2)
        if sys.version_info >= (3, 11):
            notes = getattr(excinfo.value, "__notes__", [])
            assert any("unit" in note for note in notes), notes

    def test_corruption_still_pickles_across_the_pool(self, skewed_store):
        from repro.store import StoreCorruptionError

        _, store_dir = skewed_store
        handle = StoredArgument(store_dir)
        shard_name = handle.manifest["node_shards"][0]
        shard_path = store_dir / shard_name
        shard_path.write_bytes(shard_path.read_bytes() + b"garbage\n")
        with pytest.raises(StoreCorruptionError):
            GSN_STANDARD_RULES.check(handle, mode="parallel", workers=2)
