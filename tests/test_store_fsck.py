"""casefsck over healthy, corrupted, journaled, and torn stores.

The acceptance criterion: ``python -m repro.store.fsck`` must exit
nonzero **naming the damaged artifact** on every corruption recipe the
reader tests use (flipped bytes, truncated lines, undecodable records,
missing files, tampered manifests), while passing byte-stable stores
and journal-bearing stores — including a recoverable torn tail, which
must be reported ``recoverable``, not fatal.  The orphan inventory must
match :func:`repro.store.journal.gc`'s view exactly.
"""

from __future__ import annotations

import json
import shutil
from zlib import crc32

import pytest

from repro.analysis_static.fsck import (
    FSCK_FATAL,
    FSCK_NOTE,
    FSCK_RECOVERABLE,
    fsck_store,
)
from repro.core.argument import Argument, LinkKind
from repro.core.nodes import Node, NodeType
from repro.store import StoredArgument, shard_of
from repro.store.fsck import main

pytestmark = [pytest.mark.static, pytest.mark.store]


def _argument() -> Argument:
    argument = Argument("fsck-subject")
    argument.add_nodes([
        Node("G1", NodeType.GOAL, "The system is acceptably safe"),
        Node("G2", NodeType.GOAL, "Hazard H1 is mitigated"),
        Node("S1", NodeType.STRATEGY, "Argue over all hazards"),
        Node("Sn1", NodeType.SOLUTION, "Test report TR-1"),
        Node("C1", NodeType.CONTEXT, "Operating role and context"),
    ])
    argument.add_links([
        ("G1", "S1", LinkKind.SUPPORTED_BY),
        ("S1", "G2", LinkKind.SUPPORTED_BY),
        ("G2", "Sn1", LinkKind.SUPPORTED_BY),
        ("G1", "C1", LinkKind.IN_CONTEXT_OF),
    ])
    return argument


@pytest.fixture
def store_dir(tmp_path):
    directory = tmp_path / "subject.store"
    _argument().save(directory)
    return directory


@pytest.fixture
def journaled_dir(tmp_path):
    """A store carrying two sealed journal segments."""
    directory = tmp_path / "journaled.store"
    _argument().save(directory)
    for round_no in (1, 2):
        loaded = Argument.load(directory)
        loaded.add_node(
            Node(f"G{round_no + 10}", NodeType.GOAL, "An appended claim")
        )
        loaded.add_link("G1", f"G{round_no + 10}", LinkKind.SUPPORTED_BY)
        loaded.save(directory, journal=True)
    manifest = json.loads((directory / "manifest.json").read_text())
    assert len(manifest["journal"]) == 2
    return directory


def _manifest(store_dir) -> dict:
    return json.loads((store_dir / "manifest.json").read_text())


def _nonempty_shard(store_dir, prefix: str) -> str:
    manifest = _manifest(store_dir)
    for name, meta in manifest["shards"].items():
        if name.startswith(prefix) and meta["records"] > 0:
            return name
    raise AssertionError(f"no non-empty {prefix} shard")


def _patch_manifest_crc(store_dir, shard: str) -> None:
    """Recompute a tampered shard's checksum so only *content* is wrong."""
    manifest = _manifest(store_dir)
    manifest["shards"][shard]["crc32"] = crc32(
        (store_dir / shard).read_bytes()
    )
    (store_dir / "manifest.json").write_text(json.dumps(manifest))


def _reseal(store_dir, shard: str, *, fix_records: bool = True) -> str:
    """Re-address a tampered shard so checksum AND filename both match.

    Leaves only deeper properties (record shape, seq, partition,
    counts) to catch the tampering — exercising fsck's inner checks.
    """
    data = (store_dir / shard).read_bytes()
    checksum = crc32(data)
    stem = shard.rsplit("-", 1)[0]
    suffix = ".jsonl.gz" if shard.endswith(".gz") else ".jsonl"
    fresh = f"{stem}-{checksum:08x}{suffix}"
    (store_dir / shard).rename(store_dir / fresh)
    manifest = _manifest(store_dir)
    meta = manifest["shards"].pop(shard)
    meta["crc32"] = checksum
    if fix_records:
        meta["records"] = len(data.splitlines())
    manifest["shards"][fresh] = meta
    for key in ("node_shards", "link_shards", "journal"):
        if key in manifest:
            manifest[key] = [
                fresh if name == shard else name for name in manifest[key]
            ]
    (store_dir / "manifest.json").write_text(json.dumps(manifest))
    return fresh


def _fatal_artifacts(report) -> set:
    return {f.artifact for f in report.fatal}


# -- healthy stores ----------------------------------------------------------


def test_clean_store_passes(store_dir) -> None:
    report = fsck_store(store_dir)
    assert report.ok
    assert report.exit_code() == 0
    assert report.exit_code(strict=True) == 0
    assert not report.findings
    assert report.records_checked == 9  # 5 nodes + 4 links
    assert "clean" in report.render()


def test_journaled_store_passes(journaled_dir) -> None:
    report = fsck_store(journaled_dir)
    assert report.ok and not report.findings
    assert report.segments_checked == 2


def test_compressed_store_passes(tmp_path) -> None:
    directory = tmp_path / "gz.store"
    _argument().save(directory, compression="gzip")
    report = fsck_store(directory)
    assert report.ok and not report.findings


# -- base-shard corruption ----------------------------------------------------


def test_flipped_byte_is_fatal_naming_shard(store_dir) -> None:
    shard = _nonempty_shard(store_dir, "nodes-")
    data = bytearray((store_dir / shard).read_bytes())
    marker = b'"text":"'
    data[data.index(marker) + len(marker)] ^= 0x20
    (store_dir / shard).write_bytes(bytes(data))
    report = fsck_store(store_dir)
    assert not report.ok
    assert shard in _fatal_artifacts(report)
    assert any("checksum" in f.detail for f in report.fatal)


def test_manifest_patched_to_match_tampering_still_caught(store_dir) -> None:
    """A manifest edited alongside the bytes cannot defeat the
    content-address in the filename."""
    shard = _nonempty_shard(store_dir, "nodes-")
    data = bytearray((store_dir / shard).read_bytes())
    marker = b'"text":"'
    data[data.index(marker) + len(marker)] ^= 0x20
    (store_dir / shard).write_bytes(bytes(data))
    _patch_manifest_crc(store_dir, shard)
    report = fsck_store(store_dir)
    assert not report.ok
    assert shard in _fatal_artifacts(report)
    assert any("content-address" in f.detail for f in report.fatal)


def test_truncated_shard_is_fatal_naming_shard(store_dir) -> None:
    shard = _nonempty_shard(store_dir, "links-")
    data = (store_dir / shard).read_bytes()
    (store_dir / shard).write_bytes(data[: len(data) // 2])
    report = fsck_store(store_dir)
    assert not report.ok
    assert shard in _fatal_artifacts(report)


def test_undecodable_line_is_fatal_naming_shard_and_line(store_dir) -> None:
    shard = _nonempty_shard(store_dir, "nodes-")
    path = store_dir / shard
    lines = path.read_bytes().splitlines(keepends=True)
    lines[0] = b'{"seq": 0, "id": "broken"\n'
    path.write_bytes(b"".join(lines))
    fresh = _reseal(store_dir, shard)  # isolate the decode check
    report = fsck_store(store_dir)
    assert not report.ok
    assert fresh in _fatal_artifacts(report)
    assert any("line 1" in f.detail for f in report.fatal)


def test_record_missing_keys_is_fatal(store_dir) -> None:
    shard = _nonempty_shard(store_dir, "links-")
    path = store_dir / shard
    lines = path.read_bytes().splitlines(keepends=True)
    lines[0] = b'{"seq": 0, "source": "G1"}\n'
    path.write_bytes(b"".join(lines))
    fresh = _reseal(store_dir, shard)
    report = fsck_store(store_dir)
    assert not report.ok
    assert fresh in _fatal_artifacts(report)
    assert any("missing" in f.detail for f in report.fatal)


def test_injected_record_is_fatal(store_dir) -> None:
    """A padded shard trips the manifest record count."""
    shard = _nonempty_shard(store_dir, "nodes-")
    path = store_dir / shard
    extra = json.dumps({
        "seq": 999, "id": "Gx", "type": "goal", "text": "Injected claim",
    }, separators=(",", ":")).encode() + b"\n"
    path.write_bytes(path.read_bytes() + extra)
    fresh = _reseal(store_dir, shard, fix_records=False)
    report = fsck_store(store_dir)
    assert not report.ok
    assert fresh in _fatal_artifacts(report)
    assert any("record count" in f.detail for f in report.fatal)


def test_missing_shard_file_is_fatal(store_dir) -> None:
    shard = _nonempty_shard(store_dir, "links-")
    (store_dir / shard).unlink()
    report = fsck_store(store_dir)
    assert not report.ok
    assert shard in _fatal_artifacts(report)
    assert any("missing" in f.detail for f in report.fatal)


def test_partition_violation_is_fatal(store_dir) -> None:
    """A node renamed to hash elsewhere breaks the id-hash placement."""
    manifest = _manifest(store_dir)
    shard_count = manifest["shard_count"]
    shard = _nonempty_shard(store_dir, "nodes-")
    path = store_dir / shard
    lines = path.read_bytes().splitlines(keepends=True)
    record = json.loads(lines[0])
    home = shard_of(record["id"], shard_count)
    stray = next(
        f"STRAY{i}" for i in range(1000)
        if shard_of(f"STRAY{i}", shard_count) != home
    )
    record["id"] = stray
    lines[0] = json.dumps(record, separators=(",", ":")).encode() + b"\n"
    path.write_bytes(b"".join(lines))
    fresh = _reseal(store_dir, shard)
    report = fsck_store(store_dir)
    assert not report.ok
    assert fresh in _fatal_artifacts(report)
    assert any("id-hash partition" in f.detail for f in report.fatal)


def test_seq_domain_gap_is_fatal(store_dir) -> None:
    shard = _nonempty_shard(store_dir, "nodes-")
    path = store_dir / shard
    lines = path.read_bytes().splitlines(keepends=True)
    record = json.loads(lines[0])
    record["seq"] = 999  # ascending within the shard, but a global gap
    lines[0] = json.dumps(record, separators=(",", ":")).encode() + b"\n"
    path.write_bytes(b"".join(lines))
    _reseal(store_dir, shard)
    report = fsck_store(store_dir)
    assert not report.ok
    assert any(
        "seq" in f.detail and "contiguous" in f.detail
        for f in report.fatal
    )


# -- manifest corruption -------------------------------------------------------


def test_tampered_shard_count_is_fatal(store_dir) -> None:
    manifest = _manifest(store_dir)
    manifest["shard_count"] = 0
    manifest["node_shards"] = []
    manifest["link_shards"] = []
    (store_dir / "manifest.json").write_text(json.dumps(manifest))
    report = fsck_store(store_dir)
    assert not report.ok
    assert "manifest.json" in _fatal_artifacts(report)
    assert any("inconsistent shard map" in f.detail for f in report.fatal)


def test_tampered_node_count_is_fatal(store_dir) -> None:
    manifest = _manifest(store_dir)
    manifest["node_count"] += 1
    (store_dir / "manifest.json").write_text(json.dumps(manifest))
    report = fsck_store(store_dir)
    assert not report.ok
    assert any("manifest claims" in f.detail for f in report.fatal)


def test_unsupported_schema_is_fatal(store_dir) -> None:
    manifest = _manifest(store_dir)
    manifest["schema"] = 99
    (store_dir / "manifest.json").write_text(json.dumps(manifest))
    report = fsck_store(store_dir)
    assert not report.ok
    assert any("unsupported store schema" in f.detail for f in report.fatal)


def test_missing_store_directory_is_fatal(tmp_path) -> None:
    report = fsck_store(tmp_path / "nowhere.store")
    assert not report.ok
    assert any("not a store directory" in f.detail for f in report.fatal)


def test_missing_manifest_is_fatal(tmp_path) -> None:
    empty = tmp_path / "empty.store"
    empty.mkdir()
    report = fsck_store(empty)
    assert not report.ok
    assert any("no store manifest" in f.detail for f in report.fatal)


def test_manifest_invalid_json_is_fatal(store_dir) -> None:
    (store_dir / "manifest.json").write_text("{not json")
    report = fsck_store(store_dir)
    assert not report.ok
    assert any("not valid JSON" in f.detail for f in report.fatal)


# -- journal damage: tail vs middle ---------------------------------------------


def test_torn_final_segment_is_recoverable(journaled_dir) -> None:
    manifest = _manifest(journaled_dir)
    final = manifest["journal"][-1]
    data = (journaled_dir / final).read_bytes()
    (journaled_dir / final).write_bytes(data[: len(data) // 2])
    report = fsck_store(journaled_dir)
    assert report.ok, "a torn tail is recoverable, not fatal"
    assert report.exit_code() == 0
    assert report.exit_code(strict=True) == 1
    torn = [f for f in report.findings if f.severity == FSCK_RECOVERABLE]
    assert torn and torn[0].artifact == final
    assert "recoverable" in torn[0].detail
    assert "ignore_torn_tail" in torn[0].detail


def test_missing_final_segment_is_recoverable(journaled_dir) -> None:
    manifest = _manifest(journaled_dir)
    final = manifest["journal"][-1]
    (journaled_dir / final).unlink()
    report = fsck_store(journaled_dir)
    assert report.ok
    assert any(
        f.severity == FSCK_RECOVERABLE and f.artifact == final
        for f in report.findings
    )


def test_damaged_middle_segment_is_fatal(journaled_dir) -> None:
    manifest = _manifest(journaled_dir)
    middle = manifest["journal"][0]
    data = (journaled_dir / middle).read_bytes()
    (journaled_dir / middle).write_bytes(data[: len(data) // 2])
    report = fsck_store(journaled_dir)
    assert not report.ok
    assert middle in _fatal_artifacts(report)
    assert any(
        "beyond torn-tail recovery" in f.detail for f in report.fatal
    )


def test_missing_middle_segment_is_fatal(journaled_dir) -> None:
    manifest = _manifest(journaled_dir)
    middle = manifest["journal"][0]
    (journaled_dir / middle).unlink()
    report = fsck_store(journaled_dir)
    assert not report.ok
    assert middle in _fatal_artifacts(report)


def test_unknown_journal_op_is_fatal(journaled_dir) -> None:
    manifest = _manifest(journaled_dir)
    middle = manifest["journal"][0]
    path = journaled_dir / middle
    lines = path.read_bytes().splitlines(keepends=True)
    lines[0] = b'{"op": "reticulate"}\n'
    path.write_bytes(b"".join(lines))
    fresh = _reseal(journaled_dir, middle)
    report = fsck_store(journaled_dir)
    assert not report.ok
    assert fresh in _fatal_artifacts(report)
    assert any("unknown journal op" in f.detail for f in report.fatal)


# -- orphan inventory matches gc() -----------------------------------------------


def test_orphans_match_gc_view(journaled_dir, tmp_path) -> None:
    # Plant one orphan of each shape gc() recognises, plus one
    # foreign file it must never touch.
    (journaled_dir / "nodes-0099-deadbeef.jsonl").write_text("")
    (journaled_dir / "journal-0099.tmp").write_text("")
    (journaled_dir / "manifest.json.tmp").write_text("{}")
    (journaled_dir / "NOTES.txt").write_text("not a store file")
    report = fsck_store(journaled_dir)
    assert report.ok  # orphans are notes, not corruption
    assert all(
        f.severity == FSCK_NOTE
        for f in report.findings
        if f.artifact != "manifest.json"
    )
    # gc() on an identical copy must sweep exactly fsck's inventory.
    mirror = tmp_path / "mirror.store"
    shutil.copytree(journaled_dir, mirror)
    removed = StoredArgument(mirror).gc()
    assert sorted(report.orphans) == removed
    assert "NOTES.txt" not in report.orphans


# -- the search sidecar: derived data, recoverable at worst ------------------


@pytest.fixture
def indexed_dir(tmp_path):
    directory = tmp_path / "indexed.store"
    _argument().save(directory, search_index=True)
    return directory


def _sidecar_name(store_dir) -> str:
    return _manifest(store_dir)["search_index"]


def _reseal_sidecar(store_dir, name: str) -> str:
    """``_reseal`` plus the ``search_index`` manifest reference."""
    fresh = _reseal(store_dir, name)
    manifest = _manifest(store_dir)
    manifest["search_index"] = fresh
    (store_dir / "manifest.json").write_text(json.dumps(manifest))
    return fresh


def test_indexed_store_passes(indexed_dir) -> None:
    report = fsck_store(indexed_dir)
    assert report.ok and not report.findings
    # Base shards + the sidecar are all seal-checked.
    assert report.shards_checked > len(
        _manifest(indexed_dir)["node_shards"]
    ) + len(_manifest(indexed_dir)["link_shards"])


def test_torn_sidecar_is_recoverable_never_fatal(indexed_dir) -> None:
    name = _sidecar_name(indexed_dir)
    data = (indexed_dir / name).read_bytes()
    (indexed_dir / name).write_bytes(data[: len(data) // 2])
    report = fsck_store(indexed_dir)
    assert report.ok, "a damaged sidecar is derived data, never fatal"
    assert report.exit_code() == 0
    assert report.exit_code(strict=True) == 1
    damaged = [
        f for f in report.findings if f.severity == FSCK_RECOVERABLE
    ]
    assert damaged and damaged[0].artifact == name
    assert "build_search_index" in damaged[0].detail


def test_missing_sidecar_file_is_recoverable(indexed_dir) -> None:
    name = _sidecar_name(indexed_dir)
    (indexed_dir / name).unlink()
    report = fsck_store(indexed_dir)
    assert report.ok
    assert any(
        f.severity == FSCK_RECOVERABLE and f.artifact == name
        for f in report.findings
    )


def test_malformed_posting_record_is_recoverable(indexed_dir) -> None:
    name = _sidecar_name(indexed_dir)
    path = indexed_dir / name
    lines = path.read_bytes().splitlines(keepends=True)
    lines[1] = b'{"seq": 1, "kind": "token", "term": 7, "ids": ["G1"]}\n'
    path.write_bytes(b"".join(lines))
    fresh = _reseal_sidecar(indexed_dir, name)
    report = fsck_store(indexed_dir)
    assert report.ok
    assert any(
        f.severity == FSCK_RECOVERABLE
        and f.artifact == fresh
        and "malformed" in f.detail
        for f in report.findings
    )


def test_stale_watermark_is_a_note(indexed_dir) -> None:
    name = _sidecar_name(indexed_dir)
    path = indexed_dir / name
    lines = path.read_bytes().splitlines(keepends=True)
    header = json.loads(lines[0])
    header["ops"] = 999  # far past a journal-less store's 0 ops
    lines[0] = json.dumps(
        header, separators=(",", ":"), sort_keys=True
    ).encode() + b"\n"
    path.write_bytes(b"".join(lines))
    _reseal_sidecar(indexed_dir, name)
    report = fsck_store(indexed_dir)
    assert report.ok
    assert report.exit_code() == 0
    stale = [f for f in report.findings if f.severity == FSCK_NOTE]
    assert stale and "stale search index" in stale[0].detail
    assert "watermark" in stale[0].detail


def test_stale_base_generation_is_a_note(indexed_dir) -> None:
    name = _sidecar_name(indexed_dir)
    path = indexed_dir / name
    lines = path.read_bytes().splitlines(keepends=True)
    header = json.loads(lines[0])
    header["base_crc32"] = 1
    lines[0] = json.dumps(
        header, separators=(",", ":"), sort_keys=True
    ).encode() + b"\n"
    path.write_bytes(b"".join(lines))
    _reseal_sidecar(indexed_dir, name)
    report = fsck_store(indexed_dir)
    assert report.ok
    assert any(
        f.severity == FSCK_NOTE
        and "previous base shard generation" in f.detail
        for f in report.findings
    )


def test_superseded_sidecar_is_orphan_swept_by_gc(
    indexed_dir, tmp_path
) -> None:
    """Rebuilding the index defers the old sidecar to gc, and fsck's
    orphan inventory must agree with gc's sweep exactly."""
    old = _sidecar_name(indexed_dir)
    loaded = Argument.load(indexed_dir)
    loaded.add_node(Node("G20", NodeType.GOAL, "An appended claim"))
    loaded.add_link("G1", "G20", LinkKind.SUPPORTED_BY)
    loaded.save(indexed_dir, journal=True)
    StoredArgument(indexed_dir).build_search_index()
    fresh = _sidecar_name(indexed_dir)
    assert fresh != old
    assert (indexed_dir / old).exists(), "sweep is deferred to gc"
    report = fsck_store(indexed_dir)
    assert report.ok
    assert old in report.orphans
    mirror = tmp_path / "mirror.store"
    shutil.copytree(indexed_dir, mirror)
    removed = StoredArgument(mirror).gc()
    assert sorted(report.orphans) == removed


# -- the CLI -----------------------------------------------------------------------


def test_cli_clean_store_exits_zero(store_dir, capsys) -> None:
    assert main([str(store_dir)]) == 0
    assert "clean" in capsys.readouterr().out


def test_cli_corrupt_store_exits_nonzero_naming_artifact(
    store_dir, capsys
) -> None:
    shard = _nonempty_shard(store_dir, "nodes-")
    (store_dir / shard).write_bytes(b"garbage\n")
    assert main([str(store_dir)]) == 1
    out = capsys.readouterr().out
    assert shard in out
    assert "CORRUPT" in out


def test_cli_strict_flags_torn_tail(journaled_dir, capsys) -> None:
    manifest = _manifest(journaled_dir)
    final = manifest["journal"][-1]
    data = (journaled_dir / final).read_bytes()
    (journaled_dir / final).write_bytes(data[: len(data) // 2])
    assert main([str(journaled_dir)]) == 0
    assert main(["--strict", str(journaled_dir)]) == 1
    assert "recoverable" in capsys.readouterr().out


def test_cli_worst_store_wins(store_dir, journaled_dir) -> None:
    shard = _nonempty_shard(store_dir, "nodes-")
    (store_dir / shard).write_bytes(b"garbage\n")
    assert main([str(journaled_dir), str(store_dir)]) == 1
