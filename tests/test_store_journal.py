"""Append-journal persistence: O(delta) edit saves over the sharded store.

Covers the journal loop end to end: ``Argument.save(journal=True)``
appending mutation deltas as sealed segments, every reader access path
replaying the journal transparently (load, streaming, per-shard
iteration, ``node``/``subtree``/``len``/``in``), ``compact()`` folding
segments back into shards byte-identical to a clean save, ``gc()``
sweeping orphans, torn-write crash semantics with
``ignore_torn_tail=True`` recovery, and the store-backed incremental
checker (``IncrementalChecker.from_store``) re-checking the persisted
case from its journal deltas without hydration.
"""

from __future__ import annotations

import gzip
import json

import pytest

from conftest import canonical_argument, random_argument, store_files
from repro.core.analysis import IncrementalChecker
from repro.core.argument import Argument, Link, LinkKind
from repro.core.nodes import Node, NodeType
from repro.core.wellformed import GSN_STANDARD_RULES, Rule, RuleSet
from repro.store import (
    StoreConflictError,
    StoreCorruptionError,
    StoredArgument,
    StoreError,
)
from repro.store.format import MANIFEST_NAME

pytestmark = pytest.mark.journal


def gsn_argument(hazards: int = 5, name: str = "journal-case") -> Argument:
    """A small well-formed GSN case: root, strategy, hazards, solutions."""
    argument = Argument(name)
    argument.add_node(Node("G0", NodeType.GOAL, "The system is safe"))
    argument.add_node(Node("S0", NodeType.STRATEGY, "Argue over hazards"))
    argument.add_link("G0", "S0", LinkKind.SUPPORTED_BY)
    for index in range(1, hazards + 1):
        argument.add_node(Node(
            f"G{index}", NodeType.GOAL, f"Hazard {index} is managed",
        ))
        argument.add_link("S0", f"G{index}", LinkKind.SUPPORTED_BY)
        argument.add_node(Node(
            f"Sn{index}", NodeType.SOLUTION, f"Test record {index}",
        ))
        argument.add_link(f"G{index}", f"Sn{index}", LinkKind.SUPPORTED_BY)
    return argument


def edit_session(argument: Argument) -> None:
    """A representative mix of edits: add, retext, retype, churn, remove."""
    argument.add_node(Node("X1", NodeType.GOAL, "Late claim 1 holds"))
    argument.add_link("S0", "X1", LinkKind.SUPPORTED_BY)
    argument.replace_node(
        argument.node("G2").with_text("Hazard 2 is managed (revalidated)")
    )
    link = Link("S0", "G1", LinkKind.SUPPORTED_BY)
    argument.remove_link(link)
    argument.add_link(link.source, link.target, link.kind)
    argument.remove_node("Sn3")




class TestJournalAppend:
    def test_first_save_is_full_then_edits_append(self, tmp_path):
        store = tmp_path / "case.store"
        argument = gsn_argument()
        manifest = argument.save(store, journal=True)
        assert "journal" not in manifest, "first save must be a full write"
        edit_session(argument)
        manifest = argument.save(store, journal=True)
        assert len(manifest["journal"]) == 1
        assert manifest["journal_schema"] == 1
        assert StoredArgument(store).load() == argument

    def test_append_rewrites_no_base_shard(self, tmp_path):
        store = tmp_path / "case.store"
        argument = gsn_argument()
        before_manifest = argument.save(store)
        base_files = {
            name: (store / name).read_bytes()
            for name in before_manifest["shards"]
        }
        edit_session(argument)
        after_manifest = argument.save(store, journal=True)
        for name, content in base_files.items():
            assert (store / name).read_bytes() == content, (
                f"append rewrote base shard {name}"
            )
        new_files = set(after_manifest["shards"]) - set(base_files)
        assert new_files == set(after_manifest["journal"])

    def test_every_read_path_replays_the_journal(self, tmp_path):
        store = tmp_path / "case.store"
        argument = gsn_argument()
        argument.save(store)
        edit_session(argument)
        # A removed-then-readded identifier must order last, like the
        # live argument's insertion-ordered dict.
        argument.remove_node("G4")
        argument.add_node(Node(
            "G4", NodeType.GOAL, "Hazard 4 re-stated", undeveloped=True,
        ))
        argument.add_link("S0", "G4", LinkKind.SUPPORTED_BY)
        argument.save(store, journal=True)

        stored = StoredArgument(store)
        assert len(stored) == len(argument)
        assert "Sn3" not in stored and "X1" in stored
        assert [n.identifier for n in stored.iter_nodes()] == [
            n.identifier for n in argument.nodes
        ]
        assert list(stored.iter_links()) == argument.links
        assert stored.node("G2").text.endswith("(revalidated)")
        with pytest.raises(StoreError, match="Sn3"):
            stored.node("Sn3")
        # Per-shard iteration covers every record exactly once and keeps
        # the id-hash partition (parallel work units stay sound).
        from repro.store import shard_of

        seen_nodes: list[tuple[int, str]] = []
        for index in range(stored.shard_count):
            for seq, node in stored.iter_shard_nodes(index):
                assert shard_of(
                    node.identifier, stored.shard_count
                ) == index
                seen_nodes.append((seq, node.identifier))
        assert [i for _, i in sorted(seen_nodes)] == [
            n.identifier for n in argument.nodes
        ]
        seen_links = []
        for index in range(stored.shard_count):
            seen_links.extend(stored.iter_shard_links(index))
        assert [link for _, link in sorted(
            seen_links, key=lambda pair: pair[0]
        )] == argument.links
        # Partial subtree hydration sees the overlay too.
        fresh = StoredArgument(store)
        assert fresh.subtree("G4") == argument.subtree("G4")
        assert fresh.subtree("S0") == argument.subtree("S0")
        assert not fresh.hydrated

    def test_loaded_argument_continues_the_journal_session(self, tmp_path):
        store = tmp_path / "case.store"
        original = gsn_argument()
        original.save(store)
        loaded = Argument.load(store)
        loaded.add_node(Node("X9", NodeType.GOAL, "A new claim holds"))
        loaded.add_link("S0", "X9", LinkKind.SUPPORTED_BY)
        manifest = loaded.save(store, journal=True)
        assert len(manifest["journal"]) == 1, (
            "a loaded argument must append, not rewrite"
        )
        assert StoredArgument(store).load() == loaded

    def test_empty_delta_appends_nothing(self, tmp_path):
        store = tmp_path / "case.store"
        argument = gsn_argument()
        argument.save(store)
        manifest = argument.save(store, journal=True)
        assert "journal" not in manifest

    def test_streaming_wellformed_over_journal(self, tmp_path):
        store = tmp_path / "case.store"
        argument = gsn_argument()
        argument.save(store)
        edit_session(argument)
        # An unsupported goal: a violation that exists only post-journal.
        argument.add_node(Node("X2", NodeType.GOAL, "Unsupported claim holds"))
        argument.add_link("S0", "X2", LinkKind.SUPPORTED_BY)
        argument.save(store, journal=True)
        stored = StoredArgument(store)
        streamed = GSN_STANDARD_RULES.check(stored, mode="streaming")
        assert streamed == GSN_STANDARD_RULES.check(argument)
        assert streamed, "the journal edits should have introduced violations"
        assert not stored.hydrated

    def test_fallback_to_rewrite_when_log_rotated(self, tmp_path):
        class TinyLogArgument(Argument):
            MUTATION_LOG_LIMIT = 4

        store = tmp_path / "case.store"
        argument = TinyLogArgument("tiny")
        argument.add_node(Node("G0", NodeType.GOAL, "The claim holds"))
        argument.save(store)
        for index in range(1, 10):  # far past the tiny log's reach
            argument.add_node(Node(
                f"G{index}", NodeType.GOAL, f"Claim {index} holds",
            ))
        manifest = argument.save(store, journal=True)
        assert "journal" not in manifest, "a rotated log cannot append"
        assert StoredArgument(store).load() == argument

    def test_conflict_when_store_changed_behind_us(self, tmp_path):
        """A diverged store raises instead of silently rewriting —
        overwriting would lose the other writer's committed work."""
        store = tmp_path / "case.store"
        argument = gsn_argument()
        argument.save(store)
        # Another process rewrites the directory with different content.
        other = gsn_argument(hazards=2, name="journal-case")
        other.save(store)
        argument.add_node(Node("X1", NodeType.GOAL, "Late claim holds"))
        with pytest.raises(StoreConflictError, match="force=True"):
            argument.save(store, journal=True)
        # The other writer's state survived the refused save.
        assert StoredArgument(store).load() == other
        # force=True is the deliberate overwrite: full rewrite, no append.
        manifest = argument.save(store, journal=True, force=True)
        assert "journal" not in manifest, (
            "appending onto someone else's store would corrupt it"
        )
        assert StoredArgument(store).load() == argument

    def test_conflict_on_count_neutral_external_edit(self, tmp_path):
        """Even a count-preserving edit by another handle is a conflict
        — the manifest fingerprint pins the exact generation."""
        store = tmp_path / "case.store"
        writer_a = gsn_argument()
        writer_a.save(store)
        writer_b = Argument.load(store)
        writer_b.replace_node(
            writer_b.node("G1").with_text("Hazard 1 EDITED BY B")
        )
        writer_b.save(store, journal=True)  # counts unchanged
        writer_a.add_node(Node("XA", NodeType.GOAL, "A's new claim holds"))
        with pytest.raises(StoreConflictError):
            writer_a.save(store, journal=True)
        # Reload-and-retry converges without losing either edit.
        merged = Argument.load(store)
        merged.add_node(Node("XA", NodeType.GOAL, "A's new claim holds"))
        manifest = merged.save(store, journal=True)
        assert manifest["journal"], "rebased save appends cleanly"
        final = StoredArgument(store).load()
        assert final.node("G1").text == "Hazard 1 EDITED BY B"
        assert final.node("XA").text == "A's new claim holds"

    def test_fallback_preserves_store_format(self, tmp_path):
        """A fallback rewrite must not silently convert the store."""
        class TinyLogArgument(Argument):
            MUTATION_LOG_LIMIT = 4

        store = tmp_path / "case.store"
        argument = TinyLogArgument("tiny")
        argument.add_node(Node("G0", NodeType.GOAL, "The claim holds"))
        argument.save(store, compression="gzip", shard_count=4)
        for index in range(1, 10):  # rotate the log past the baseline
            argument.add_node(Node(
                f"G{index}", NodeType.GOAL, f"Claim {index} holds",
            ))
        manifest = argument.save(store, journal=True)
        assert "journal" not in manifest, "rotated log must rewrite"
        assert manifest["shard_count"] == 4
        assert manifest["compression"] == "gzip"
        # An *explicit* format change skips the append so it takes
        # effect; appends only win when the format request matches.
        argument.add_node(Node("G10", NodeType.GOAL, "Claim 10 holds"))
        manifest = argument.save(store, journal=True, compression=None,
                                 shard_count=8)
        assert manifest["shard_count"] == 8
        assert StoredArgument(store).load() == argument

    def test_journal_fallback_refuses_to_flatten_a_case(self, tmp_path):
        """An argument-only rewrite must not destroy a case's evidence."""
        from repro.core.case import AssuranceCase
        from repro.core.evidence import EvidenceItem, EvidenceKind

        class TinyLogArgument(Argument):
            MUTATION_LOG_LIMIT = 4

        store = tmp_path / "case.store"
        argument = TinyLogArgument("case-argument")
        argument.add_node(Node("G0", NodeType.GOAL, "The claim holds"))
        argument.add_node(Node("Sn0", NodeType.SOLUTION, "Test record"))
        argument.add_link("G0", "Sn0", LinkKind.SUPPORTED_BY)
        case = AssuranceCase("case", argument)
        case.add_evidence(
            EvidenceItem("ev1", EvidenceKind.TESTING, "test results"),
            cited_by="Sn0",
        )
        case.save(store)  # records the journal baseline itself
        # Appends preserve the case's evidence and citations.
        argument.replace_node(
            argument.node("G0").with_text("The claim holds (rev)")
        )
        manifest = argument.save(store, journal=True)
        assert manifest["kind"] == "case" and manifest["journal"]
        assert AssuranceCase.load(store).evidence
        # A fallback (rotated log) must refuse, loudly, instead of
        # rewriting the case as a bare argument.
        for index in range(1, 10):
            argument.add_node(Node(
                f"X{index}", NodeType.GOAL, f"Claim {index} holds",
            ))
        with pytest.raises(StoreError, match="evidence"):
            argument.save(store, journal=True)
        loaded = AssuranceCase.load(store)
        assert loaded.evidence, "the case must have survived intact"

    def test_gzip_store_journals_and_compacts(self, tmp_path):
        store = tmp_path / "case.store"
        argument = gsn_argument()
        argument.save(store, compression="gzip")
        edit_session(argument)
        manifest = argument.save(store, journal=True)
        (segment,) = manifest["journal"]
        assert segment.endswith(".jsonl.gz")
        with gzip.open(store / segment) as handle:
            records = [json.loads(line) for line in handle]
        assert {record["op"] for record in records} <= {
            "add_node", "remove_node", "replace_node",
            "add_link", "remove_link",
        }
        assert StoredArgument(store).load() == argument
        compacted = StoredArgument(store)
        compacted.compact()
        compacted.gc()  # deferred sweep: reclaim the superseded journal
        fresh = tmp_path / "fresh.store"
        argument.save(fresh, compression="gzip")
        assert store_files(store) == store_files(fresh)


class TestCompactAndGc:
    def test_compact_is_byte_stable_and_atomic(self, tmp_path):
        store = tmp_path / "case.store"
        argument = gsn_argument()
        argument.save(store)
        for _ in range(3):
            edit_session_args = argument
            edit_session(edit_session_args)
            argument.remove_node("X1")  # keep edit_session re-runnable
            argument.add_node(Node("Sn3", NodeType.SOLUTION, "Restored"))
            argument.add_link("G3", "Sn3", LinkKind.SUPPORTED_BY)
            argument.save(store, journal=True)
        stored = StoredArgument(store)
        assert stored.journal_segments
        manifest = stored.compact()
        assert "journal" not in manifest
        assert not StoredArgument(store).journal_segments
        stored.gc()  # compaction defers its sweep to gc (pinned readers)
        fresh = tmp_path / "fresh.store"
        argument.save(fresh)
        assert store_files(store) == store_files(fresh), (
            "compaction + gc must reproduce a clean save byte-for-byte"
        )
        assert StoredArgument(store).load() == argument

    def test_compact_without_journal_is_noop(self, tmp_path):
        store = tmp_path / "case.store"
        argument = gsn_argument()
        argument.save(store)
        before = store_files(store)
        StoredArgument(store).compact()
        assert store_files(store) == before

    def test_randomized_journal_roundtrip(self, tmp_path):
        """Random arguments + random edits: replay ≡ live ≡ compacted."""
        import random

        store = tmp_path / "case.store"
        argument = random_argument(0xD1CE, 40, name="random-journal")
        argument.save(store)
        rng = random.Random(0xD1CE)
        identifiers = [node.identifier for node in argument.nodes]
        for round_index in range(5):
            for _ in range(6):
                roll = rng.random()
                if roll < 0.4:
                    fresh_id = f"j{round_index}-{rng.randrange(1000)}"
                    if fresh_id not in argument:
                        argument.add_node(Node(
                            fresh_id, NodeType.GOAL,
                            f"Claim {fresh_id} holds",
                        ))
                        identifiers.append(fresh_id)
                elif roll < 0.6 and argument.links:
                    argument.remove_link(rng.choice(argument.links))
                elif roll < 0.8:
                    target = rng.choice(identifiers)
                    if target in argument:
                        argument.replace_node(
                            argument.node(target).with_text(
                                f"Rewritten {target} holds"
                            )
                        )
                else:
                    source, target = rng.sample(identifiers, 2)
                    link = Link(source, target, LinkKind.SUPPORTED_BY)
                    if (
                        source in argument and target in argument
                        and source != target
                        and not argument.has_link(link)
                    ):
                        argument.add_link(source, target, link.kind)
            argument.save(store, journal=True)
            replayed = StoredArgument(store).load()
            assert canonical_argument(replayed) == \
                canonical_argument(argument)
        compacted = StoredArgument(store)
        compacted.compact()
        compacted.gc()
        fresh = tmp_path / "fresh.store"
        argument.save(fresh)
        assert store_files(store) == store_files(fresh)

    def test_compact_reset_journal_regrowth_rechecks_correctly(
        self, tmp_path
    ):
        """Same-length journals across a compaction must not be conflated.

        A net-zero journal compacts into byte-identical base shards
        (content-addressed names!), so only the consumed segment names
        tell the checker its position is from a dead generation.
        """
        store = tmp_path / "case.store"
        argument = gsn_argument()
        argument.save(store)
        # Net-zero delta: add then remove — two ops, identical base.
        argument.add_node(Node("T0", NodeType.GOAL, "Transient claim"))
        argument.remove_node("T0")
        argument.save(store, journal=True)
        checker = GSN_STANDARD_RULES.incremental_from_store(
            StoredArgument(store)
        )
        checker.check()
        StoredArgument(store).compact()  # base bytes unchanged
        # The compaction moved the manifest past our save baseline; the
        # argument's state still equals the store's, so re-pin rather
        # than pay the conflict (a plain reload would also do).
        argument.mark_persisted(store)
        # A regrown journal of >= the consumed length, different records.
        argument.add_node(Node("Y0", NodeType.GOAL, "New claim 0 holds"))
        argument.add_node(Node("Y1", NodeType.GOAL, "New claim 1 holds"))
        argument.save(store, journal=True)
        assert checker.check() == GSN_STANDARD_RULES.check(argument)

    def test_case_load_survives_journal_removing_a_cited_solution(
        self, tmp_path
    ):
        """Citations of a journal-removed solution drop; the case loads."""
        from repro.core.case import AssuranceCase
        from repro.core.evidence import EvidenceItem, EvidenceKind

        store = tmp_path / "case.store"
        argument = gsn_argument(hazards=3)
        case = AssuranceCase("case", argument)
        for index in (1, 2, 3):
            case.add_evidence(
                EvidenceItem(
                    f"ev{index}", EvidenceKind.TESTING, f"results {index}"
                ),
                cited_by=f"Sn{index}",
            )
        case.save(store)
        argument.remove_node("Sn1")  # takes its citation with it
        argument.replace_node(Node(
            "Sn2", NodeType.GOAL, "Retyped away from solution",
        ))
        argument.save(store, journal=True)
        loaded = AssuranceCase.load(store)
        assert loaded.argument == argument
        assert "ev1" in loaded.evidence and "ev2" in loaded.evidence
        assert not loaded.citations("Sn2")
        assert loaded.citing_solutions("ev1") == []
        # Compaction reconciles the citations shard, so the folded
        # (journal-less) store still loads as a case.
        StoredArgument(store).compact()
        compacted = AssuranceCase.load(store)
        assert compacted.argument == argument
        assert compacted.citing_solutions("ev1") == []
        assert "ev1" in compacted.evidence
        # The surviving citation (Sn3 -> ev3) rides through intact.
        assert [item.identifier for item in compacted.citations("Sn3")] \
            == ["ev3"]

    def test_gc_sweeps_orphans_only(self, tmp_path):
        store = tmp_path / "case.store"
        argument = gsn_argument()
        argument.save(store)
        # Orphans of every stripe: a sealed shard no manifest references
        # (interrupted save), a sealed journal segment whose manifest
        # commit never happened (interrupted append), stray tmp files.
        (store / "nodes-0001-deadbeef.jsonl").write_bytes(b"{}\n")
        (store / "journal-0099-0badf00d.jsonl").write_bytes(b"{}\n")
        (store / "links-0002.tmp").write_bytes(b"")
        (store / (MANIFEST_NAME + ".tmp")).write_bytes(b"{}")
        # Files the store never wrote must survive — including ones
        # that merely *resemble* store names (the writer always emits
        # ordinal+checksum forms; bare or partial names are not ours).
        foreign = (
            "NOTES.txt", "nodes.jsonl", "links.tmp",
            "journal-deadbeef.jsonl", "evidence.jsonl.gz",
        )
        for name in foreign:
            (store / name).write_text("do not delete")
        stored = StoredArgument(store)
        removed = stored.gc()
        assert removed == [
            "journal-0099-0badf00d.jsonl",
            "links-0002.tmp",
            MANIFEST_NAME + ".tmp",
            "nodes-0001-deadbeef.jsonl",
        ]
        for name in foreign:
            assert (store / name).exists(), name
            (store / name).unlink()

    def test_gc_resyncs_to_the_live_manifest(self, tmp_path):
        """A stale handle must not sweep the live generation's shards."""
        store = tmp_path / "case.store"
        argument = gsn_argument()
        argument.save(store)
        stale = StoredArgument(store)
        argument.add_node(Node("X1", NodeType.GOAL, "New claim holds"))
        argument.save(store)  # full rewrite: fresh content-addressed names
        removed = stale.gc()
        assert StoredArgument(store).load() == argument, (
            "gc from a stale handle destroyed the live store"
        )
        for name in removed:
            assert name not in StoredArgument(store).manifest["shards"]
        assert StoredArgument(store).load() == argument
        # Everything still referenced stayed put: gc again is a no-op.
        assert StoredArgument(store).gc() == []


class TestTornTail:
    def _store_with_two_appends(self, tmp_path):
        store = tmp_path / "case.store"
        argument = gsn_argument()
        argument.save(store)
        argument.add_node(Node("X1", NodeType.GOAL, "First edit holds"))
        argument.add_link("S0", "X1", LinkKind.SUPPORTED_BY)
        argument.save(store, journal=True)
        snapshot = argument.copy()
        argument.add_node(Node("X2", NodeType.GOAL, "Second edit holds"))
        argument.add_link("S0", "X2", LinkKind.SUPPORTED_BY)
        manifest = argument.save(store, journal=True)
        return store, argument, snapshot, manifest

    def test_truncated_final_segment_names_it_and_offers_recovery(
        self, tmp_path
    ):
        store, _, _, manifest = self._store_with_two_appends(tmp_path)
        final = manifest["journal"][-1]
        content = (store / final).read_bytes()
        (store / final).write_bytes(content[:len(content) // 2])
        with pytest.raises(StoreCorruptionError, match="ignore_torn_tail"):
            StoredArgument(store).load()
        try:
            StoredArgument(store).load()
        except StoreCorruptionError as error:
            assert error.shard == final, "the error must name the segment"

    def test_ignore_torn_tail_recovers_the_prior_state(self, tmp_path):
        store, _, snapshot, manifest = self._store_with_two_appends(tmp_path)
        final = manifest["journal"][-1]
        content = (store / final).read_bytes()
        (store / final).write_bytes(content[:len(content) // 2])
        recovered = StoredArgument(store, ignore_torn_tail=True)
        assert recovered.load() == snapshot, (
            "recovery must drop exactly the torn append"
        )
        assert Argument.load(store, ignore_torn_tail=True) == snapshot
        # A recovered handle must not append on top of a dropped tail.
        with pytest.raises(StoreError, match="torn tail"):
            recovered.append_delta(
                snapshot.delta_since(0)  # any non-empty delta
            )

    def test_missing_final_segment_is_torn_too(self, tmp_path):
        store, _, snapshot, manifest = self._store_with_two_appends(tmp_path)
        (store / manifest["journal"][-1]).unlink()
        with pytest.raises(StoreCorruptionError, match="ignore_torn_tail"):
            StoredArgument(store).load()
        assert StoredArgument(
            store, ignore_torn_tail=True
        ).load() == snapshot

    def test_damaged_middle_segment_always_raises(self, tmp_path):
        store, _, _, manifest = self._store_with_two_appends(tmp_path)
        first = manifest["journal"][0]
        content = (store / first).read_bytes()
        (store / first).write_bytes(content[:len(content) // 2])
        with pytest.raises(StoreCorruptionError) as excinfo:
            StoredArgument(store, ignore_torn_tail=True).load()
        assert excinfo.value.shard == first

    def test_interrupted_append_leaves_prior_state_loadable(self, tmp_path):
        """A crash between segment seal and manifest commit is invisible."""
        store = tmp_path / "case.store"
        argument = gsn_argument()
        argument.save(store)
        snapshot = argument.copy()
        manifest_before = (store / MANIFEST_NAME).read_bytes()
        # Reproduce the crash window: the segment seals on disk but the
        # manifest rename never happens.
        from repro.store.journal import encode_op
        from repro.store.writer import _ShardWriter

        argument.add_node(Node("X1", NodeType.GOAL, "Unreached edit holds"))
        delta = argument.persisted_delta(store)
        writer = _ShardWriter(store, "journal-0000")
        for op, payload in delta.records:
            writer.write(encode_op(op, payload))
        writer.close()
        orphan = writer.finish()
        assert (store / MANIFEST_NAME).read_bytes() == manifest_before
        assert StoredArgument(store).load() == snapshot, (
            "an interrupted append must leave the prior state loadable"
        )
        assert StoredArgument(store).gc() == [orphan]
        # Retrying the append now succeeds and reuses the ordinal.
        manifest = argument.save(store, journal=True)
        assert len(manifest["journal"]) == 1
        assert StoredArgument(store).load() == argument

    def test_parallel_check_honours_torn_tail_recovery(self, tmp_path):
        """Workers reopen the store; the recovery flag must ride along."""
        store, _, snapshot, manifest = self._store_with_two_appends(tmp_path)
        final = manifest["journal"][-1]
        content = (store / final).read_bytes()
        (store / final).write_bytes(content[:len(content) // 2])
        recovered = StoredArgument(store, ignore_torn_tail=True)
        parallel = GSN_STANDARD_RULES.check(
            recovered, mode="parallel", workers=2
        )
        assert parallel == GSN_STANDARD_RULES.check(snapshot)
        assert not recovered.hydrated

    def test_full_save_repairs_a_torn_store(self, tmp_path):
        store, argument, _, manifest = self._store_with_two_appends(tmp_path)
        final = manifest["journal"][-1]
        content = (store / final).read_bytes()
        (store / final).write_bytes(content[:len(content) // 2])
        # journal=True cannot append onto a torn tail: it falls back to
        # the full rewrite, which reconciles the store with the live
        # argument (the source of truth).
        repaired = argument.save(store, journal=True)
        assert "journal" not in repaired
        assert StoredArgument(store).load() == argument


class TestFromStore:
    def test_recheck_tracks_journal_appends_without_hydration(self, tmp_path):
        store = tmp_path / "case.store"
        argument = gsn_argument(hazards=8)
        argument.save(store)
        stored = StoredArgument(store)
        checker = GSN_STANDARD_RULES.incremental_from_store(stored)
        assert checker.check() == GSN_STANDARD_RULES.check(argument)
        assert checker.argument is None
        for round_index in range(6):
            argument.add_node(Node(
                f"X{round_index}", NodeType.GOAL,
                f"Late claim {round_index} holds",
            ))
            argument.add_link(
                "S0", f"X{round_index}", LinkKind.SUPPORTED_BY
            )
            if round_index % 2:
                target = argument.node(f"Sn{1 + round_index % 8}")
                argument.replace_node(Node(
                    target.identifier, NodeType.GOAL, target.text,
                ))  # retype flips link-rule verdicts
            if round_index == 3:
                argument.remove_node("X1")
            argument.save(store, journal=True)
            assert checker.check() == GSN_STANDARD_RULES.check(argument), (
                f"round {round_index}"
            )
        assert not stored.hydrated, (
            "store-backed incremental checking must never hydrate"
        )

    def test_refresh_decodes_only_new_segments(self, tmp_path, monkeypatch):
        """A long session's Nth re-check reads one segment, not all N."""
        import repro.store.journal as journal_module

        store = tmp_path / "case.store"
        argument = gsn_argument()
        argument.save(store)
        checker = GSN_STANDARD_RULES.incremental_from_store(
            StoredArgument(store)
        )
        checker.check()
        decoded: list[str] = []
        original = journal_module.decode_op

        def counting_decode(record, segment):
            decoded.append(segment)
            return original(record, segment)

        monkeypatch.setattr(journal_module, "decode_op", counting_decode)
        for round_index in range(4):
            argument.add_node(Node(
                f"X{round_index}", NodeType.GOAL,
                f"Claim {round_index} holds",
            ))
            argument.save(store, journal=True)
            decoded.clear()
            assert checker.check() == GSN_STANDARD_RULES.check(argument)
            assert len(set(decoded)) == 1, (
                "refresh must extend the overlay with just the new "
                "segment, not re-decode the whole journal"
            )

    def test_unchanged_store_is_pure_cache_assembly(self, tmp_path):
        store = tmp_path / "case.store"
        argument = gsn_argument()
        argument.save(store)
        checker = GSN_STANDARD_RULES.incremental_from_store(
            StoredArgument(store)
        )
        assert checker.check() == checker.check()

    def test_cycle_via_journal_matches_live_rendering(self, tmp_path):
        store = tmp_path / "case.store"
        argument = gsn_argument()
        argument.save(store)
        checker = GSN_STANDARD_RULES.incremental_from_store(
            StoredArgument(store)
        )
        # G1 -> Sn1 exists; close a cycle back up the support chain.
        argument.replace_node(Node("Sn1", NodeType.GOAL, "Retyped claim"))
        argument.add_link("Sn1", "G0", LinkKind.SUPPORTED_BY)
        argument.save(store, journal=True)
        got = checker.check()
        want = GSN_STANDARD_RULES.check(argument)
        assert got == want
        assert any(v.rule == "acyclic" for v in got)
        # And removing the edge clears it incrementally.
        argument.remove_link(Link("Sn1", "G0", LinkKind.SUPPORTED_BY))
        argument.save(store, journal=True)
        assert checker.check() == GSN_STANDARD_RULES.check(argument)

    def test_survives_compaction_and_rewrite(self, tmp_path):
        store = tmp_path / "case.store"
        argument = gsn_argument()
        argument.save(store)
        checker = GSN_STANDARD_RULES.incremental_from_store(
            StoredArgument(store)
        )
        argument.add_node(Node("X1", NodeType.GOAL, "Late claim holds"))
        argument.save(store, journal=True)
        assert checker.check() == GSN_STANDARD_RULES.check(argument)
        StoredArgument(store).compact()  # new base generation
        assert checker.check() == GSN_STANDARD_RULES.check(argument)
        argument.add_node(Node("X2", NodeType.GOAL, "Another claim holds"))
        argument.save(store)  # full rewrite
        assert checker.check() == GSN_STANDARD_RULES.check(argument)

    def test_requires_a_stored_argument(self):
        with pytest.raises(TypeError, match="needs a StoredArgument"):
            IncrementalChecker.from_store(
                Argument("live"), GSN_STANDARD_RULES.rules
            )

    def test_legacy_rules_are_rejected_not_hydrated(self, tmp_path):
        store = tmp_path / "case.store"
        gsn_argument().save(store)
        legacy = RuleSet("legacy", (
            Rule("whole-argument", "needs hydration", lambda a: []),
        ))
        stored = StoredArgument(store)
        with pytest.raises(TypeError, match="never hydrates"):
            legacy.incremental_from_store(stored)
        assert not stored.hydrated
