"""Scale and equivalence tests for the iterative, indexed graph engine.

The seed graph core crashed with :class:`RecursionError` on arguments
deeper than ~1,000 nodes; tool-generated assurance cases reach tens of
thousands.  These tests pin the new engine's guarantees:

* every traversal completes on 10,000-node chains, fans, and dense DAGs;
* the iterative implementations agree with the seed's recursive
  semantics on small random graphs (the seed reference lives in
  ``benchmarks/bench_graph_scale.py``);
* ``find_cycle`` returns a *verified closed* SupportedBy cycle;
* path enumeration degrades gracefully (``max_paths``, lazy iterator,
  O(V + E) path counting) instead of hanging on diamond DAGs;
* the maintained indices stay consistent under mutation.
"""

from __future__ import annotations

import itertools
import random

import pytest

from repro.core.argument import Argument, ArgumentError, LinkKind
from repro.core.nodes import Node, NodeType

CHAIN_NODES = 10_000


def make_chain(n: int, cls: type[Argument] = Argument) -> Argument:
    argument = cls("chain")
    for index in range(n - 1):
        argument.add_node(Node(
            f"G{index}", NodeType.GOAL, f"Claim {index} holds"
        ))
        if index:
            argument.supported_by(f"G{index - 1}", f"G{index}")
    argument.add_node(Node(
        f"Sn{n - 1}", NodeType.SOLUTION, "Terminal evidence"
    ))
    argument.supported_by(f"G{n - 2}", f"Sn{n - 1}")
    return argument


def make_diamond_stack(layers: int) -> tuple[Argument, str]:
    """A chain of diamonds: 2**layers distinct root paths from the leaf."""
    argument = Argument("diamonds")
    argument.add_node(Node("T0", NodeType.GOAL, "Top claim 0 holds"))
    previous = "T0"
    for layer in range(layers):
        left, right, bottom = (
            f"L{layer}", f"R{layer}", f"T{layer + 1}"
        )
        for identifier in (left, right, bottom):
            argument.add_node(Node(
                identifier, NodeType.GOAL,
                f"Claim {identifier} holds",
            ))
        argument.supported_by(previous, left)
        argument.supported_by(previous, right)
        argument.supported_by(left, bottom)
        argument.supported_by(right, bottom)
        previous = bottom
    return argument, previous


def assert_closed_supported_by_cycle(
    argument: Argument, cycle: list[str]
) -> None:
    """The satellite guarantee: every returned cycle is closed.

    Each consecutive pair — including the wrap-around from the last
    vertex back to the first — must be an actual SupportedBy link, and
    no vertex may repeat.
    """
    assert cycle, "cycle must be non-empty"
    assert len(set(cycle)) == len(cycle), "cycle must not repeat vertices"
    links = {
        (link.source, link.target)
        for link in argument.links
        if link.kind is LinkKind.SUPPORTED_BY
    }
    closed = list(zip(cycle, cycle[1:] + cycle[:1]))
    for source, target in closed:
        assert (source, target) in links, (
            f"{source} -> {target} is not a SupportedBy link; "
            f"cycle {cycle} is not closed"
        )


@pytest.mark.slow
class TestDeepArgumentsDoNotRecurse:
    """10,000-node shapes complete without RecursionError."""

    @pytest.fixture(scope="class")
    def chain(self) -> Argument:
        return make_chain(CHAIN_NODES)

    def test_depth_on_deep_chain(self, chain):
        assert chain.depth() == CHAIN_NODES

    def test_paths_to_root_on_deep_chain(self, chain):
        paths = chain.paths_to_root(f"Sn{CHAIN_NODES - 1}")
        assert len(paths) == 1
        assert len(paths[0]) == CHAIN_NODES
        assert paths[0][0] == f"Sn{CHAIN_NODES - 1}"
        assert paths[0][-1] == "G0"

    def test_find_cycle_on_deep_chain(self, chain):
        assert chain.find_cycle() is None

    def test_walk_on_deep_chain(self, chain):
        assert sum(1 for _ in chain.walk("G0")) == CHAIN_NODES

    def test_statistics_on_deep_chain(self, chain):
        stats = chain.statistics()
        assert stats["node_count"] == CHAIN_NODES
        assert stats["depth"] == CHAIN_NODES

    def test_ancestors_on_deep_chain(self, chain):
        assert len(chain.ancestors(f"Sn{CHAIN_NODES - 1}")) == CHAIN_NODES

    def test_deep_cycle_detected_and_closed(self):
        argument = Argument("ring")
        n = CHAIN_NODES
        for index in range(n):
            argument.add_node(Node(
                f"G{index}", NodeType.GOAL, f"Claim {index} holds"
            ))
            if index:
                argument.supported_by(f"G{index - 1}", f"G{index}")
        argument.supported_by(f"G{n - 1}", "G0")
        cycle = argument.find_cycle()
        assert cycle is not None
        assert len(cycle) == n
        assert_closed_supported_by_cycle(argument, cycle)

    def test_wide_fan(self, graph_scale_bench):
        spec = graph_scale_bench.wide_fan(CHAIN_NODES)
        argument = graph_scale_bench.build(Argument, spec, "fan")
        assert argument.depth() == 2
        assert argument.find_cycle() is None
        assert sum(1 for _ in argument.walk("G0")) == len(argument)

    def test_dense_dag(self, graph_scale_bench):
        spec = graph_scale_bench.dense_dag(CHAIN_NODES)
        argument = graph_scale_bench.build(Argument, spec, "dag")
        assert argument.find_cycle() is None
        assert argument.depth() > 100
        leaf = spec[0][-1][0]
        capped = argument.paths_to_root(leaf, max_paths=50)
        assert len(capped) == 50


class TestPathExplosionDegradesGracefully:
    def test_count_paths_matches_enumeration(self):
        argument, leaf = make_diamond_stack(6)
        paths = argument.paths_to_root(leaf)
        assert len(paths) == 2 ** 6
        assert argument.count_paths_to_root(leaf) == 2 ** 6

    def test_count_paths_without_enumeration(self):
        # 2**40 paths: enumeration would hang; counting is linear.
        argument, leaf = make_diamond_stack(40)
        assert argument.count_paths_to_root(leaf) == 2 ** 40

    def test_max_paths_truncates(self):
        argument, leaf = make_diamond_stack(40)
        paths = argument.paths_to_root(leaf, max_paths=25)
        assert len(paths) == 25
        for path in paths:
            assert path[0] == leaf and path[-1] == "T0"

    def test_count_agrees_with_enumeration_on_cyclic_graphs(self):
        # Regression: the DP memoised a context-dependent 0 for N while
        # M was on the path, then reused it from X, undercounting.
        argument = Argument("cyclic-count")
        for name in ("R", "M", "N", "X"):
            argument.add_node(Node(
                name, NodeType.GOAL, f"Claim {name} holds"
            ))
        argument.supported_by("R", "M")
        argument.supported_by("M", "N")
        argument.supported_by("N", "M")
        argument.supported_by("M", "X")
        argument.supported_by("N", "X")
        enumerated = argument.paths_to_root("X")
        assert argument.count_paths_to_root("X") == len(enumerated) == 2

    def test_iter_paths_is_lazy(self):
        argument, leaf = make_diamond_stack(40)
        first = list(itertools.islice(
            argument.iter_paths_to_root(leaf), 3
        ))
        assert len(first) == 3
        assert all(p[0] == leaf and p[-1] == "T0" for p in first)

    def test_every_enumerated_path_is_a_real_path(self):
        argument, leaf = make_diamond_stack(5)
        links = {
            (link.source, link.target)
            for link in argument.links
            if link.kind is LinkKind.SUPPORTED_BY
        }
        for path in argument.paths_to_root(leaf):
            # Paths run leaf -> root, so each step is a reversed link.
            for lower, upper in zip(path, path[1:]):
                assert (upper, lower) in links


def random_dag(rng: random.Random, n: int, p: float) -> Argument:
    """A random DAG over goals (edges only forward in insertion order)."""
    argument = Argument("random-dag")
    for index in range(n):
        argument.add_node(Node(
            f"N{index}", NodeType.GOAL, f"Claim {index} holds"
        ))
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < p:
                argument.supported_by(f"N{i}", f"N{j}")
    return argument


class TestEquivalenceWithSeedSemantics:
    """The iterative engine matches the seed's recursive results.

    The seed reference implementation (recursive ``depth``,
    ``paths_to_root``, ``find_cycle``; scanning ``statistics``) is kept
    verbatim in ``benchmarks/bench_graph_scale.py`` as ``SeedArgument``.
    """

    @pytest.fixture()
    def seed_cls(self, graph_scale_bench):
        return graph_scale_bench.SeedArgument

    def _copy_into(self, argument: Argument, cls) -> Argument:
        duplicate = cls(argument.name)
        for node in argument.nodes:
            duplicate.add_node(node)
        for link in argument.links:
            duplicate.add_link(link.source, link.target, link.kind)
        return duplicate

    def test_random_dags_agree(self, rng, seed_cls):
        for trial in range(25):
            n = rng.randint(4, 28)
            p = rng.uniform(0.05, 0.4)
            new = random_dag(rng, n, p)
            seed = self._copy_into(new, seed_cls)
            assert new.statistics() == seed.statistics()
            assert new.depth() == seed.depth()
            assert new.find_cycle() is None and seed.find_cycle() is None
            assert (
                [r.identifier for r in new.roots()]
                == [r.identifier for r in seed.roots()]
            )
            for node in new.nodes:
                assert (
                    new.paths_to_root(node.identifier)
                    == seed.paths_to_root(node.identifier)
                ), f"trial {trial}, node {node.identifier}"
                assert (
                    [v.identifier for v in new.walk(node.identifier)]
                    == [v.identifier for v in seed.walk(node.identifier)]
                )

    def test_random_cyclic_graphs_agree_on_detection(self, rng, seed_cls):
        for trial in range(25):
            n = rng.randint(4, 20)
            new = random_dag(rng, n, rng.uniform(0.1, 0.35))
            # Close a random number of back edges to force cycles.
            for _ in range(rng.randint(1, 3)):
                i = rng.randint(1, n - 1)
                j = rng.randint(0, i - 1)
                try:
                    new.supported_by(f"N{i}", f"N{j}")
                except ArgumentError:
                    pass  # duplicate — another back edge already exists
            seed = self._copy_into(new, seed_cls)
            new_cycle = new.find_cycle()
            seed_cycle = seed.find_cycle()
            assert (new_cycle is None) == (seed_cycle is None)
            if new_cycle is not None:
                assert_closed_supported_by_cycle(new, new_cycle)

    def test_fixture_arguments_agree(
        self, hazard_argument, simple_argument, seed_cls
    ):
        for argument in (hazard_argument, simple_argument):
            seed = self._copy_into(argument, seed_cls)
            assert argument.statistics() == seed.statistics()
            for node in argument.nodes:
                assert (
                    argument.paths_to_root(node.identifier)
                    == seed.paths_to_root(node.identifier)
                )


class TestFindCycleClosure:
    """Regression for the seed's broken cycle reconstruction."""

    def test_cycle_with_cross_edges_is_closed(self):
        # The seed's parent-chain walk could emit a vertex list that was
        # not a closed cycle when branches merged before the back edge.
        argument = Argument("cross")
        for name in ("A", "B", "C", "D", "E"):
            argument.add_node(Node(
                name, NodeType.GOAL, f"Claim {name} holds"
            ))
        argument.supported_by("A", "B")
        argument.supported_by("A", "C")
        argument.supported_by("B", "D")
        argument.supported_by("C", "D")  # cross edge into a shared node
        argument.supported_by("D", "E")
        argument.supported_by("E", "C")  # back edge: cycle C -> D -> E
        cycle = argument.find_cycle()
        assert cycle is not None
        assert_closed_supported_by_cycle(argument, cycle)
        assert set(cycle) == {"C", "D", "E"}

    def test_two_disjoint_cycles_returns_one_closed(self):
        argument = Argument("two-cycles")
        for name in ("P", "Q", "R", "X", "Y", "Z"):
            argument.add_node(Node(
                name, NodeType.GOAL, f"Claim {name} holds"
            ))
        argument.supported_by("P", "Q")
        argument.supported_by("Q", "R")
        argument.supported_by("R", "P")
        argument.supported_by("X", "Y")
        argument.supported_by("Y", "Z")
        argument.supported_by("Z", "X")
        cycle = argument.find_cycle()
        assert cycle is not None
        assert_closed_supported_by_cycle(argument, cycle)

    def test_self_reachable_via_long_detour(self):
        argument = Argument("detour")
        names = [f"G{i}" for i in range(8)]
        for name in names:
            argument.add_node(Node(
                name, NodeType.GOAL, f"Claim {name} holds"
            ))
        for left, right in zip(names, names[1:]):
            argument.supported_by(left, right)
        argument.supported_by(names[-1], names[3])
        cycle = argument.find_cycle()
        assert cycle is not None
        assert_closed_supported_by_cycle(argument, cycle)
        assert set(cycle) == set(names[3:])


class TestIndexMaintenance:
    """The maintained indices stay consistent under every mutator."""

    def test_duplicate_link_rejected_via_set(self):
        argument = make_chain(5)
        with pytest.raises(ArgumentError):
            argument.supported_by("G0", "G1")

    def test_remove_link_keeps_order(self):
        argument = Argument("order")
        for name in ("A", "B", "C", "D"):
            argument.add_node(Node(
                name, NodeType.GOAL, f"Claim {name} holds"
            ))
        argument.supported_by("A", "B")
        middle = argument.supported_by("A", "C")
        argument.supported_by("A", "D")
        argument.remove_link(middle)
        assert [link.target for link in argument.links] == ["B", "D"]
        assert [
            child.identifier for child in argument.supporters("A")
        ] == ["B", "D"]
        # Re-adding appends at the end, as with the seed's list.
        argument.supported_by("A", "C")
        assert [link.target for link in argument.links] == ["B", "D", "C"]

    def test_remove_missing_link_raises(self):
        argument = make_chain(3)
        from repro.core.argument import Link
        ghost = Link("G1", "G0", LinkKind.SUPPORTED_BY)
        with pytest.raises(ArgumentError):
            argument.remove_link(ghost)

    def test_remove_node_updates_type_index_and_degrees(self):
        argument = make_chain(6)
        argument.remove_node("G3")
        assert "G3" not in argument
        assert all(
            n.identifier != "G3"
            for n in argument.nodes_of_type(NodeType.GOAL)
        )
        # G4 lost its only incoming support but goals are not roots of
        # the chain; G2 lost its child.
        assert argument.supporters("G2") == []
        assert {r.identifier for r in argument.roots()} == {"G0", "G4"}

    def test_replace_node_with_new_type_moves_type_index(self):
        argument = Argument("retype")
        argument.add_node(Node("N1", NodeType.GOAL, "The claim holds"))
        argument.replace_node(Node(
            "N1", NodeType.CONTEXT, "Now mere context"
        ))
        assert argument.nodes_of_type(NodeType.GOAL) == []
        assert [
            n.identifier
            for n in argument.nodes_of_type(NodeType.CONTEXT)
        ] == ["N1"]
        assert argument.roots() == []  # context is not claim-like

    def test_replace_node_retype_keeps_global_order(self):
        # Regression: re-typing appended to the end of the destination
        # bucket, so a round-trip retype reordered nodes_of_type.
        argument = Argument("retype-order")
        for index in range(3):
            argument.add_node(Node(
                f"N{index}", NodeType.GOAL, f"Claim {index} holds"
            ))
        argument.replace_node(Node("N1", NodeType.CONTEXT, "Aside"))
        argument.replace_node(Node("N1", NodeType.GOAL, "Claim 1 holds"))
        assert [
            n.identifier for n in argument.nodes_of_type(NodeType.GOAL)
        ] == ["N0", "N1", "N2"]

    def test_depth_cache_invalidated_by_mutation(self):
        argument = make_chain(4)
        assert argument.depth() == 4
        argument.add_node(Node("G99", NodeType.GOAL, "Extra claim holds"))
        argument.supported_by("G2", "G99")
        assert argument.depth() == 4
        argument.add_node(Node(
            "G100", NodeType.GOAL, "Deeper claim holds"
        ))
        argument.supported_by("G99", "G100")
        assert argument.depth() == 5

    def test_statistics_counts_track_mutations(self):
        argument = make_chain(4)
        before = argument.statistics()
        link = argument.links[0]
        argument.remove_link(link)
        after = argument.statistics()
        assert after["supported_by_count"] == \
            before["supported_by_count"] - 1
        assert after["link_count"] == before["link_count"] - 1

    def test_version_bumps_on_every_mutation(self):
        argument = Argument("versioned")
        v0 = argument.version
        argument.add_node(Node("N1", NodeType.GOAL, "The claim holds"))
        argument.add_node(Node("N2", NodeType.GOAL, "Another claim holds"))
        v1 = argument.version
        assert v1 > v0
        link = argument.supported_by("N1", "N2")
        assert argument.version > v1
        v2 = argument.version
        argument.remove_link(link)
        assert argument.version > v2
