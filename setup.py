"""Shim for environments without the ``wheel`` package.

The offline sandbox lacks ``wheel``, which breaks PEP 660 editable
installs; ``pip install -e . --no-use-pep517 --no-build-isolation`` goes
through this file instead.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
